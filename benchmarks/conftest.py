"""Benchmark-suite configuration.

Makes ``repro`` importable from the source tree and provides the shared
evaluation harness.  The harness caches compiled workloads for the whole
session, so each ``test_table_*`` / ``test_figure_*`` benchmark measures the
experiment-generation step of its table or figure rather than recompiling
all eight kernels every iteration.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.eval import EvaluationHarness


@pytest.fixture(scope="session")
def harness():
    """Session-wide evaluation harness over all eight workloads.

    Warms the shared harness in parallel; thanks to the on-disk artifact
    cache (docs/CACHING.md) only the first benchmark session after a source
    or config change actually compiles anything.
    """
    h = EvaluationHarness.shared()
    h.run_all(parallel=min(4, os.cpu_count() or 1))
    return h
