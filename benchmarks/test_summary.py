"""§6.7 results overview — the headline aggregates, measured vs paper."""

from repro.eval.experiments import summary


def test_summary(benchmark, harness):
    data = benchmark(summary, harness)
    print("\n" + data["table"])
    # Shape assertions (the absolute factors differ from the Virtex-5 board,
    # see EXPERIMENTS.md): Twill beats pure SW by a large factor and pure HW
    # on average; the HW-thread area shrinks relative to LegUp's translation.
    assert data["mean_speedup_vs_sw"] > 3.0
    assert data["mean_speedup_vs_hw"] > 1.0
    assert data["mean_hw_area_reduction"] > 1.0
    assert data["mean_total_area_increase"] > 1.0
