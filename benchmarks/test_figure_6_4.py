"""Figure 6.4 — Blowfish benchmark performance vs targeted partition split point."""

from repro.eval.experiments import figure_6_4


def test_figure_6_4(benchmark, harness):
    data = benchmark(figure_6_4, harness)
    print("\n" + data["table"])
    assert len(data["rows"]) >= 5
    assert all(row["cycles"] > 0 for row in data["rows"])
    assert all(row["queues"] >= 0 for row in data["rows"])
