"""Figure 6.1 — power consumption normalised to the pure MicroBlaze implementation."""

from repro.eval.experiments import figure_6_1


def test_figure_6_1(benchmark, harness):
    data = benchmark(figure_6_1, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        # Paper ordering: pure HW is the most efficient, Twill sits between
        # pure HW and the pure MicroBlaze implementation.
        assert row["pure_hw"] < row["twill"]
        assert row["twill"] <= row["pure_sw"] + 0.25
