"""Figure 6.6 — Twill speedup normalised to the 8-entry-queue configuration."""

from repro.eval.experiments import figure_6_6


def test_figure_6_6(benchmark, harness):
    data = benchmark(figure_6_6, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        assert abs(row["depth_8"] - 1.0) < 1e-9
        # Shorter queues can only slow the pipeline down, longer ones can only help.
        assert row["depth_2"] <= 1.0 + 1e-9
        assert row["depth_32"] >= 1.0 - 1e-9
