"""Table 6.1 — DSWP results: queues, semaphores and hardware threads per benchmark."""

from repro.eval.experiments import table_6_1


def test_table_6_1(benchmark, harness):
    data = benchmark(table_6_1, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        assert row["queues"] >= 1
        assert row["hw_threads"] >= 1
        assert row["semaphores"] >= 0
