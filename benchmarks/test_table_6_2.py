"""Table 6.2 — FPGA LUTs used by LegUp pure HW vs the Twill hybrid."""

from repro.eval.experiments import table_6_2


def test_table_6_2(benchmark, harness):
    data = benchmark(table_6_2, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        assert row["legup_luts"] > 0
        assert row["twill_hwthreads_luts"] > 0
        # Twill + Microblaze is always the largest column, as in the thesis.
        assert row["twill_plus_microblaze_luts"] > row["twill_luts"] > row["twill_hwthreads_luts"]
