"""Figure 6.3 — MIPS benchmark performance vs targeted partition split point."""

from repro.eval.experiments import figure_6_3


def test_figure_6_3(benchmark, harness):
    data = benchmark(figure_6_3, harness)
    print("\n" + data["table"])
    assert len(data["rows"]) >= 5
    speedups = [row["speedup_vs_sw"] for row in data["rows"]]
    # The split point matters: the sweep is not flat.
    assert max(speedups) > 0
    assert all(row["cycles"] > 0 for row in data["rows"])
