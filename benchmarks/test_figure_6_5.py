"""Figure 6.5 — Twill speedup normalised to the 2-cycle queue-latency configuration."""

from repro.eval.experiments import QUEUE_LATENCIES, figure_6_5


def test_figure_6_5(benchmark, harness):
    data = benchmark(figure_6_5, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        assert abs(row["latency_2"] - 1.0) < 1e-9
        # Higher queue latency never helps; at 128 cycles the thesis reports
        # a ~27% average slowdown, ours should at least not speed up.
        previous = row[f"latency_{QUEUE_LATENCIES[0]}"]
        for latency in QUEUE_LATENCIES[1:]:
            assert row[f"latency_{latency}"] <= previous + 1e-9
            previous = row[f"latency_{latency}"]
    assert data["mean_slowdown_at_128"] >= 0.0
