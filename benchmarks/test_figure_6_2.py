"""Figure 6.2 — performance speedups normalised to the pure SW implementation."""

from repro.eval.experiments import figure_6_2


def test_figure_6_2(benchmark, harness):
    data = benchmark(figure_6_2, harness)
    print("\n" + data["table"])
    for row in data["rows"]:
        # Shape: both hardware-using configurations beat the MicroBlaze, and
        # Twill beats (or at worst matches) LegUp's pure-HW translation —
        # the paper reports 22.2x / 1.63x on real hardware.
        assert row["pure_hw_speedup"] > 1.5
        assert row["twill_speedup"] > 1.5
        assert row["twill_vs_hw"] >= 0.95
    assert data["mean_twill_vs_hw"] > 1.0
