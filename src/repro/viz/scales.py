"""Scales and tick computation shared by every chart in ``repro.viz``.

Three scale kinds cover the whole figure set:

* :class:`LinearScale` — continuous value → pixel mapping (y axes, scatter);
* :class:`BandScale` — one padded band per category (bar charts);
* :class:`PointScale` — evenly spaced points for swept parameter values
  (the x axis of the sensitivity sweeps, where 2/8/32/128 are *settings*,
  not a continuous quantity).

:func:`nice_ticks` produces the classic 1-2-5-stepped "nice" tick values.
Everything here is plain float arithmetic — deterministic by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class LinearScale:
    """Affine map from a value domain onto a pixel range."""

    domain: Tuple[float, float]
    range: Tuple[float, float]

    def __call__(self, value: float) -> float:
        d0, d1 = self.domain
        r0, r1 = self.range
        span = d1 - d0
        if span == 0:
            return r0
        return r0 + (value - d0) / span * (r1 - r0)


def nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """"Nice" tick values covering ``[lo, hi]`` with about *count* steps.

    Steps are 1, 2 or 5 times a power of ten; the returned list starts at or
    below *lo* and ends at or above *hi*, so the outermost gridlines always
    bracket the data.
    """
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(count, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    step = magnitude
    for multiplier in (1.0, 2.0, 5.0, 10.0):
        step = magnitude * multiplier
        if raw_step <= step:
            break
    first = math.floor(lo / step) * step
    ticks: List[float] = []
    value = first
    # Guard with a generous iteration cap: float drift must never loop forever.
    for _ in range(1000):
        ticks.append(round(value, 10))
        if value >= hi - 1e-12:
            break
        value += step
    return ticks


@dataclass(frozen=True)
class BandScale:
    """One band per category with symmetric outer padding.

    ``position(i)`` is the left edge of band *i*; :attr:`bandwidth` the band
    width.  Inner padding is a fixed fraction of the step, which keeps bar
    groups visually separated at any category count.
    """

    categories: Tuple[str, ...]
    range: Tuple[float, float]
    padding: float = 0.22  # fraction of one step left as air on each side of a band

    @property
    def step(self) -> float:
        r0, r1 = self.range
        return (r1 - r0) / max(len(self.categories), 1)

    @property
    def bandwidth(self) -> float:
        return self.step * (1.0 - 2.0 * self.padding)

    def position(self, index: int) -> float:
        return self.range[0] + self.step * index + self.step * self.padding

    def center(self, index: int) -> float:
        return self.position(index) + self.bandwidth / 2.0


@dataclass(frozen=True)
class PointScale:
    """Evenly spaced points (with half-step outer padding) for swept values."""

    categories: Tuple[str, ...]
    range: Tuple[float, float]

    def __call__(self, index: int) -> float:
        r0, r1 = self.range
        n = len(self.categories)
        if n <= 1:
            return (r0 + r1) / 2.0
        step = (r1 - r0) / n
        return r0 + step / 2.0 + step * index


def value_domain(values: Sequence[float], headroom: float = 0.08) -> Tuple[float, float]:
    """Bar/line y domain: zero-based, with *headroom* above the maximum."""
    top = max([v for v in values if v == v], default=1.0)  # NaN-safe max
    if top <= 0:
        top = 1.0
    return (0.0, top * (1.0 + headroom))
