"""Chart forms for ``repro.viz``: bars, line sweeps, scatter, timeline.

Every function here takes plain data (categories, :class:`Series`, points)
and returns serialised SVG markup, built exclusively from
:mod:`repro.viz.svg` primitives and :mod:`repro.viz.scales`.  The shared
visual grammar (one axis, thin marks with rounded data-ends, 2px surface
gaps and marker rings, hairline recessive grid, a legend whenever two or
more series are on screen, native ``<title>`` tooltips on every mark) lives
in the helpers at the top so the chart functions stay declarative.

All layout is computed from deterministic character-count estimates — no
font metrics, no environment queries — so the same inputs always produce
byte-identical markup (see ``tests/test_viz.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.viz import theme
from repro.viz.scales import BandScale, LinearScale, PointScale, nice_ticks, value_domain
from repro.viz.svg import Element, fmt_num, polyline_points, render, svg_root, text_width


@dataclass(frozen=True)
class Series:
    """One named series: a value per category and a fixed palette slot."""

    label: str
    values: Tuple[float, ...]
    slot: int


@dataclass(frozen=True)
class ScatterPoint:
    """One scatter mark, optionally direct-labelled."""

    x: float
    y: float
    slot: int
    label: str = ""
    tooltip: str = ""


@dataclass(frozen=True)
class Span:
    """One executed task on the timeline: a half-open interval on a lane."""

    name: str
    kind: str
    worker: str
    start: float
    end: float


#: Task kind → palette slot for the execution timeline.
TIMELINE_KIND_SLOTS: Dict[str, int] = {
    "compile": 0,
    "runtime": 1,
    "split": 2,
    "explore": 3,
    "aggregate": 4,
    "render": 6,
}


# ---------------------------------------------------------------------------
# shared frame: surface, title, legend, axes
# ---------------------------------------------------------------------------


@dataclass
class _Frame:
    """The assembled chart scaffold the chart bodies draw into."""

    root: Element
    plot: Element
    left: float
    top: float
    right: float
    bottom: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def plot_width(self) -> float:
        return self.right - self.left


def _tick_label(value: float) -> str:
    """Clean tick text: thousands-comma'd integers, trimmed short floats."""
    if abs(value - round(value)) < 1e-9:
        return f"{int(round(value)):,}"
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _legend_items(series: Sequence[Series]) -> List[Tuple[str, int]]:
    return [(s.label, s.slot) for s in series]


def _frame(
    width: int,
    height: int,
    title: str,
    legend: Sequence[Tuple[str, int]],
    y_ticks: Sequence[float],
    y_label: str = "",
    legend_kind: str = "swatch",
) -> Tuple[_Frame, LinearScale]:
    """Surface + title + legend + y grid; returns the frame and the y scale.

    A legend is drawn only for two or more entries (a single series is named
    by the title); marks and axes are added by the caller inside
    ``frame.plot``.
    """
    root = svg_root(width, height, theme.stylesheet(), title)
    root.elem("rect", {"class": "vz-surface", "x": 0, "y": 0, "width": width, "height": height})
    root.elem("text", {"class": "vz-title", "x": 14, "y": 20}, text=title)

    show_legend = len(legend) >= 2
    top = 58.0 if show_legend else 36.0
    tick_labels = [_tick_label(t) for t in y_ticks]
    label_width = max([text_width(t) for t in tick_labels], default=0.0)
    left = 24.0 + label_width + (16.0 if y_label else 0.0)
    right = width - 16.0
    bottom = height - 44.0

    if show_legend:
        x = left
        y = 38.0
        for label, slot in legend:
            if legend_kind == "line":
                root.elem(
                    "line",
                    {"class": f"vz-ln{slot} vz-line", "x1": x, "y1": y - 4, "x2": x + 14, "y2": y - 4},
                )
            else:
                root.elem(
                    "rect",
                    {"class": f"vz-s{slot}", "x": x, "y": y - 10, "width": 12, "height": 12, "rx": 3},
                )
            x += 18.0
            root.elem("text", {"class": "vz-lab", "x": x, "y": y}, text=label)
            x += text_width(label) + 18.0

    scale = LinearScale((y_ticks[0], y_ticks[-1]), (bottom, top))
    for tick, label in zip(y_ticks, tick_labels):
        y = scale(tick)
        root.elem("line", {"class": "vz-grid", "x1": left, "y1": y, "x2": right, "y2": y})
        root.elem(
            "text",
            {"class": "vz-lab vz-num", "x": left - 8, "y": y + 4, "text-anchor": "end"},
            text=label,
        )
    if y_label:
        root.elem(
            "text",
            {
                "class": "vz-axlab",
                "x": 14,
                "y": (top + bottom) / 2,
                "transform": f"rotate(-90 14 {fmt_num((top + bottom) / 2)})",
                "text-anchor": "middle",
            },
            text=y_label,
        )
    root.elem("line", {"class": "vz-axis", "x1": left, "y1": bottom, "x2": right, "y2": bottom})
    plot = root.elem("g", {})
    return _Frame(root=root, plot=plot, left=left, top=top, right=right, bottom=bottom), scale


def _x_category_labels(frame: _Frame, labels: Sequence[str], centers: Sequence[float]) -> None:
    for label, x in zip(labels, centers):
        frame.root.elem(
            "text",
            {"class": "vz-lab", "x": x, "y": frame.bottom + 16, "text-anchor": "middle"},
            text=label,
        )


def _x_axis_label(frame: _Frame, label: str) -> None:
    if label:
        frame.root.elem(
            "text",
            {
                "class": "vz-axlab",
                "x": (frame.left + frame.right) / 2,
                "y": frame.bottom + 33,
                "text-anchor": "middle",
            },
            text=label,
        )


def _reference_line(frame: _Frame, scale: LinearScale, value: float, label: str) -> None:
    """A labelled horizontal reference rule (e.g. the pure-software baseline)."""
    y = scale(value)
    frame.plot.elem("line", {"class": "vz-ref", "x1": frame.left, "y1": y, "x2": frame.right, "y2": y})
    frame.plot.elem(
        "text",
        {"class": "vz-lab", "x": frame.right, "y": y - 4, "text-anchor": "end"},
        text=label,
    )


def _bar(
    parent: Element,
    x: float,
    y_top: float,
    width: float,
    y_base: float,
    slot: int,
    tooltip: str,
    rounded: bool = True,
) -> None:
    """One bar/segment: 4px rounded data-end, square at the baseline."""
    radius = min(float(theme.BAR_CORNER_RADIUS), width / 2.0, max(y_base - y_top, 0.0))
    if rounded and radius > 0.0:
        x1 = x + width
        d = (
            f"M{fmt_num(x)},{fmt_num(y_base)}"
            f" L{fmt_num(x)},{fmt_num(y_top + radius)}"
            f" Q{fmt_num(x)},{fmt_num(y_top)} {fmt_num(x + radius)},{fmt_num(y_top)}"
            f" L{fmt_num(x1 - radius)},{fmt_num(y_top)}"
            f" Q{fmt_num(x1)},{fmt_num(y_top)} {fmt_num(x1)},{fmt_num(y_top + radius)}"
            f" L{fmt_num(x1)},{fmt_num(y_base)} Z"
        )
        mark = parent.elem("path", {"class": f"vz-s{slot}", "d": d})
    else:
        mark = parent.elem(
            "rect",
            {
                "class": f"vz-s{slot}",
                "x": x,
                "y": y_top,
                "width": width,
                "height": max(y_base - y_top, 0.0),
            },
        )
    if tooltip:
        mark.elem("title", text=tooltip)


# ---------------------------------------------------------------------------
# chart forms
# ---------------------------------------------------------------------------


def grouped_bars(
    categories: Sequence[str],
    series: Sequence[Series],
    *,
    title: str,
    y_label: str,
    value_format: str = "{:.2f}",
    baseline: Optional[Tuple[float, str]] = None,
    width: int = 680,
    height: int = 320,
) -> str:
    """Grouped bar chart: one band per category, one thin bar per series."""
    all_values = [v for s in series for v in s.values]
    if baseline is not None:
        all_values.append(baseline[0])
    ticks = nice_ticks(*value_domain(all_values))
    frame, scale = _frame(width, height, title, _legend_items(series), ticks, y_label)
    bands = BandScale(tuple(categories), (frame.left, frame.right))
    n = max(len(series), 1)
    gap = float(theme.SURFACE_GAP)
    bar_width = min(float(theme.BAR_MAX_THICKNESS), (bands.bandwidth - gap * (n - 1)) / n)
    group_width = bar_width * n + gap * (n - 1)
    for index, category in enumerate(categories):
        x = bands.position(index) + (bands.bandwidth - group_width) / 2.0
        for s in series:
            value = s.values[index]
            tooltip = f"{category} · {s.label}: {value_format.format(value)}"
            _bar(frame.plot, x, scale(value), bar_width, frame.bottom, s.slot, tooltip)
            x += bar_width + gap
    if baseline is not None:
        _reference_line(frame, scale, baseline[0], baseline[1])
    _x_category_labels(frame, categories, [bands.center(i) for i in range(len(categories))])
    return render(frame.root)


def stacked_bars(
    categories: Sequence[str],
    series: Sequence[Series],
    *,
    title: str,
    y_label: str,
    value_format: str = "{:,.0f}",
    reference: Optional[Tuple[Tuple[float, ...], str]] = None,
    width: int = 680,
    height: int = 320,
) -> str:
    """Stacked bar chart: series stack bottom-up with 2px surface gaps.

    *reference* is an optional per-category value drawn as a short dash over
    each bar (e.g. the LegUp pure-hardware total beside Twill's composition)
    plus its legend label.
    """
    totals = [sum(s.values[i] for s in series) for i in range(len(categories))]
    domain_values = list(totals)
    legend = _legend_items(series)
    if reference is not None:
        domain_values.extend(reference[0])
        legend = legend + [(reference[1], -1)]
    ticks = nice_ticks(*value_domain(domain_values))
    frame, scale = _frame(width, height, title, legend, ticks, y_label)
    bands = BandScale(tuple(categories), (frame.left, frame.right))
    bar_width = min(float(theme.BAR_MAX_THICKNESS) * 1.5, bands.bandwidth)
    gap = float(theme.SURFACE_GAP)
    for index, category in enumerate(categories):
        x = bands.center(index) - bar_width / 2.0
        cumulative = 0.0
        boundaries = [frame.bottom]
        for s in series:
            cumulative += s.values[index]
            boundaries.append(scale(cumulative))
        top_segment = len(series) - 1
        for position, s in enumerate(series):
            value = s.values[index]
            if value <= 0:
                continue
            y_base = boundaries[position] - (gap if position > 0 else 0.0)
            y_top = boundaries[position + 1]
            if y_base <= y_top:
                continue  # the gap consumed a sliver-thin segment
            tooltip = f"{category} · {s.label}: {value_format.format(value)}"
            _bar(frame.plot, x, y_top, bar_width, y_base, s.slot, tooltip,
                 rounded=position == top_segment)
        if reference is not None:
            y = scale(reference[0][index])
            dash = frame.plot.elem(
                "line",
                {"class": "vz-ref", "x1": x - 4, "y1": y, "x2": x + bar_width + 4, "y2": y},
            )
            dash.elem("title", text=f"{category} · {reference[1]}: {value_format.format(reference[0][index])}")
    _x_category_labels(frame, categories, [bands.center(i) for i in range(len(categories))])
    # The reference dash's legend entry: a short rule instead of a swatch.
    if reference is not None:
        _fix_reference_legend(frame.root)
    return render(frame.root)


def _fix_reference_legend(root: Element) -> None:
    """Swap the placeholder slot -1 legend swatch for a reference-rule key."""
    for child in root.children:
        if isinstance(child, Element) and child.attrs.get("class") == "vz-s-1":
            child.tag = "line"
            x = float(child.attrs["x"])
            y = float(child.attrs["y"])
            child.attrs = {
                "class": "vz-ref",
                "x1": x,
                "y1": y + 6,
                "x2": x + 12,
                "y2": y + 6,
            }


def line_chart(
    x_labels: Sequence[str],
    series: Sequence[Series],
    *,
    title: str,
    y_label: str,
    x_axis_label: str,
    value_format: str = "{:.2f}",
    y_max: Optional[float] = None,
    width: int = 680,
    height: int = 320,
) -> str:
    """Line sweep over discrete swept values (point x scale, 2px lines).

    Up to four series carry direct end labels; beyond that the legend alone
    carries identity (end labels would collide as lines converge).
    """
    all_values = [v for s in series for v in s.values]
    domain = value_domain(all_values)
    if y_max is not None:
        domain = (0.0, y_max)
    ticks = nice_ticks(*domain)
    direct_labels = len(series) <= 4
    right_pad = 10.0 + (
        max([text_width(s.label) for s in series], default=0.0) if direct_labels and len(series) >= 2 else 0.0
    )
    frame, scale = _frame(width, height, title, _legend_items(series), ticks, y_label,
                          legend_kind="line")
    frame.right -= right_pad  # leave air for end labels
    points_x = PointScale(tuple(x_labels), (frame.left, frame.right))
    for s in series:
        coords = [(points_x(i), scale(v)) for i, v in enumerate(s.values)]
        frame.plot.elem(
            "polyline",
            {"class": f"vz-ln{s.slot} vz-line", "points": polyline_points(coords)},
        )
        for (x, y), x_label_text, value in zip(coords, x_labels, s.values):
            marker = frame.plot.elem(
                "circle",
                {"class": f"vz-s{s.slot} vz-ring", "cx": x, "cy": y, "r": theme.MARKER_RADIUS},
            )
            marker.elem(
                "title",
                text=f"{s.label} · {x_axis_label} {x_label_text}: {value_format.format(value)}",
            )
        if direct_labels and len(series) >= 2:
            end_x, end_y = coords[-1]
            frame.plot.elem(
                "text",
                {"class": "vz-dlab", "x": end_x + 8, "y": end_y + 4},
                text=s.label,
            )
    _x_category_labels(frame, x_labels, [points_x(i) for i in range(len(x_labels))])
    _x_axis_label(frame, x_axis_label)
    return render(frame.root)


def scatter_chart(
    points: Sequence[ScatterPoint],
    *,
    legend: Sequence[Tuple[str, int]],
    links: Sequence[Tuple[int, int]] = (),
    title: str,
    y_label: str,
    x_axis_label: str,
    width: int = 680,
    height: int = 360,
) -> str:
    """Scatter/Pareto chart; *links* connect point indices (dumbbell pairs)."""
    y_ticks = nice_ticks(*value_domain([p.y for p in points]))
    x_ticks = nice_ticks(*value_domain([p.x for p in points]))
    frame, scale_y = _frame(width, height, title, list(legend), y_ticks, y_label)
    scale_x = LinearScale((x_ticks[0], x_ticks[-1]), (frame.left, frame.right))
    for tick in x_ticks:
        x = scale_x(tick)
        frame.root.elem(
            "text",
            {"class": "vz-lab vz-num", "x": x, "y": frame.bottom + 16, "text-anchor": "middle"},
            text=_tick_label(tick),
        )
    _x_axis_label(frame, x_axis_label)
    for start, end in links:
        a, b = points[start], points[end]
        frame.plot.elem(
            "line",
            {
                "class": "vz-link",
                "x1": scale_x(a.x),
                "y1": scale_y(a.y),
                "x2": scale_x(b.x),
                "y2": scale_y(b.y),
            },
        )
    for point in points:
        x, y = scale_x(point.x), scale_y(point.y)
        mark = frame.plot.elem(
            "circle",
            {"class": f"vz-s{point.slot} vz-ring", "cx": x, "cy": y, "r": theme.MARKER_RADIUS + 1},
        )
        if point.tooltip:
            mark.elem("title", text=point.tooltip)
        if point.label:
            frame.plot.elem(
                "text", {"class": "vz-dlab", "x": x + 9, "y": y + 4}, text=point.label
            )
    return render(frame.root)


def timeline_chart(
    spans: Sequence[Span],
    *,
    title: str = "Task execution timeline",
    width: int = 900,
) -> str:
    """Per-worker execution timeline (one lane per worker, bars per task).

    Built from ``--trace`` spans, so — unlike every other chart — its
    contents depend on wall-clock measurements and the chart is only
    embedded when a trace was explicitly captured.
    """
    if not spans:
        return ""
    t0 = min(span.start for span in spans)
    total = max(max(span.end for span in spans) - t0, 1e-6)
    workers = sorted({span.worker for span in spans})
    lane_pitch, bar_height = 22.0, 14.0
    label_width = max(max(text_width(w) for w in workers), text_width("worker")) + 16.0
    top, bottom_pad = 64.0, 40.0
    height = int(top + lane_pitch * len(workers) + bottom_pad)
    root = svg_root(width, height, theme.stylesheet(), title)
    root.elem("rect", {"class": "vz-surface", "x": 0, "y": 0, "width": width, "height": height})
    root.elem("text", {"class": "vz-title", "x": 14, "y": 20}, text=title)
    kinds = sorted({span.kind for span in spans}, key=lambda k: TIMELINE_KIND_SLOTS.get(k, 7))
    x = 14.0
    for kind in kinds:
        slot = TIMELINE_KIND_SLOTS.get(kind, 7)
        root.elem("rect", {"class": f"vz-s{slot}", "x": x, "y": 28, "width": 12, "height": 12, "rx": 3})
        x += 18.0
        root.elem("text", {"class": "vz-lab", "x": x, "y": 38}, text=kind)
        x += text_width(kind) + 18.0
    left, right = 14.0 + label_width, width - 16.0
    scale = LinearScale((0.0, total), (left, right))
    lanes = {worker: top + lane_pitch * i for i, worker in enumerate(workers)}
    for worker, y in lanes.items():
        root.elem("text", {"class": "vz-lab", "x": 14, "y": y + bar_height - 3}, text=worker)
        root.elem("line", {"class": "vz-grid", "x1": left, "y1": y + bar_height + 3,
                           "x2": right, "y2": y + bar_height + 3})
    plot = root.elem("g", {})
    for span in spans:
        x0, x1 = scale(span.start - t0), scale(span.end - t0)
        slot = TIMELINE_KIND_SLOTS.get(span.kind, 7)
        bar = plot.elem(
            "rect",
            {
                "class": f"vz-s{slot}",
                "x": x0,
                "y": lanes[span.worker],
                "width": max(x1 - x0, 1.5),
                "height": bar_height,
                "rx": 2,
            },
        )
        bar.elem(
            "title",
            text=f"{span.name} ({span.kind}) on {span.worker}: {span.end - span.start:.3f}s",
        )
    axis_y = top + lane_pitch * len(workers) + 8.0
    root.elem("line", {"class": "vz-axis", "x1": left, "y1": axis_y, "x2": right, "y2": axis_y})
    for tick in nice_ticks(0.0, total, 6):
        if tick > total * 1.001:
            break
        x = scale(tick)
        root.elem(
            "text",
            {"class": "vz-lab vz-num", "x": x, "y": axis_y + 16, "text-anchor": "middle"},
            text=f"{tick:g}s",
        )
    return render(root)
