"""Run-history trend renderers: per-metric line charts and sparklines.

`repro history trend --svg DIR` and the HTML report's trends card both
come through here: given the value series :func:`repro.obs.history.metric_series`
extracts from ``runs.jsonl``, render either a full line chart (run index
on the x axis, metric value on the y axis — reusing the same
:func:`repro.viz.charts.line_chart` engine the thesis figures use, so
theme/determinism guarantees carry over for free) or a compact inline
sparkline SVG for dense dashboards.
"""

from __future__ import annotations

from typing import List

from repro.viz import theme
from repro.viz.charts import Series, line_chart
from repro.viz.svg import polyline_points, render, svg_root


def trend_chart(metric: str, values: List[float], *, command: str = "") -> str:
    """A line chart of one metric across runs (needs >= 2 values)."""
    label = f"{command}: {metric}" if command else metric
    x_labels = [str(index + 1) for index in range(len(values))]
    return line_chart(
        x_labels,
        [Series(label=metric, values=tuple(values), slot=0)],
        title=f"history · {label}",
        y_label=metric,
        x_axis_label="run",
        value_format="{:.3f}",
    )


def sparkline_svg(values: List[float], *, width: int = 140, height: int = 28) -> str:
    """A minimal inline sparkline: one polyline, last point marked."""
    svg = svg_root(width, height, theme.stylesheet(), "history sparkline")
    svg.elem("rect", {"class": "vz-surface", "x": 0, "y": 0, "width": width, "height": height})
    if len(values) >= 2:
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        pad = 3.0
        step = (width - 2 * pad) / (len(values) - 1)
        points = [
            (
                round(pad + index * step, 2),
                round(height - pad - (value - low) / span * (height - 2 * pad), 2),
            )
            for index, value in enumerate(values)
        ]
        svg.elem(
            "polyline",
            {"class": "vz-line vz-ln0", "points": polyline_points(points)},
        )
        svg.elem(
            "circle",
            {
                "class": "vz-s0",
                "cx": points[-1][0],
                "cy": points[-1][1],
                "r": 2.5,
            },
        )
    return render(svg)
