"""Declarative figure specs: thesis result dicts → ``repro.viz`` charts.

Each :class:`FigureSpec` names one renderable figure — the six thesis
figures (6.1-6.6), two composites (``area``: Twill's LUT composition from
the Table 6.2 rows; ``pareto``: the area/performance trade-off) and the
design-space-exploration pair (``explore``: the candidate scatter with its
Pareto frontier; ``explore-progress``: the search curve) — and
holds a pure ``build`` function mapping the corresponding
:mod:`repro.eval.experiments` result dictionary onto a chart.  The specs
read only the ``rows`` lists of those dicts, so a figure is a pure function
of the same structured data the tables and the JSON report are built from:
identical data renders to identical bytes, which is what lets the task
graph cache rendered figures by the content addresses of their inputs.

Series → palette-slot assignment is fixed per entity (Twill blue, LegUp
orange, pure software aqua; benchmarks take slots 0-7 in row order in the
sweep figures) so identity never changes colour between figures, between
runs, or when the benchmark set is restricted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.viz import theme
from repro.viz.charts import ScatterPoint, Series, grouped_bars, line_chart, scatter_chart, stacked_bars


@dataclass(frozen=True)
class FigureSpec:
    """One renderable figure: identity, prose, and its pure chart builder."""

    figure_id: str
    title: str
    caption: str
    build: Callable[[Dict], str]


# ---------------------------------------------------------------------------
# builders (each takes the experiment result dict, returns SVG markup)
# ---------------------------------------------------------------------------


def _benchmarks(data: Dict) -> List[str]:
    return [row["benchmark"] for row in data["rows"]]


def _build_figure_6_1(data: Dict) -> str:
    rows = data["rows"]
    return grouped_bars(
        _benchmarks(data),
        [
            Series("LegUp pure HW", tuple(r["pure_hw"] for r in rows), theme.SLOT_LEGUP),
            Series("Twill", tuple(r["twill"] for r in rows), theme.SLOT_TWILL),
        ],
        title="Figure 6.1 — Power normalised to the pure MicroBlaze implementation",
        y_label="normalised power",
        baseline=(1.0, "pure SW = 1.0"),
    )


def _build_figure_6_2(data: Dict) -> str:
    rows = data["rows"]
    return grouped_bars(
        _benchmarks(data),
        [
            Series("LegUp pure HW", tuple(r["pure_hw_speedup"] for r in rows), theme.SLOT_LEGUP),
            Series("Twill", tuple(r["twill_speedup"] for r in rows), theme.SLOT_TWILL),
        ],
        title="Figure 6.2 — Speedup normalised to the pure software implementation",
        y_label="speedup vs pure SW (x)",
        value_format="{:.2f}x",
        baseline=(1.0, "pure SW = 1.0"),
    )


def _build_split_sweep(data: Dict, figure_id: str) -> str:
    rows = data["rows"]
    benchmark = data["benchmark"]
    labels = [f"{r['sw_fraction']:g}" for r in rows]
    return line_chart(
        labels,
        [Series(benchmark, tuple(r["speedup_vs_sw"] for r in rows), theme.SLOT_TWILL)],
        title=(
            f"Figure {figure_id} — {benchmark} performance vs targeted partition split"
        ),
        y_label="speedup vs pure SW (x)",
        x_axis_label="targeted software share",
        value_format="{:.2f}x",
    )


def _sweep_columns(rows: List[Dict], prefix: str) -> List[int]:
    """The swept values present in the row keys (``latency_8`` → 8), sorted."""
    values = {
        int(key[len(prefix):])
        for key in rows[0]
        if key.startswith(prefix) and key[len(prefix):].isdigit()
    }
    return sorted(values)


def _build_runtime_sweep(data: Dict, prefix: str, title: str, x_axis_label: str) -> str:
    rows = data["rows"]
    swept = _sweep_columns(rows, prefix)
    series = [
        Series(
            row["benchmark"],
            tuple(row[f"{prefix}{value}"] for value in swept),
            slot % len(theme.SERIES_LIGHT),
        )
        for slot, row in enumerate(rows)
    ]
    return line_chart(
        [str(value) for value in swept],
        series,
        title=title,
        y_label="normalised speedup",
        x_axis_label=x_axis_label,
        y_max=1.12,
    )


def _build_figure_6_5(data: Dict) -> str:
    return _build_runtime_sweep(
        data,
        "latency_",
        "Figure 6.5 — Speedup vs queue latency, normalised to 2-cycle queues",
        "queue latency (cycles)",
    )


def _build_figure_6_6(data: Dict) -> str:
    return _build_runtime_sweep(
        data,
        "depth_",
        "Figure 6.6 — Speedup vs queue depth, normalised to 8-entry queues",
        "queue depth (entries)",
    )


def _build_area(data: Dict) -> str:
    rows = data["rows"]
    hw_threads = [float(r["twill_hwthreads_luts"]) for r in rows]
    runtime = [max(float(r["twill_luts"]) - float(r["twill_hwthreads_luts"]), 0.0) for r in rows]
    microblaze = [
        max(float(r["twill_plus_microblaze_luts"]) - float(r["twill_luts"]), 0.0) for r in rows
    ]
    return stacked_bars(
        _benchmarks(data),
        [
            Series("HW threads", tuple(hw_threads), theme.SLOT_TWILL),
            Series("Twill runtime", tuple(runtime), 6),
            Series("MicroBlaze", tuple(microblaze), theme.SLOT_SOFTWARE),
        ],
        title="Twill FPGA area composition (LUTs), with the LegUp total for scale",
        y_label="LUTs",
        reference=(tuple(float(r["legup_luts"]) for r in rows), "LegUp pure HW total"),
    )


def _build_explore_frontier(data: Dict) -> str:
    """Exploration scatter: every evaluated candidate, frontier chained.

    One palette slot per explored workload (workload order fixes identity);
    Pareto-optimal candidates are direct-labelled with their split target
    and connected left-to-right, dominated candidates stay unlabelled.
    """
    rows = data["rows"]
    names: List[str] = list(data["workloads"])
    points: List[ScatterPoint] = []
    links: List = []
    frontier_indices: Dict[str, List[int]] = {name: [] for name in names}
    for row in rows:
        name = row["benchmark"]
        slot = names.index(name) % len(theme.SERIES_LIGHT)
        params = ", ".join(
            f"{key}={row[key]}" for key in sorted(row)
            if key not in ("benchmark", "cycles", "area_luts", "power_mw",
                           "speedup_vs_sw", "pareto")
        )
        pareto = bool(row.get("pareto"))
        if pareto:
            frontier_indices[name].append(len(points))
        points.append(
            ScatterPoint(
                x=float(row["area_luts"]),
                y=float(row["speedup_vs_sw"]),
                slot=slot,
                label=f"sw={row['sw_fraction']:g}" if pareto and "sw_fraction" in row else "",
                tooltip=(
                    f"{name} · {params}: {row['area_luts']:,.0f} LUTs, "
                    f"{row['speedup_vs_sw']:.2f}x, {row['power_mw']:.0f} mW"
                    + (" · Pareto-optimal" if pareto else "")
                ),
            )
        )
    for name in names:
        chain = sorted(frontier_indices[name], key=lambda i: (points[i].x, points[i].y))
        links.extend(zip(chain, chain[1:]))
    return scatter_chart(
        points,
        legend=[(name, names.index(name) % len(theme.SERIES_LIGHT)) for name in names],
        links=links,
        title="Exploration — every evaluated candidate, Pareto frontier linked",
        y_label="speedup vs pure SW (x)",
        x_axis_label="FPGA area (LUTs)",
    )


def _build_explore_progress(data: Dict) -> str:
    """Search-progress line: best objective product vs evaluations spent."""
    progress: Dict[str, List[float]] = data["progress"]
    names = list(data["workloads"])
    count = max((len(curve) for curve in progress.values()), default=0)
    series = [
        Series(name, tuple(progress[name]), names.index(name) % len(theme.SERIES_LIGHT))
        for name in names
    ]
    return line_chart(
        [str(i) for i in range(1, count + 1)],
        series,
        title="Exploration — best objective product found vs candidates evaluated",
        y_label="best area x cycles x power (rel. to first)",
        x_axis_label="candidates evaluated",
    )


def _build_pareto(data: Dict) -> str:
    rows = data["rows"]
    points: List[ScatterPoint] = []
    links = []
    for row in rows:
        legup_index = len(points)
        points.append(
            ScatterPoint(
                x=float(row["legup_luts"]),
                y=float(row["legup_speedup"]),
                slot=theme.SLOT_LEGUP,
                tooltip=(
                    f"{row['benchmark']} · LegUp pure HW: {row['legup_luts']:,.0f} LUTs, "
                    f"{row['legup_speedup']:.2f}x"
                ),
            )
        )
        points.append(
            ScatterPoint(
                x=float(row["twill_luts"]),
                y=float(row["twill_speedup"]),
                slot=theme.SLOT_TWILL,
                label=row["benchmark"],
                tooltip=(
                    f"{row['benchmark']} · Twill + MicroBlaze: {row['twill_luts']:,.0f} LUTs, "
                    f"{row['twill_speedup']:.2f}x"
                ),
            )
        )
        links.append((legup_index, legup_index + 1))
    return scatter_chart(
        points,
        legend=[("Twill + MicroBlaze", theme.SLOT_TWILL), ("LegUp pure HW", theme.SLOT_LEGUP)],
        links=links,
        title="Area vs performance: each benchmark's LegUp and Twill design points",
        y_label="speedup vs pure SW (x)",
        x_axis_label="FPGA area (LUTs)",
    )


#: Every renderable figure, in report order.
FIGURE_SPECS: Dict[str, FigureSpec] = {
    "6.1": FigureSpec(
        "6.1",
        "Figure 6.1 — Power",
        "Estimated power of each implementation, normalised to the pure "
        "MicroBlaze (software) system; lower is better.",
        _build_figure_6_1,
    ),
    "6.2": FigureSpec(
        "6.2",
        "Figure 6.2 — Performance",
        "End-to-end speedup over the pure software implementation for the "
        "LegUp pure-hardware and Twill hybrid systems.",
        _build_figure_6_2,
    ),
    "6.3": FigureSpec(
        "6.3",
        "Figure 6.3 — MIPS split sweep",
        "MIPS performance as the targeted share of work placed on the "
        "processor partition varies.",
        lambda data: _build_split_sweep(data, "6.3"),
    ),
    "6.4": FigureSpec(
        "6.4",
        "Figure 6.4 — Blowfish split sweep",
        "Blowfish performance as the targeted share of work placed on the "
        "processor partition varies.",
        lambda data: _build_split_sweep(data, "6.4"),
    ),
    "6.5": FigureSpec(
        "6.5",
        "Figure 6.5 — Queue latency sensitivity",
        "Twill speedup under increasing inter-thread queue latency, "
        "normalised to the 2-cycle baseline.",
        _build_figure_6_5,
    ),
    "6.6": FigureSpec(
        "6.6",
        "Figure 6.6 — Queue depth sensitivity",
        "Twill speedup with shorter and longer queues, normalised to the "
        "8-entry configuration the thesis evaluates.",
        _build_figure_6_6,
    ),
    "area": FigureSpec(
        "area",
        "FPGA area composition",
        "Where Twill's LUTs go — hardware threads, the Twill runtime "
        "(queues, semaphores, interconnect) and the MicroBlaze — with the "
        "LegUp pure-hardware total marked for scale (Table 6.2 data).",
        _build_area,
    ),
    "pareto": FigureSpec(
        "pareto",
        "Area / performance trade-off",
        "Each benchmark's two design points: LegUp pure hardware and the "
        "Twill hybrid (including the MicroBlaze), connected per benchmark. "
        "Up and to the left is better.",
        _build_pareto,
    ),
    "explore": FigureSpec(
        "explore",
        "Exploration — Pareto frontier",
        "Every configuration candidate the report's design-space exploration "
        "evaluated (split target x queue depth per workload); candidates on "
        "the exact area/cycles/power Pareto frontier are labelled and "
        "chained. Up and to the left is better.",
        _build_explore_frontier,
    ),
    "explore-progress": FigureSpec(
        "explore-progress",
        "Exploration — search progress",
        "How quickly the search closed in on its best configuration: the "
        "best area x cycles x power product found so far, relative to the "
        "first candidate, per candidate evaluated.",
        _build_explore_progress,
    ),
}


def render_figure(figure_id: str, data: Dict) -> str:
    """Render one figure's SVG from its experiment result dict."""
    spec = FIGURE_SPECS.get(figure_id)
    if spec is None:
        known = ", ".join(sorted(FIGURE_SPECS))
        raise ReproError(f"unknown figure '{figure_id}' (known: {known})")
    return spec.build(data)
