"""Flamegraph SVG renderer for collapsed sampling-profiler stacks.

Takes the ``{"mod:fn;mod:fn;..." -> samples}`` map a
:mod:`repro.obs.profile` run produces (possibly merged across processes)
and draws the classic icicle layout: the root row spans the full width,
each frame's width is proportional to the samples observed at-or-below
it, children sit under their parent sorted by name.  Everything is built
from the deterministic :mod:`repro.viz.svg` primitives — same stacks in,
byte-identical SVG out — and is self-contained like every other repro
figure: no script, no interactivity beyond native ``<title>`` tooltips
carrying the exact sample count and percentage per frame.

Colour assignment is a stable hash of the frame label onto the 8-slot
CVD-safe palette, so a function keeps its colour across runs and across
the per-worker flamegraphs of one parallel run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.viz import theme
from repro.viz.svg import Element, render, svg_root, text_width

#: Row height and label font size (px).
ROW_HEIGHT = 17
FONT_SIZE = 10.0

#: Frames narrower than this many px are dropped (their samples still
#: widen every ancestor, so nothing is lost from the totals).
MIN_FRAME_PX = 1.0

_PAD = 8
_TITLE_HEIGHT = 24


class _Node:
    __slots__ = ("label", "samples", "children")

    def __init__(self, label: str):
        self.label = label
        self.samples = 0
        self.children: Dict[str, "_Node"] = {}


def _build_trie(stacks: Mapping[str, int]) -> _Node:
    root = _Node("all")
    for stack, samples in sorted(stacks.items()):
        samples = int(samples)
        if samples <= 0:
            continue
        root.samples += samples
        node = root
        for label in stack.split(";"):
            node = node.children.setdefault(label, _Node(label))
            node.samples += samples
    return root


def _slot(label: str) -> int:
    return sum(ord(ch) for ch in label) % len(theme.SERIES_LIGHT)


def _depth(node: _Node) -> int:
    if not node.children:
        return 1
    return 1 + max(_depth(child) for child in node.children.values())


def flamegraph(
    stacks: Mapping[str, int], *, title: str = "CPU profile (sampled)", width: int = 1000
) -> str:
    """Render collapsed *stacks* as a self-contained flamegraph SVG."""
    root = _build_trie(stacks)
    depth = _depth(root) if root.samples else 1
    height = _PAD + _TITLE_HEIGHT + depth * ROW_HEIGHT + _PAD
    svg = svg_root(width, height, theme.stylesheet(), title)
    svg.elem("rect", {"class": "vz-surface", "x": 0, "y": 0, "width": width, "height": height})
    svg.elem("text", {"class": "vz-title", "x": _PAD, "y": _PAD + 13}, text=title)
    if not root.samples:
        svg.elem(
            "text",
            {"class": "vz-lab", "x": _PAD, "y": _PAD + _TITLE_HEIGHT + 12},
            text="no samples",
        )
        return render(svg)

    total = root.samples
    usable = width - 2 * _PAD
    scale = usable / total
    frames = svg.elem("g", {"class": "vz-flame"})

    def draw(node: _Node, x: float, row: int, is_root: bool) -> None:
        frame_width = node.samples * scale
        if frame_width < MIN_FRAME_PX:
            return
        y = _PAD + _TITLE_HEIGHT + row * ROW_HEIGHT
        group = frames.elem("g")
        rect_class = "vz-axis" if is_root else f"vz-ring vz-s{_slot(node.label)}"
        rect = group.elem(
            "rect",
            {
                "class": rect_class,
                "x": round(x, 2),
                "y": y,
                "width": round(frame_width, 2),
                "height": ROW_HEIGHT - 1,
                "rx": 1,
            },
        )
        if is_root:
            rect.attrs["fill"] = "none"
        percent = 100.0 * node.samples / total
        group.elem(
            "title", text=f"{node.label} — {node.samples} samples ({percent:.1f}%)"
        )
        if text_width(node.label, FONT_SIZE) <= frame_width - 4:
            group.elem(
                "text",
                {
                    "class": "vz-axlab",
                    "x": round(x + 3, 2),
                    "y": y + ROW_HEIGHT - 5,
                    "font-size": FONT_SIZE,
                },
                text=node.label,
            )
        cursor = x
        for label in sorted(node.children):
            child = node.children[label]
            draw(child, cursor, row + 1, is_root=False)
            cursor += child.samples * scale

    draw(root, float(_PAD), 0, is_root=True)
    return render(svg)


def top_frames_rows(stacks: Mapping[str, int], limit: int = 12) -> List[Tuple[str, str, str]]:
    """``(frame, samples, share)`` table rows for the report's profile card."""
    from repro.obs.profile import top_self

    return [
        (entry["frame"], str(entry["samples"]), f"{entry['fraction'] * 100.0:.1f}%")
        for entry in top_self(stacks, limit=limit)
    ]
