"""Deterministic SVG element builder (the bottom layer of ``repro.viz``).

A chart is assembled as a tree of :class:`Element` nodes and serialised with
:func:`render`.  Everything about the output is stable run-to-run:

* attributes are emitted in the order they were given (Python dicts preserve
  insertion order, and every caller builds them literally);
* children are emitted in the order they were added;
* numbers go through :func:`fmt_num` — fixed two-decimal precision with
  trailing zeros stripped and ``-0`` normalised — so no float-repr noise
  ever reaches the markup.

No ``id`` attributes, no timestamps, no randomness: rendering the same data
twice produces byte-identical bytes, which is what lets the task graph cache
figures by the content hash of their inputs alone (and what the golden-file
tests in ``tests/test_viz.py`` pin down).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Scalar = Union[str, int, float]

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape a string for use as SVG/XML text content."""
    out = str(value)
    for char, entity in _ESCAPES.items():
        out = out.replace(char, entity)
    return out


def escape_attr(value: str) -> str:
    """Escape a string for use inside a double-quoted attribute value."""
    out = str(value)
    for char, entity in _ATTR_ESCAPES.items():
        out = out.replace(char, entity)
    return out


def fmt_num(value: Scalar) -> str:
    """Deterministic, compact formatting for coordinates and lengths.

    Integers stay integers; floats are rounded to two decimals with trailing
    zeros (and a trailing dot) stripped; a rounded ``-0`` collapses to ``0``.
    """
    if isinstance(value, bool):  # bool is an int subclass; never meaningful here
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = f"{value:.2f}".rstrip("0").rstrip(".")
        return "0" if text in ("-0", "") else text
    return str(value)


class Element:
    """One SVG element: tag, ordered attributes, ordered children, text."""

    __slots__ = ("tag", "attrs", "children", "text")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, Scalar]] = None,
        text: Optional[str] = None,
    ):
        self.tag = tag
        self.attrs: Dict[str, Scalar] = dict(attrs or {})
        self.children: List[Union["Element", str]] = []
        self.text = text

    def add(self, child: Union["Element", str]) -> Union["Element", str]:
        """Append a child element (or a raw, pre-serialised string); returns it."""
        self.children.append(child)
        return child

    def elem(
        self, tag: str, attrs: Optional[Dict[str, Scalar]] = None, text: Optional[str] = None
    ) -> "Element":
        """Append and return a fresh child element (the main builder call)."""
        child = Element(tag, attrs, text)
        self.children.append(child)
        return child

    # -- serialisation ---------------------------------------------------------

    def _open_tag(self) -> str:
        parts = [self.tag]
        for name, value in self.attrs.items():
            parts.append(f'{name}="{escape_attr(fmt_num(value))}"')
        return " ".join(parts)

    def _render(self, lines: List[str], depth: int) -> None:
        pad = "  " * depth
        if not self.children and self.text is None:
            lines.append(f"{pad}<{self._open_tag()}/>")
            return
        if not self.children:
            lines.append(f"{pad}<{self._open_tag()}>{escape_text(self.text)}</{self.tag}>")
            return
        lines.append(f"{pad}<{self._open_tag()}>")
        if self.text is not None:
            lines.append(f"{pad}  {escape_text(self.text)}")
        for child in self.children:
            if isinstance(child, str):
                lines.append(f"{pad}  {child}")
            else:
                child._render(lines, depth + 1)
        lines.append(f"{pad}</{self.tag}>")


def render(root: Element) -> str:
    """Serialise an element tree to markup (one element per line, indented)."""
    lines: List[str] = []
    root._render(lines, 0)
    return "\n".join(lines) + "\n"


def svg_root(width: int, height: int, style: str, label: str) -> Element:
    """The ``<svg>`` root every chart hangs off.

    *style* is the embedded stylesheet (see :mod:`repro.viz.theme`); *label*
    becomes the accessible name (``role="img"`` + ``aria-label``).  A
    ``viewBox`` plus a 100%-width style keeps figures responsive when inlined
    into the HTML report while standalone files keep their natural size.
    """
    root = Element(
        "svg",
        {
            "xmlns": "http://www.w3.org/2000/svg",
            "viewBox": f"0 0 {width} {height}",
            "width": width,
            "height": height,
            "role": "img",
            "aria-label": label,
            "class": "vz",
        },
    )
    root.elem("style", text=style)
    return root


def text_width(text: str, font_size: float = 11.0) -> float:
    """Deterministic width estimate for layout decisions (no font metrics).

    ~0.62 em per character is a slight over-estimate for the system sans
    stack, which errs on the side of extra padding rather than collisions.
    """
    return len(str(text)) * font_size * 0.62


def polyline_points(points: Sequence[Sequence[float]]) -> str:
    """``points`` attribute value for a ``<polyline>``: "x,y x,y ..."."""
    return " ".join(f"{fmt_num(x)},{fmt_num(y)}" for x, y in points)
