"""Palette, mark metrics and embedded stylesheet for ``repro.viz`` charts.

The colours are a validated colourblind-safe categorical palette (eight
slots, fixed order — the ordering is the CVD-safety mechanism, so slots are
assigned by entity and never cycled or re-ranked), plus neutral ink/grid
tones for chart chrome, each with a dark-mode step selected for the dark
surface rather than auto-inverted.  Series colours are applied through CSS
classes (``vz-s<N>`` fills, ``vz-ln<N>`` strokes) defined in one embedded
stylesheet per SVG, so the same figure adapts to ``prefers-color-scheme``
both standalone and inlined in the HTML report; because every figure embeds
the identical stylesheet, inlining several into one document is harmless.

Fixed entity slots keep identity stable across the whole report: Twill is
always slot 0 (blue), the LegUp pure-hardware baseline slot 1 (orange), the
pure-software baseline slot 2 (aqua); the eight benchmarks take slots 0-7 in
registry order in the figures where the series *are* the benchmarks.
"""

from __future__ import annotations

#: Categorical palette, light-mode steps (slot order is load-bearing).
SERIES_LIGHT = (
    "#2a78d6",  # 0 blue
    "#eb6834",  # 1 orange
    "#1baf7a",  # 2 aqua
    "#eda100",  # 3 yellow
    "#e87ba4",  # 4 magenta
    "#008300",  # 5 green
    "#4a3aa7",  # 6 violet
    "#e34948",  # 7 red
)

#: The same eight hues stepped for the dark surface (not an automatic flip).
SERIES_DARK = (
    "#3987e5",
    "#d95926",
    "#199e70",
    "#c98500",
    "#d55181",
    "#008300",
    "#9085e9",
    "#e66767",
)

#: Fixed entity → slot assignment (identity is stable across figures).
SLOT_TWILL = 0
SLOT_LEGUP = 1
SLOT_SOFTWARE = 2

#: Chart chrome, light / dark.
SURFACE = ("#fcfcfb", "#1a1a19")
PAGE = ("#f9f9f7", "#0d0d0d")
INK_PRIMARY = ("#0b0b0b", "#ffffff")
INK_SECONDARY = ("#52514e", "#c3c2b7")
INK_MUTED = ("#898781", "#898781")
GRIDLINE = ("#e1e0d9", "#2c2c2a")
AXIS = ("#c3c2b7", "#383835")

FONT_STACK = 'system-ui, -apple-system, "Segoe UI", sans-serif'

#: Mark metrics (px): the specs every chart obeys.
BAR_MAX_THICKNESS = 24
BAR_CORNER_RADIUS = 4
LINE_WIDTH = 2
MARKER_RADIUS = 4
SURFACE_GAP = 2  # gap between touching fills; ring width on markers


def _series_rules(colors, prefix: str = "") -> str:
    rules = []
    for slot, color in enumerate(colors):
        rules.append(f"{prefix}.vz .vz-s{slot}{{fill:{color}}}")
        rules.append(f"{prefix}.vz .vz-ln{slot}{{stroke:{color};fill:none}}")
    return "".join(rules)


def stylesheet() -> str:
    """The stylesheet embedded in every chart SVG (light + dark)."""
    light, dark = 0, 1
    base = (
        f".vz text{{font-family:{FONT_STACK};fill:{INK_SECONDARY[light]}}}"
        f".vz .vz-surface{{fill:{SURFACE[light]}}}"
        f".vz .vz-title{{font-size:13px;font-weight:600;fill:{INK_PRIMARY[light]}}}"
        f".vz .vz-lab{{font-size:11px;fill:{INK_MUTED[light]}}}"
        f".vz .vz-axlab{{font-size:11px;fill:{INK_SECONDARY[light]}}}"
        f".vz .vz-dlab{{font-size:11px;fill:{INK_SECONDARY[light]}}}"
        f".vz .vz-num{{font-variant-numeric:tabular-nums}}"
        f".vz .vz-grid{{stroke:{GRIDLINE[light]};stroke-width:1}}"
        f".vz .vz-axis{{stroke:{AXIS[light]};stroke-width:1}}"
        f".vz .vz-ref{{stroke:{INK_MUTED[light]};stroke-width:1}}"
        f".vz .vz-line{{stroke-width:{LINE_WIDTH};stroke-linejoin:round;stroke-linecap:round;fill:none}}"
        f".vz .vz-ring{{stroke:{SURFACE[light]};stroke-width:{SURFACE_GAP}}}"
        f".vz .vz-link{{stroke:{AXIS[light]};stroke-width:1}}"
        + _series_rules(SERIES_LIGHT)
    )
    dark_rules = (
        f".vz text{{fill:{INK_SECONDARY[dark]}}}"
        f".vz .vz-surface{{fill:{SURFACE[dark]}}}"
        f".vz .vz-title{{fill:{INK_PRIMARY[dark]}}}"
        f".vz .vz-lab{{fill:{INK_MUTED[dark]}}}"
        f".vz .vz-axlab{{fill:{INK_SECONDARY[dark]}}}"
        f".vz .vz-dlab{{fill:{INK_SECONDARY[dark]}}}"
        f".vz .vz-grid{{stroke:{GRIDLINE[dark]}}}"
        f".vz .vz-axis{{stroke:{AXIS[dark]}}}"
        f".vz .vz-ref{{stroke:{INK_MUTED[dark]}}}"
        f".vz .vz-ring{{stroke:{SURFACE[dark]}}}"
        f".vz .vz-link{{stroke:{AXIS[dark]}}}"
        + _series_rules(SERIES_DARK)
    )
    return base + "@media (prefers-color-scheme:dark){" + dark_rules + "}"
