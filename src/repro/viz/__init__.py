"""Rendering subsystem: deterministic, dependency-free SVG figures and reports.

``repro.viz`` turns the structured result dictionaries produced by
:mod:`repro.eval.experiments` into visual artefacts using nothing but the
standard library:

* :mod:`repro.viz.svg` — a tiny SVG element builder with deterministic
  serialisation (stable attribute and element ordering, fixed-precision
  number formatting), so rendering the same data twice yields byte-identical
  markup;
* :mod:`repro.viz.scales` — linear/band/point scales and nice-tick
  computation shared by every chart;
* :mod:`repro.viz.theme` — the colour palette (light + dark), mark metrics
  and embedded stylesheet;
* :mod:`repro.viz.charts` — the chart forms (grouped/stacked bars, line
  sweeps, scatter, execution timeline) built from those primitives;
* :mod:`repro.viz.figures` — declarative figure specs mapping the thesis
  Figure 6.1-6.6 result dicts (plus two composite figures) onto charts;
* :mod:`repro.viz.report_html` — the self-contained ``report.html``
  assembler behind ``repro report --html``.

Rendering is wired into the evaluation task graph as first-class ``render``
tasks (see :mod:`repro.eval.taskgraph`), keyed by the content addresses of
their input artefacts, so figures are disk-cached and parallelise like every
other derived artefact.  Determinism is a hard requirement throughout: no
clocks, no randomness, no environment-dependent output.
"""

from repro.viz.figures import FIGURE_SPECS, render_figure
from repro.viz.report_html import build_report_html

__all__ = ["FIGURE_SPECS", "render_figure", "build_report_html"]
