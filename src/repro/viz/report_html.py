"""Self-contained HTML report assembler (``repro report --html``).

:func:`build_report_html` takes the artefact dictionaries produced by
:mod:`repro.eval.experiments`, the already-rendered figure SVGs, and the
run's metadata, and emits one ``report.html`` with **no external assets**:
styles are embedded, figures are inline SVG, and the only fonts named are
the viewer's system stack.  The document carries:

* the §6.7 headline numbers as stat tiles (measured beside the paper's);
* every rendered figure with its caption — including the design-space
  exploration pair (frontier scatter + search-progress line);
* the exploration section's best-found-configuration table;
* Tables 6.1 and 6.2 plus the summary as real HTML tables;
* run metadata — configuration hash, benchmark set, and the scheduler's
  cache-hit statistics (a warm run shows zero executed render tasks);
* optionally, when a ``--trace`` was captured, the per-worker execution
  timeline;
* optionally, when the run was observed (``$REPRO_TRACE`` /
  ``$REPRO_PROFILE`` / ``$REPRO_HISTORY``), a trace-analytics card
  (per-kind statistics + critical path + scheduler overhead), a sampled
  CPU-profile flamegraph, and run-history trend charts;
* the raw artefact data as an embedded JSON island (``<script
  type="application/json">`` — data, never executed), so scripted
  consumers parse the numbers without scraping table markup;
* links to the per-benchmark drill-down pages
  (:func:`build_benchmark_page`) written beside it.

"Self-contained" means **no external assets and no executable
scripts** — the JSON islands are inert data (browsers do not run
``application/json``), and ``tools/check_report_html.py`` enforces that
no other ``<script`` form ever appears.  Everything except the
(explicitly opt-in) telemetry cards is a pure function of the artefact
data: no clocks, no hostnames, no versions — so repeated warm runs, and
serial vs parallel runs, produce byte-identical documents.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.core.report import format_cell
from repro.viz import theme
from repro.viz.charts import Span, timeline_chart
from repro.viz.figures import FIGURE_SPECS

#: Figure order in the document: the FIGURE_SPECS registry's own order
#: (thesis figures first, composites after) — one canonical list, so a
#: figure added to the registry can never be silently dropped here.
FIGURE_ORDER = tuple(FIGURE_SPECS)

#: §6.7 headline metrics shown as stat tiles: (key, label, paper key).
_SUMMARY_TILES = (
    ("mean_speedup_vs_sw", "Twill speedup vs pure SW", "paper_speedup_vs_sw"),
    ("mean_speedup_vs_hw", "Twill speedup vs pure HW", "paper_speedup_vs_hw"),
    ("mean_hw_area_reduction", "HW-thread area reduction", "paper_hw_area_reduction"),
    ("mean_total_area_increase", "Total area increase", "paper_total_area_increase"),
)

#: Tables embedded as HTML, in order: (artefact key, fallback heading).
_TABLE_ARTEFACTS = (
    ("table_6.1", "Table 6.1"),
    ("table_6.2", "Table 6.2"),
    ("summary", "Results overview (§6.7)"),
)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def embed_json(payload: Any, element_id: str) -> str:
    """*payload* as an inert ``<script type="application/json">`` island.

    Browsers never execute ``application/json`` content, so the report's
    no-active-content guarantee holds; ``</`` is escaped so the payload
    can never close the element early, and keys are sorted so the island
    is as deterministic as the rest of the document.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return (
        f'<script type="application/json" id="{_esc(element_id)}">'
        + text.replace("</", "<\\/")
        + "</script>"
    )


def benchmark_rows(
    artefacts: Dict[str, Dict], benchmark: str
) -> Dict[str, List[Dict[str, Any]]]:
    """``artefact key -> rows`` restricted to *benchmark*.

    Most artefacts carry a ``benchmark`` column per row; the split-figure
    artefacts (6.3/6.4) are single-benchmark and carry the name at the
    top level instead.  Artefacts with no matching rows are omitted.
    """
    out: Dict[str, List[Dict[str, Any]]] = {}
    for key, data in artefacts.items():
        if not isinstance(data, dict):
            continue
        rows = data.get("rows")
        if not rows:
            continue
        if isinstance(data.get("benchmark"), str):
            if data["benchmark"] == benchmark:
                out[key] = [dict(row) for row in rows]
            continue
        matched = [dict(row) for row in rows if row.get("benchmark") == benchmark]
        if matched:
            out[key] = matched
    return out


def _css() -> str:
    """The document stylesheet (light + dark), from the shared theme."""
    light, dark = 0, 1
    return f"""
:root {{ color-scheme: light dark; }}
body {{
  margin: 0; padding: 32px 20px 48px;
  background: {theme.PAGE[light]}; color: {theme.INK_PRIMARY[light]};
  font-family: {theme.FONT_STACK}; font-size: 15px; line-height: 1.5;
}}
main {{ max-width: 880px; margin: 0 auto; }}
h1 {{ font-size: 26px; margin: 0 0 4px; }}
h2 {{ font-size: 18px; margin: 36px 0 6px; }}
p.caption, p.subtitle {{ color: {theme.INK_SECONDARY[light]}; margin: 0 0 12px; }}
section.card {{
  background: {theme.SURFACE[light]}; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 10px; padding: 16px 18px; margin: 14px 0;
}}
section.card svg {{ max-width: 100%; height: auto; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin: 18px 0; }}
.tile {{
  flex: 1 1 180px; background: {theme.SURFACE[light]};
  border: 1px solid rgba(11,11,11,0.10); border-radius: 10px; padding: 12px 16px;
}}
.tile .label {{ font-size: 13px; color: {theme.INK_SECONDARY[light]}; }}
.tile .value {{ font-size: 30px; font-weight: 600; }}
.tile .paper {{ font-size: 12px; color: {theme.INK_MUTED[light]}; }}
table.data {{ border-collapse: collapse; width: 100%; font-size: 13px; }}
table.data th, table.data td {{
  padding: 5px 10px; border-bottom: 1px solid {theme.GRIDLINE[light]}; text-align: left;
}}
table.data th {{ color: {theme.INK_SECONDARY[light]}; font-weight: 600; }}
table.data td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
table.meta {{ font-size: 13px; border-collapse: collapse; }}
table.meta th {{ text-align: left; padding: 2px 14px 2px 0; color: {theme.INK_SECONDARY[light]};
  font-weight: 600; vertical-align: top; white-space: nowrap; }}
table.meta td {{ padding: 2px 0; font-variant-numeric: tabular-nums; overflow-wrap: anywhere; }}
footer {{ margin-top: 36px; font-size: 12px; color: {theme.INK_MUTED[light]}; }}
code {{ font-size: 13px; }}
@media (prefers-color-scheme: dark) {{
  body {{ background: {theme.PAGE[dark]}; color: {theme.INK_PRIMARY[dark]}; }}
  p.caption, p.subtitle, .tile .label, table.data th, table.meta th
    {{ color: {theme.INK_SECONDARY[dark]}; }}
  section.card, .tile {{ background: {theme.SURFACE[dark]}; border-color: rgba(255,255,255,0.10); }}
  table.data th, table.data td {{ border-bottom-color: {theme.GRIDLINE[dark]}; }}
  .tile .paper, footer {{ color: {theme.INK_MUTED[dark]}; }}
}}
"""


def html_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Rows-of-dicts → an HTML table (all columns, numerics right-aligned)."""
    if not rows:
        return "<p>(no rows)</p>"
    headers = list(rows[0].keys())
    out: List[str] = ['<table class="data">', "<thead><tr>"]
    for header in headers:
        out.append(f"<th>{_esc(header)}</th>")
    out.append("</tr></thead>")
    out.append("<tbody>")
    for row in rows:
        out.append("<tr>")
        for header in headers:
            value = row.get(header, "")
            numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
            cell = _esc(format_cell(value))
            out.append(f'<td class="num">{cell}</td>' if numeric else f"<td>{cell}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "\n".join(out)


def _metadata_rows(metadata: Dict[str, Any]) -> List[str]:
    """The run-metadata table body, in a fixed, documented order."""
    out: List[str] = []

    def row(label: str, value: str) -> None:
        out.append(f"<tr><th>{_esc(label)}</th><td>{value}</td></tr>")

    if "config_hash" in metadata:
        row("configuration hash", f"<code>{_esc(metadata['config_hash'])}</code>")
    if "benchmarks" in metadata:
        row("benchmark set", _esc(", ".join(metadata["benchmarks"])))
    if metadata.get("cache"):
        row("artifact cache", f"<code>{_esc(metadata['cache'])}</code>")
    stats = metadata.get("scheduler") or {}
    if stats:
        executed = stats.get("executed") or {}
        executed_total = sum(executed.values())
        row(
            "task graph",
            _esc(
                f"{stats.get('total', 0)} tasks: {stats.get('cache_hits', 0)} cache hits, "
                f"{stats.get('seeded', 0)} seeded, {executed_total} executed"
            ),
        )
        renders = executed.get("render", 0)
        hits = stats.get("cache_hit_kinds", {}).get("render", 0)
        row("figure renders", _esc(f"{renders} rendered, {hits} from cache"))
    timings = metadata.get("stage_timings") or {}
    if timings:
        parts = [
            f"{name} {entry['seconds']:.3f}s/{entry['calls']}"
            for name, entry in timings.items()
        ]
        row("stage timings (s/calls)", _esc(", ".join(parts)))
    return out


def _stat_tiles(summary: Dict[str, Any]) -> str:
    tiles: List[str] = ['<div class="tiles">']
    for key, label, paper_key in _SUMMARY_TILES:
        if key not in summary:
            continue
        tiles.append(
            '<div class="tile">'
            f'<div class="label">{_esc(label)}</div>'
            f'<div class="value">{summary[key]:.2f}&times;</div>'
            f'<div class="paper">paper: {summary.get(paper_key, 0):.2f}&times;</div>'
            "</div>"
        )
    tiles.append("</div>")
    return "\n".join(tiles)


def _analytics_section(analytics: Dict[str, Any]) -> List[str]:
    """The trace-analytics card: per-kind summary, critical path, overhead."""
    parts: List[str] = ['<section class="card" id="trace-analytics">']
    parts.append("<h2>Trace analytics</h2>")
    parts.append(
        '<p class="caption">Computed from the <code>$REPRO_TRACE</code> spans '
        "above: where the wall-clock time of this run went.</p>"
    )
    summary = analytics.get("summary") or []
    if summary:
        rows = [
            {
                "kind": row["kind"],
                "count": row["count"],
                "total (s)": round(row["total_seconds"], 3),
                "self (s)": round(row["self_seconds"], 3),
                "p50 (s)": round(row["p50_seconds"], 3),
                "p95 (s)": round(row["p95_seconds"], 3),
            }
            for row in summary
        ]
        parts.append(html_table(rows))
    path = analytics.get("critical_path") or {}
    hops = path.get("hops") or []
    if hops:
        coverage = path.get("coverage", 0.0)
        parts.append(
            f"<h2>Critical path — {len(hops)} hops, "
            f"{path.get('path_seconds', 0.0):.3f}s of "
            f"{path.get('window_seconds', 0.0):.3f}s window "
            f"({coverage * 100.0:.0f}% coverage)</h2>"
        )
        parts.append("<ol>")
        for hop in hops:
            parts.append(
                f"<li><code>{_esc(hop['name'])}</code> "
                f"[{_esc(hop['kind'])}] {hop['duration_seconds']:.3f}s "
                f"(self {hop['self_seconds']:.3f}s, lane {_esc(hop['lane'])})</li>"
            )
        parts.append("</ol>")
    overhead = analytics.get("overhead") or {}
    if overhead.get("runs"):
        parts.append(
            '<p class="caption">Scheduler overhead: '
            f"{overhead.get('overhead_seconds', 0.0):.3f}s of "
            f"{overhead.get('total_seconds', 0.0):.3f}s scheduling "
            f"({overhead.get('overhead_fraction', 0.0) * 100.0:.1f}% not covered "
            "by task or stage spans).</p>"
        )
    parts.append("</section>")
    return parts


def _profile_section(profile: Dict[str, Any]) -> List[str]:
    """The CPU-profile card: flamegraph plus the hottest leaf frames."""
    parts: List[str] = ['<section class="card" id="profile">']
    parts.append("<h2>CPU profile</h2>")
    parts.append(
        '<p class="caption">Sampled call stacks from this run '
        f"(<code>$REPRO_PROFILE</code>, {profile.get('samples', 0)} samples at "
        f"{profile.get('hz', 0)}&nbsp;Hz); widths are inclusive sample counts.</p>"
    )
    parts.append(str(profile.get("svg", "")).rstrip("\n"))
    top = profile.get("top") or []
    if top:
        rows = [
            {
                "frame": entry["frame"],
                "samples": entry["samples"],
                "share": f"{entry['fraction'] * 100.0:.1f}%",
            }
            for entry in top
        ]
        parts.append(html_table(rows))
    parts.append("</section>")
    return parts


def _trends_section(trends: Sequence[Dict[str, Any]]) -> List[str]:
    """The run-history card: one trend chart (or sparkline) per metric."""
    parts: List[str] = ['<section class="card" id="trends">']
    parts.append("<h2>Run history trends</h2>")
    parts.append(
        '<p class="caption">Prior <code>repro report</code> runs from the '
        "<code>$REPRO_HISTORY</code> ledger; see <code>repro history "
        "{trend,check}</code> for the full series and regression gating.</p>"
    )
    for entry in trends:
        parts.append(str(entry.get("svg", "")).rstrip("\n"))
    parts.append("</section>")
    return parts


def build_benchmark_page(
    benchmark: str,
    artefacts: Dict[str, Dict],
    metadata: Dict[str, Any],
) -> str:
    """One benchmark's drill-down document (``benchmark-<name>.html``).

    Written beside ``report.html`` by ``repro report --html``: every
    artefact row that mentions *benchmark*, grouped under the parent
    artefact's own heading, plus the same rows as an embedded JSON island
    (``id="benchmark-data"``) for scripted consumers.  Same contract as
    the main report: deterministic, no external assets, no executable
    scripts.
    """
    rows_by_artefact = benchmark_rows(artefacts, benchmark)
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8"/>',
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>',
        f"<title>{_esc(benchmark)} — benchmark drill-down</title>",
        f"<style>{_css()}</style>",
        "</head>",
        "<body>",
        "<main>",
        f"<h1>{_esc(benchmark)} — benchmark drill-down</h1>",
        '<p class="subtitle">Every evaluation metric for this benchmark, '
        'pulled from the same artefacts as the '
        '<a href="report.html">full report</a>.</p>',
    ]
    if not rows_by_artefact:
        parts.append(f"<p>(no artefact rows mention {_esc(benchmark)})</p>")
    for key, rows in rows_by_artefact.items():
        heading = (artefacts[key].get("table") or key).splitlines()[0]
        parts.append(f'<section class="card" id="{_esc(key)}">')
        parts.append(f"<h2>{_esc(heading)}</h2>")
        parts.append(html_table(rows))
        parts.append("</section>")
    parts.append(
        embed_json(
            {
                "benchmark": benchmark,
                "config_hash": metadata.get("config_hash"),
                "artefacts": rows_by_artefact,
            },
            "benchmark-data",
        )
    )
    parts.append(
        "<footer>Generated by <code>repro report --html</code>. "
        "Self-contained: no external assets, no executable scripts.</footer>"
    )
    parts.append("</main>")
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"


def build_report_html(
    artefacts: Dict[str, Dict],
    figures: Dict[str, str],
    metadata: Dict[str, Any],
    trace_spans: Optional[Sequence[Span]] = None,
    obs_spans: Optional[Sequence[Span]] = None,
    analytics: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    trends: Optional[Sequence[Dict[str, Any]]] = None,
    benchmark_pages: Optional[Sequence[str]] = None,
) -> str:
    """Assemble the complete, self-contained report document."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8"/>',
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>',
        "<title>Twill reproduction — evaluation report</title>",
        f"<style>{_css()}</style>",
        "</head>",
        "<body>",
        "<main>",
        "<h1>Twill reproduction — evaluation report</h1>",
        '<p class="subtitle">Every table and figure of thesis Chapter 6, '
        "regenerated from the checked-in compiler and simulator.</p>",
    ]

    summary = artefacts.get("summary")
    if summary:
        parts.append(_stat_tiles(summary))

    if benchmark_pages:
        links = " &middot; ".join(
            f'<a href="benchmark-{_esc(name)}.html">{_esc(name)}</a>'
            for name in benchmark_pages
        )
        parts.append('<section class="card" id="benchmarks">')
        parts.append("<h2>Per-benchmark drill-down</h2>")
        parts.append(
            '<p class="caption">One page per benchmark with every metric row '
            "that mentions it, plus the raw rows as embedded JSON: "
            f"{links}</p>"
        )
        parts.append("</section>")

    parts.append('<section class="card" id="metadata">')
    parts.append("<h2>Run metadata</h2>")
    parts.append('<table class="meta"><tbody>')
    parts.extend(_metadata_rows(metadata))
    parts.append("</tbody></table>")
    parts.append("</section>")

    for figure_id in FIGURE_ORDER:
        markup = figures.get(figure_id)
        if not markup:
            continue
        spec = FIGURE_SPECS[figure_id]
        parts.append(f'<section class="card" id="figure-{_esc(figure_id)}">')
        parts.append(f"<h2>{_esc(spec.title)}</h2>")
        parts.append(f'<p class="caption">{_esc(spec.caption)}</p>')
        parts.append(markup.rstrip("\n"))
        parts.append("</section>")

    exploration = artefacts.get("exploration")
    if exploration and exploration.get("best_rows"):
        parts.append('<section class="card" id="exploration">')
        parts.append("<h2>Design-space exploration — best configurations found</h2>")
        sizes = exploration.get("frontier_sizes") or {}
        evaluated = exploration.get("evaluations_per_workload", 0)
        frontier_note = ", ".join(
            f"{workload}: {size} Pareto-optimal of {evaluated}" for workload, size in sizes.items()
        )
        parts.append(
            '<p class="caption">The report\'s embedded exhaustive search over '
            "split target &times; queue depth; the frontier scatter and search "
            f"curve above plot the same data ({_esc(frontier_note)}). "
            "Run <code>repro explore</code> for budgeted strategies over the "
            "full space.</p>"
        )
        parts.append(html_table(exploration["best_rows"]))
        parts.append("</section>")

    for artefact_key, fallback in _TABLE_ARTEFACTS:
        data = artefacts.get(artefact_key)
        if not data:
            continue
        heading = (data.get("table") or fallback).splitlines()[0]
        parts.append(f'<section class="card" id="{_esc(artefact_key)}">')
        parts.append(f"<h2>{_esc(heading)}</h2>")
        if data.get("rows"):
            parts.append(html_table(data["rows"]))
        else:
            # The summary has no rows list; show its scalar metrics.
            rows = [
                {"metric": key, "value": value}
                for key, value in data.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            parts.append(html_table(rows))
        parts.append("</section>")

    if trace_spans:
        parts.append('<section class="card" id="timeline">')
        parts.append("<h2>Execution timeline</h2>")
        parts.append(
            '<p class="caption">Per-worker task execution recorded by '
            "<code>--trace</code>; gaps are genuine idle time.</p>"
        )
        parts.append(timeline_chart(list(trace_spans)).rstrip("\n"))
        parts.append("</section>")

    if obs_spans:
        parts.append('<section class="card" id="obs-timeline">')
        parts.append("<h2>Telemetry span timeline</h2>")
        parts.append(
            '<p class="caption">Structured spans recorded by '
            "<code>$REPRO_TRACE</code> (see docs/OBSERVABILITY.md); one lane "
            "per worker or service, scheduler and harness spans included.</p>"
        )
        parts.append(timeline_chart(list(obs_spans)).rstrip("\n"))
        parts.append("</section>")

    if analytics and (analytics.get("summary") or analytics.get("critical_path")):
        parts.extend(_analytics_section(analytics))

    if profile and profile.get("svg"):
        parts.extend(_profile_section(profile))

    if trends:
        parts.extend(_trends_section(trends))

    if artefacts:
        # The numbers behind every table and figure, as inert data — a
        # scripted consumer gets the same payload `repro report --json`
        # prints, without re-running the evaluation or scraping markup.
        parts.append(
            embed_json(
                {
                    "config_hash": metadata.get("config_hash"),
                    "benchmarks": list(metadata.get("benchmarks") or []),
                    "artefacts": {
                        key: {k: v for k, v in data.items() if k != "table"}
                        for key, data in artefacts.items()
                    },
                },
                "report-data",
            )
        )

    parts.append("<footer>Generated by <code>repro report --html</code>. "
                 "Self-contained: no external assets, no executable scripts.</footer>")
    parts.append("</main>")
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"
