"""Configuration dataclasses for the whole Twill pipeline.

Defaults reproduce the evaluation configuration of the thesis (§6): 8-entry
32-bit queues, a single area-optimised MicroBlaze at 100 MHz, a targeted
75%/25% hardware/software work split, and the runtime cycle costs of
Chapter 4.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Type, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")


def _from_flat_dict(cls: Type[_T], data: Dict[str, Any]) -> _T:
    """Build a flat config dataclass from a plain dict.

    Unknown keys are ignored (so a newer producer can talk to an older
    consumer over the remote-execution wire), and missing keys fall back to
    the dataclass defaults.
    """
    known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class PartitionConfig:
    """DSWP partitioner knobs (thesis §5.2)."""

    # Targeted fraction of work placed on the software (processor) partition.
    # The thesis reports the partitioner settles around a 75%/25% HW/SW split.
    sw_fraction: float = 0.25
    # Maximum pipeline partitions per function (1 software + N-1 hardware).
    max_partitions_per_function: int = 4
    # Minimum software-cycle weight that justifies opening another partition.
    work_per_partition: float = 2_000.0
    # Keep the master of main() on the processor (required for SoC boot flow, §5.3).
    master_in_software: bool = True
    # Use the dynamic profile for weights (True) or the static loop-depth
    # estimate the thesis uses (False).
    use_profile_weights: bool = True
    # Number of DSWP refinement iterations (the thesis caps this at two).
    max_refinement_iterations: int = 2

    def validate(self) -> None:
        if not 0.0 <= self.sw_fraction <= 1.0:
            raise ConfigError(f"sw_fraction must be in [0, 1], got {self.sw_fraction}")
        if self.max_partitions_per_function < 1:
            raise ConfigError("max_partitions_per_function must be >= 1")
        if self.work_per_partition <= 0:
            raise ConfigError("work_per_partition must be positive")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PartitionConfig":
        """Inverse of ``asdict`` (unknown keys ignored, defaults fill gaps)."""
        return _from_flat_dict(cls, data)


@dataclass
class RuntimeConfig:
    """Twill runtime architecture parameters (thesis Chapter 4)."""

    # Queue geometry (§6: "All of the tests were run with only 8x32 sized queues").
    queue_depth: int = 8
    queue_width_bits: int = 32
    # Extra latency cycles a dequeued value spends in flight (swept in Fig 6.5).
    queue_latency: int = 2
    # Bus: one-cycle latency, one message per cycle (§4.1).
    bus_latency: int = 1
    # Memory bus: writes one cycle, reads two (§4.1); cross-domain visibility 2 cycles.
    memory_write_cycles: int = 1
    memory_read_cycles: int = 2
    coherency_delay: int = 2
    # Processor interface: five cycles for any runtime operation (§4.5).
    processor_op_cycles: int = 5
    # Number of MicroBlaze processors attached (the evaluation uses one).
    num_processors: int = 1
    # Semaphore costs (§4.2).
    semaphore_raise_cycles: int = 1
    semaphore_lower_cycles: int = 2
    # System clock for both domains (§6).
    clock_mhz: float = 100.0
    # Evaluation-host cache policy, not a simulated-architecture knob: when
    # set, the evaluation harness LRU-prunes the on-disk artifact cache to at
    # most this many bytes after each run.  Policy fields are excluded from
    # to_dict()/content_hash() so changing them never invalidates artefacts.
    cache_max_bytes: Optional[int] = None
    # Evaluation-host policy as well: HMAC key for the signed envelope around
    # cached compile-artifact pickles (see docs/CACHING.md).  Falls back to
    # the REPRO_CACHE_HMAC_KEY environment variable when unset; never part of
    # content hashes, and never sent over the remote-execution wire.
    cache_hmac_key: Optional[str] = None
    # Host policy: shared secret required (constant-time checked) on every
    # cache-service and coordinator request (docs/DISTRIBUTED.md "Trust
    # model").  Falls back to the REPRO_SERVICE_TOKEN environment variable;
    # never part of content hashes, never sent as a task argument.
    service_token: Optional[str] = None

    def validate(self) -> None:
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.queue_width_bits not in (1, 8, 16, 32):
            raise ConfigError("queue_width_bits must be one of 1, 8, 16, 32 (§4.3)")
        if self.queue_latency < 1:
            raise ConfigError("queue_latency must be >= 1")
        if self.num_processors < 1:
            raise ConfigError("num_processors must be >= 1")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 0:
            raise ConfigError("cache_max_bytes must be non-negative when set")

    def with_queue_latency(self, latency: int) -> "RuntimeConfig":
        return replace(self, queue_latency=latency)

    def with_queue_depth(self, depth: int) -> "RuntimeConfig":
        return replace(self, queue_depth=depth)

    #: Fields that tune the evaluation host rather than the simulated
    #: architecture; kept out of the content hash so they never change keys.
    _POLICY_FIELDS = ("cache_max_bytes", "cache_hmac_key", "service_token")

    def to_dict(self) -> Dict:
        """Plain-dict form (stable field order) used for cache keys and reports.

        Excludes host-side policy fields (`cache_max_bytes`): two runtimes
        that simulate identically must hash identically, whatever cache
        policy the evaluation harness runs under.
        """
        data = asdict(self)
        for name in self._POLICY_FIELDS:
            data.pop(name, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RuntimeConfig":
        """Inverse of :meth:`to_dict` (policy fields stay at their defaults)."""
        return _from_flat_dict(cls, data)


@dataclass
class HLSConfig:
    """LegUp-analogue scheduler knobs."""

    # Peak operations issued per FSM state (functional-unit budget per state).
    issue_width: int = 8
    # Allow chaining of cheap combinational ops within one state.
    enable_chaining: bool = True
    # Allow hardware threads to overlap successive basic-block executions
    # (iterative-modulo-scheduling-style loop pipelining).  LegUp's FSMs do
    # not overlap blocks in general, so the baseline keeps this off.
    loop_pipelining: bool = False

    def validate(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HLSConfig":
        """Inverse of ``asdict`` (unknown keys ignored, defaults fill gaps)."""
        return _from_flat_dict(cls, data)


@dataclass
class CompilerConfig:
    """Top-level configuration of the Twill compiler + simulator."""

    partition: PartitionConfig = field(default_factory=PartitionConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    hls: HLSConfig = field(default_factory=HLSConfig)
    # Inliner threshold (IR instructions) used by the pre-DSWP pipeline.
    inline_threshold: int = 60
    # Run Twill's globals-to-arguments pass before DSWP (thesis §5.2 pass 1).
    globals_to_arguments: bool = True
    # Materialise partition threads as IR functions (produce/consume form).
    extract_threads: bool = False
    # Verify IR after each transform pass.
    verify_passes: bool = True
    # Functional-interpreter step budget.
    max_interpreter_steps: int = 20_000_000

    def validate(self) -> None:
        self.partition.validate()
        self.runtime.validate()
        self.hls.validate()
        if self.inline_threshold < 0:
            raise ConfigError("inline_threshold must be non-negative")

    def to_dict(self) -> Dict:
        """Plain nested-dict form of the whole configuration tree.

        The runtime section goes through :meth:`RuntimeConfig.to_dict` so
        host-side policy fields stay out of cache keys and ``shared()`` keys.
        """
        data = asdict(self)
        data["runtime"] = self.runtime.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompilerConfig":
        """Inverse of :meth:`to_dict`: rebuild the nested configuration tree.

        A round trip preserves :meth:`content_hash` exactly, which is what
        lets a remote worker recompute the same cache keys as the parent that
        serialised the config onto the wire.
        """
        nested = {
            "partition": PartitionConfig.from_dict(data.get("partition", {})),
            "runtime": RuntimeConfig.from_dict(data.get("runtime", {})),
            "hls": HLSConfig.from_dict(data.get("hls", {})),
        }
        flat = {k: v for k, v in data.items() if k not in nested}
        config = _from_flat_dict(cls, flat)
        return replace(config, **nested)

    def content_hash(self) -> str:
        """Hex digest identifying this configuration's contents.

        Two configs hash equal iff every knob (including the nested partition,
        runtime and HLS sections) is equal, so the digest can key the on-disk
        artifact cache and :meth:`repro.eval.EvaluationHarness.shared`.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
