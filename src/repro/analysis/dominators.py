"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy algorithm).

The DSWP pass and mem2reg both need dominance information: mem2reg places
phi nodes on dominance frontiers, and the DSWP control-dependence edges are
derived from the post-dominator tree (an edge ``A -> B`` is a control
dependence when B post-dominates one successor of A but not A itself).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import postorder, predecessors_map, reachable_blocks
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class DominatorTree:
    """Forward dominator tree over the reachable blocks of a function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._level: Dict[BasicBlock, int] = {}
        self._compute()

    # -- construction -----------------------------------------------------------

    def _graph(self):
        """Return (root, blocks-in-postorder, predecessor-map) for the forward CFG."""
        root = self.function.entry_block
        order = postorder(self.function)
        preds = predecessors_map(self.function)
        return root, order, preds

    def _compute(self) -> None:
        root, order, preds = self._graph()
        if root is None:
            return
        # Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
        index = {b: i for i, b in enumerate(order)}  # postorder index
        rpo = list(reversed(order))
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in order}
        idom[root] = root

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] < index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] < index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is root:
                    continue
                candidates = [p for p in preds.get(block, []) if idom.get(p) is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = intersect(p, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {b: (None if b is root else idom[b]) for b in order if idom[b] is not None or b is root}
        self.children = {b: [] for b in self.idom}
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)
        # Depth levels for fast dominance queries.
        self._level = {}
        stack = [(root, 0)]
        while stack:
            block, level = stack.pop()
            self._level[block] = level
            for child in self.children.get(block, []):
                stack.append((child, level + 1))

    # -- queries -----------------------------------------------------------------

    @property
    def root(self) -> Optional[BasicBlock]:
        return self.function.entry_block

    def contains(self, block: BasicBlock) -> bool:
        return block in self.idom or block is self.root

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (every block dominates itself)."""
        if a is b:
            return True
        runner: Optional[BasicBlock] = b
        while runner is not None:
            runner = self.idom.get(runner)
            if runner is a:
                return True
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def depth(self, block: BasicBlock) -> int:
        return self._level.get(block, 0)

    def nearest_common_dominator(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        """The lowest block dominating both ``a`` and ``b``."""
        while a is not b:
            if self.depth(a) < self.depth(b):
                b = self.idom.get(b) or b
            else:
                a = self.idom.get(a) or a
        return a

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Cytron et al. dominance frontiers (used by mem2reg for phi placement)."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.idom}
        preds = predecessors_map(self.function)
        for block in self.idom:
            block_preds = [p for p in preds.get(block, []) if p in self.idom]
            if len(block_preds) < 2:
                continue
            for p in block_preds:
                runner: Optional[BasicBlock] = p
                while runner is not None and runner is not self.idom.get(block):
                    frontier.setdefault(runner, set()).add(block)
                    runner = self.idom.get(runner)
        return frontier


class PostDominatorTree:
    """Post-dominator tree, computed over the reversed CFG.

    Functions with multiple return blocks are handled by treating the set of
    exit blocks as a virtual root (standard practice); queries against the
    virtual root return None for :meth:`immediate_post_dominator`.
    """

    def __init__(self, fn: Function):
        self.function = fn
        self.ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        blocks = reachable_blocks(self.function)
        if not blocks:
            return
        exits = [b for b in blocks if not b.successors()]
        if not exits:
            # Infinite loop with no exit: fall back to the last block.
            exits = [blocks[-1]]
        succs = {b: b.successors() for b in blocks}
        # Reverse CFG: predecessors become successors.
        rev_succ: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in blocks}
        for b in blocks:
            for s in succs[b]:
                if s in rev_succ:
                    rev_succ[s].append(b)

        # Post-order over the reverse CFG starting from a virtual exit node.
        VIRTUAL = None  # represented implicitly
        seen: Set[int] = set()
        order: List[BasicBlock] = []
        stack: List[tuple[BasicBlock, bool]] = [(e, False) for e in reversed(exits)]
        while stack:
            block, processed = stack.pop()
            if processed:
                order.append(block)
                continue
            if id(block) in seen:
                continue
            seen.add(id(block))
            stack.append((block, True))
            for nxt in reversed(rev_succ[block]):
                if id(nxt) not in seen:
                    stack.append((nxt, False))

        index = {b: i for i, b in enumerate(order)}
        rpo = list(reversed(order))
        ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in order}
        exit_set = set(id(e) for e in exits)

        def intersect(a: BasicBlock, b: BasicBlock) -> Optional[BasicBlock]:
            while a is not b:
                while index[a] < index[b]:
                    nxt = ipdom[a]
                    if nxt is None or nxt is a:
                        return b
                    a = nxt
                while index[b] < index[a]:
                    nxt = ipdom[b]
                    if nxt is None or nxt is b:
                        return a
                    b = nxt
            return a

        for e in exits:
            ipdom[e] = e
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if id(block) in exit_set:
                    continue
                # "Predecessors" in the reverse CFG are forward successors.
                candidates = [s for s in succs[block] if s in ipdom and ipdom.get(s) is not None]
                if not candidates:
                    continue
                new_ipdom: Optional[BasicBlock] = candidates[0]
                for s in candidates[1:]:
                    if new_ipdom is None:
                        new_ipdom = s
                    else:
                        new_ipdom = intersect(s, new_ipdom)
                if ipdom.get(block) is not new_ipdom:
                    ipdom[block] = new_ipdom
                    changed = True

        self.ipdom = {}
        for b in order:
            if id(b) in exit_set:
                self.ipdom[b] = None  # exits are post-dominated only by the virtual root
            else:
                self.ipdom[b] = ipdom[b]
        self.children = {b: [] for b in order}
        for block, parent in self.ipdom.items():
            if parent is not None and parent in self.children:
                self.children[parent].append(block)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.ipdom

    def immediate_post_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.ipdom.get(block)

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` post-dominates ``b``."""
        if a is b:
            return True
        runner: Optional[BasicBlock] = b
        visited: Set[int] = set()
        while runner is not None and id(runner) not in visited:
            visited.add(id(runner))
            runner = self.ipdom.get(runner)
            if runner is a:
                return True
        return False

    def nearest_common_post_dominator(self, a: BasicBlock, b: BasicBlock) -> Optional[BasicBlock]:
        """Lowest block post-dominating both, or None if only the virtual exit does."""
        ancestors: Set[int] = set()
        runner: Optional[BasicBlock] = a
        while runner is not None:
            ancestors.add(id(runner))
            runner = self.ipdom.get(runner)
        runner = b
        while runner is not None:
            if id(runner) in ancestors:
                return runner
            runner = self.ipdom.get(runner)
        return None
