"""Flow-insensitive alias analysis ("basicaa" analogue).

The PDG builder needs to know which loads/stores may touch the same memory
so it can add memory-dependence edges.  The rules here are conservative but
precise enough for the CHStone-style kernels:

* pointers derived (through GEPs) from *different* allocas or *different*
  globals never alias;
* pointers derived from the same base may alias (MAY), unless both are GEPs
  of the same base with provably different constant indices (NO);
* pointers derived from function arguments may alias anything not proven to
  come from a distinct local alloca (arguments may point into globals).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

from repro.ir.instructions import Alloca, GetElementPtr, Instruction
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class AliasResult(Enum):
    """Tri-state alias answer."""

    NO = "no"
    MAY = "may"
    MUST = "must"


class AliasAnalysis:
    """Answers may-alias queries between two pointer values."""

    def underlying_object(self, ptr: Value) -> Value:
        """Strip GEPs and casts to find the allocation site / root object."""
        visited = 0
        current = ptr
        while visited < 1000:
            visited += 1
            if isinstance(current, GetElementPtr):
                current = current.base
                continue
            if isinstance(current, Instruction) and current.is_cast():
                current = current.get_operand(0)
                continue
            return current
        return current  # pragma: no cover - cycle guard

    def _constant_index_path(self, ptr: Value) -> Optional[Tuple[Value, Tuple[int, ...]]]:
        """If ``ptr`` is a chain of constant-index GEPs, return (root, indices)."""
        indices: list[int] = []
        current = ptr
        while isinstance(current, GetElementPtr):
            for idx in reversed(current.indices):
                if not isinstance(idx, Constant):
                    return None
                indices.append(idx.value)
            current = current.base
        indices.reverse()
        return current, tuple(indices)

    def alias(self, a: Value, b: Value) -> AliasResult:
        """May ``a`` and ``b`` point to overlapping memory?"""
        if a is b:
            return AliasResult.MUST
        root_a = self.underlying_object(a)
        root_b = self.underlying_object(b)

        if root_a is root_b:
            # Same base object: compare constant GEP paths when available.
            path_a = self._constant_index_path(a)
            path_b = self._constant_index_path(b)
            if path_a is not None and path_b is not None:
                if path_a[1] == path_b[1]:
                    return AliasResult.MUST
                # Same length constant paths that differ cannot overlap
                # (all our element types are scalars of equal size).
                if len(path_a[1]) == len(path_b[1]):
                    return AliasResult.NO
            return AliasResult.MAY

        # Distinct identified objects never alias.
        def is_identified(v: Value) -> bool:
            return isinstance(v, (Alloca, GlobalVariable))

        if is_identified(root_a) and is_identified(root_b):
            return AliasResult.NO

        # An alloca whose address never escapes cannot alias an argument or
        # another function's memory.
        for local, other in ((root_a, root_b), (root_b, root_a)):
            if isinstance(local, Alloca) and isinstance(other, (Argument, GlobalVariable)):
                if not self._address_escapes(local):
                    return AliasResult.NO

        return AliasResult.MAY

    def _address_escapes(self, alloca: Alloca) -> bool:
        """Does the address of ``alloca`` escape (passed to a call or stored)?"""
        from repro.ir.instructions import Call, Store  # local import to avoid cycle

        worklist: list[Value] = [alloca]
        seen: set[int] = set()
        while worklist:
            value = worklist.pop()
            if id(value) in seen:
                continue
            seen.add(id(value))
            for user, index in value.uses:
                if isinstance(user, Call):
                    return True
                if isinstance(user, Store) and index == 0:
                    # the pointer itself is being stored somewhere
                    return True
                if isinstance(user, GetElementPtr) or (isinstance(user, Instruction) and user.is_cast()):
                    worklist.append(user)
        return False

    def may_alias(self, a: Value, b: Value) -> bool:
        return self.alias(a, b) is not AliasResult.NO
