"""Control-flow-graph traversal utilities.

Blocks store their successors implicitly through terminator instructions;
these helpers compute the derived structures (orderings, predecessor maps)
that the dominator / loop analyses and the transforms need.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def successors_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map every block to its successor list (in terminator order)."""
    return {block: block.successors() for block in fn.blocks}


def predecessors_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map every block to its predecessor list (in function block order)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def reachable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first discovery order."""
    entry = fn.entry_block
    if entry is None:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        # Push successors in reverse so traversal visits them in order.
        for succ in reversed(block.successors()):
            if id(succ) not in seen:
                stack.append(succ)
    return order


def postorder(fn: Function) -> List[BasicBlock]:
    """Post-order traversal of reachable blocks (children before parents)."""
    entry = fn.entry_block
    if entry is None:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    # Iterative DFS with an explicit "children processed" marker to avoid
    # recursion limits on long CFG chains.
    stack: List[tuple[BasicBlock, bool]] = [(entry, False)]
    while stack:
        block, processed = stack.pop()
        if processed:
            order.append(block)
            continue
        if id(block) in seen:
            continue
        seen.add(id(block))
        stack.append((block, True))
        for succ in reversed(block.successors()):
            if id(succ) not in seen:
                stack.append((succ, False))
    return order


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse post-order — the canonical forward-dataflow iteration order."""
    return list(reversed(postorder(fn)))


def exit_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks whose terminator is a return (the CFG sinks)."""
    return [b for b in fn.blocks if not b.successors() and b.has_terminator()]
