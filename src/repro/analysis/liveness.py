"""Per-block liveness analysis for SSA values.

Used by the DSWP thread extraction (to find values that are live across
partition boundaries and therefore need a queue) and by the HLS scheduler
(to size the register/FF estimate in the area model).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.cfg import postorder, predecessors_map
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Value


class LivenessInfo:
    """Classic backward may-liveness over SSA values.

    ``live_in[b]`` / ``live_out[b]`` contain the SSA values (instructions and
    arguments) live at block entry / exit.  Phi operands are treated as live
    at the end of the corresponding predecessor (standard SSA convention).
    """

    def __init__(self, fn: Function):
        self.function = fn
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    @staticmethod
    def _is_trackable(value: Value) -> bool:
        return isinstance(value, (Instruction, Argument))

    def _compute(self) -> None:
        fn = self.function
        use: Dict[BasicBlock, Set[Value]] = {}
        defs: Dict[BasicBlock, Set[Value]] = {}
        phi_uses: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}

        for block in fn.blocks:
            u: Set[Value] = set()
            d: Set[Value] = set()
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    # Phi uses happen on the incoming edges, not in this block.
                    for value, pred in inst.incoming():
                        if self._is_trackable(value):
                            phi_uses.setdefault(pred, set()).add(value)
                else:
                    for op in inst.operands:
                        if self._is_trackable(op) and op not in d:
                            u.add(op)
                d.add(inst)
            use[block] = u
            defs[block] = d

        self.live_in = {b: set() for b in fn.blocks}
        self.live_out = {b: set() for b in fn.blocks}

        changed = True
        order = postorder(fn)  # backward analysis converges fastest in postorder
        while changed:
            changed = False
            for block in order:
                out: Set[Value] = set(phi_uses.get(block, set()))
                for succ in block.successors():
                    out |= self.live_in.get(succ, set())
                new_in = use[block] | (out - defs[block])
                if out != self.live_out[block] or new_in != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = new_in
                    changed = True

    # -- queries ------------------------------------------------------------------

    def live_across(self, value: Value) -> bool:
        """Is ``value`` live on entry to any block other than its defining block?"""
        if not isinstance(value, Instruction) or value.parent is None:
            return True
        for block, live in self.live_in.items():
            if block is not value.parent and value in live:
                return True
        return False

    def max_live_values(self) -> int:
        """Peak number of simultaneously live values across block boundaries."""
        if not self.live_in:
            return 0
        return max(len(v) for v in self.live_in.values())
