"""Call graph construction and queries.

Twill rejects recursion (no stack in hardware) and needs bottom-up call
order both for inlining decisions and for the DSWP master/slave function
handling; both come from this module.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import UnsupportedFeatureError
from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.module import Module


class CallGraph:
    """Direct-call graph of a module."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}
        self.call_counts: Dict[tuple, int] = {}
        self._compute()

    def _compute(self) -> None:
        for fn in self.module.functions.values():
            self.callees.setdefault(fn.name, [])
            self.callers.setdefault(fn.name, [])
        for fn in self.module.functions.values():
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    callee = inst.callee.name
                    if callee not in self.callees[fn.name]:
                        self.callees[fn.name].append(callee)
                    self.callers.setdefault(callee, [])
                    if fn.name not in self.callers[callee]:
                        self.callers[callee].append(fn.name)
                    key = (fn.name, callee)
                    self.call_counts[key] = self.call_counts.get(key, 0) + 1

    # -- queries ------------------------------------------------------------------

    def callees_of(self, name: str) -> List[str]:
        return list(self.callees.get(name, []))

    def callers_of(self, name: str) -> List[str]:
        return list(self.callers.get(name, []))

    def call_site_count(self, caller: str, callee: str) -> int:
        return self.call_counts.get((caller, callee), 0)

    def is_leaf(self, name: str) -> bool:
        """A leaf calls nothing except (possibly) intrinsic declarations."""
        for callee in self.callees.get(name, []):
            fn = self.module.functions.get(callee)
            if fn is not None and not fn.is_declaration():
                return False
        return True

    def find_recursion(self) -> List[List[str]]:
        """Return all cycles among defined functions (empty if none)."""
        cycles: List[List[str]] = []
        colour: Dict[str, int] = {}  # 0 white, 1 grey, 2 black
        stack: List[str] = []

        def visit(name: str) -> None:
            colour[name] = 1
            stack.append(name)
            for callee in self.callees.get(name, []):
                fn = self.module.functions.get(callee)
                if fn is None or fn.is_declaration():
                    continue
                c = colour.get(callee, 0)
                if c == 0:
                    visit(callee)
                elif c == 1:
                    idx = stack.index(callee)
                    cycles.append(stack[idx:] + [callee])
            stack.pop()
            colour[name] = 2

        for fn in self.module.defined_functions():
            if colour.get(fn.name, 0) == 0:
                visit(fn.name)
        return cycles

    def check_no_recursion(self) -> None:
        """Raise :class:`UnsupportedFeatureError` if the module contains recursion."""
        cycles = self.find_recursion()
        if cycles:
            pretty = " -> ".join(cycles[0])
            raise UnsupportedFeatureError(
                f"recursive call chain is not supported by Twill: {pretty}"
            )

    def bottom_up_order(self) -> List[Function]:
        """Defined functions ordered so callees come before callers (post-order)."""
        order: List[Function] = []
        visited: Set[str] = set()

        def visit(fn: Function) -> None:
            if fn.name in visited or fn.is_declaration():
                return
            visited.add(fn.name)
            for callee_name in self.callees.get(fn.name, []):
                callee = self.module.functions.get(callee_name)
                if callee is not None:
                    visit(callee)
            order.append(fn)

        roots = [f for f in self.module.defined_functions()]
        # Start from functions nobody calls (main first among them).
        roots.sort(key=lambda f: (bool(self.callers.get(f.name)), f.name != "main"))
        for fn in roots:
            visit(fn)
        return order

    def top_down_order(self) -> List[Function]:
        """Callers before callees (reverse of bottom-up)."""
        return list(reversed(self.bottom_up_order()))
