"""Static analyses over the IR (the LLVM analysis-pass analogues)."""

from repro.analysis.cfg import (
    postorder,
    reachable_blocks,
    reverse_postorder,
    successors_map,
    predecessors_map,
)
from repro.analysis.dominators import DominatorTree, PostDominatorTree
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.liveness import LivenessInfo
from repro.analysis.callgraph import CallGraph

__all__ = [
    "postorder",
    "reachable_blocks",
    "reverse_postorder",
    "successors_map",
    "predecessors_map",
    "DominatorTree",
    "PostDominatorTree",
    "Loop",
    "LoopInfo",
    "AliasAnalysis",
    "AliasResult",
    "LivenessInfo",
    "CallGraph",
]
