"""Natural-loop analysis (the LLVM ``loops`` / ``loop-simplify`` analogue).

Loops are discovered from back edges in the dominator tree and organised
into a forest: each :class:`Loop` knows its header, its blocks, its parent
loop and its sub-loops.  The DSWP loop-matching rules (thesis §5.2.1,
Figure 5.3) query this structure to decide where enqueue/dequeue calls go
(preheaders and exit blocks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import predecessors_map, reachable_blocks
from repro.analysis.dominators import DominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction


class Loop:
    """One natural loop."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []
        self.latches: List[BasicBlock] = []

    # -- membership -------------------------------------------------------------

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def contains_instruction(self, inst: Instruction) -> bool:
        return inst.parent is not None and self.contains(inst.parent)

    def add_block(self, block: BasicBlock) -> None:
        if not self.contains(block):
            self.blocks.append(block)
            self._block_ids.add(id(block))

    # -- structure ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Nesting depth, 1 for a top-level loop."""
        d = 1
        parent = self.parent
        while parent is not None:
            d += 1
            parent = parent.parent
        return d

    def preheaders(self) -> List[BasicBlock]:
        """Predecessors of the header that are outside the loop."""
        return [p for p in self.header.predecessors() if not self.contains(p)]

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are targets of edges leaving the loop."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains(succ) and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with an edge leaving the loop."""
        out: List[BasicBlock] = []
        for block in self.blocks:
            if any(not self.contains(s) for s in block.successors()):
                out.append(block)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """The loop forest of one function."""

    def __init__(self, fn: Function, domtree: Optional[DominatorTree] = None):
        self.function = fn
        self.domtree = domtree or DominatorTree(fn)
        self.top_level: List[Loop] = []
        self._loop_of_block: Dict[int, Loop] = {}
        self._compute()

    # -- construction --------------------------------------------------------------

    def _compute(self) -> None:
        blocks = reachable_blocks(self.function)
        preds = predecessors_map(self.function)
        # Find back edges: edge (latch -> header) where header dominates latch.
        headers: Dict[int, Loop] = {}
        order: List[Loop] = []
        for block in blocks:
            for succ in block.successors():
                if self.domtree.contains(succ) and self.domtree.dominates(succ, block):
                    loop = headers.get(id(succ))
                    if loop is None:
                        loop = Loop(succ)
                        headers[id(succ)] = loop
                        order.append(loop)
                    loop.latches.append(block)
                    self._collect_loop_body(loop, block, preds)
        # Establish nesting: sort by block count ascending so inner loops are
        # assigned to blocks first; a loop's parent is the smallest loop that
        # strictly contains its header (other than itself).
        for loop in sorted(order, key=lambda l: len(l.blocks)):
            for block in loop.blocks:
                if id(block) not in self._loop_of_block:
                    self._loop_of_block[id(block)] = loop
        for loop in order:
            candidates = [
                other
                for other in order
                if other is not loop and other.contains(loop.header) and len(other.blocks) > len(loop.blocks)
            ]
            if candidates:
                parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent = parent
                parent.subloops.append(loop)
        self.top_level = [l for l in order if l.parent is None]

    def _collect_loop_body(self, loop: Loop, latch: BasicBlock, preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
        """Add to ``loop`` every block that can reach the latch without passing the header."""
        stack = [latch]
        while stack:
            block = stack.pop()
            if loop.contains(block):
                continue
            loop.add_block(block)
            for p in preds.get(block, []):
                if not loop.contains(p):
                    stack.append(p)

    # -- queries -----------------------------------------------------------------------

    def loops(self) -> List[Loop]:
        """All loops (outer loops first, then their sub-loops, recursively)."""
        out: List[Loop] = []

        def walk(loop: Loop) -> None:
            out.append(loop)
            for sub in loop.subloops:
                walk(sub)

        for top in self.top_level:
            walk(top)
        return out

    def innermost_loop_of(self, block: BasicBlock) -> Optional[Loop]:
        return self._loop_of_block.get(id(block))

    def loop_of_instruction(self, inst: Instruction) -> Optional[Loop]:
        if inst.parent is None:
            return None
        return self.innermost_loop_of(inst.parent)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.innermost_loop_of(block)
        return loop.depth if loop else 0

    def common_loop(self, a: BasicBlock, b: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing both blocks, or None."""
        loop_a = self.innermost_loop_of(a)
        chain: List[Loop] = []
        while loop_a is not None:
            chain.append(loop_a)
            loop_a = loop_a.parent
        loop_b = self.innermost_loop_of(b)
        while loop_b is not None:
            for candidate in chain:
                if candidate is loop_b:
                    return candidate
            loop_b = loop_b.parent
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LoopInfo {self.function.name}: {len(self.loops())} loops>"
