"""Design-space exploration (DSE) over the Twill partition/configuration space.

The thesis picks one hardware/software partition per benchmark by hand; this
package turns the reproduction into an auto-partitioning tool.  It searches
the configuration space the compiler already exposes — targeted DSWP split,
pipeline depth, queue geometry, HLS loop pipelining — for area/cycles/power
trade-offs, and reports the exact Pareto frontier of everything it evaluated.

The pieces (one module each):

* :mod:`repro.explore.space` — a declarative :class:`SearchSpace` of typed
  dimensions derived from :mod:`repro.core.config`; every
  :class:`Candidate` is hashable and maps onto an existing cache content
  key, so search never re-evaluates a configuration any run has seen;
* :mod:`repro.explore.evaluate` — the pure ``explore`` task payload
  (re-partition + re-simulate one candidate from the workload's compile
  artifact) and its task-graph node constructor;
* :mod:`repro.explore.frontier` — exact multi-objective Pareto sets over
  the evaluated candidates, with deterministic tie-breaking;
* :mod:`repro.explore.strategies` — pluggable search strategies
  (``exhaustive``, ``random``, ``greedy``, ``annealing``) behind one
  generation-oriented :class:`Strategy` interface;
* :mod:`repro.explore.driver` — the :class:`ExplorationDriver` that submits
  each generation as ordinary task-graph nodes (parallel, disk-cached,
  distributable over ``repro worker serve``) and journals search state as a
  structured-JSON derived artifact so a killed search resumes mid-way.

``repro explore <workload> --strategy S --budget N --seed K`` is the CLI
entry point; see ``docs/EXPLORATION.md``.
"""

from repro.explore.driver import ExplorationDriver, ExplorationResult
from repro.explore.frontier import OBJECTIVES, Frontier, Objective, pareto_indices
from repro.explore.space import Candidate, Dimension, SearchSpace, default_space, report_space
from repro.explore.strategies import STRATEGIES, Strategy, make_strategy

__all__ = [
    "Candidate",
    "Dimension",
    "ExplorationDriver",
    "ExplorationResult",
    "Frontier",
    "OBJECTIVES",
    "Objective",
    "STRATEGIES",
    "SearchSpace",
    "Strategy",
    "default_space",
    "make_strategy",
    "pareto_indices",
    "report_space",
]
