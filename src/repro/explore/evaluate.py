"""The ``explore`` task payload: evaluate one candidate from a compile artifact.

Evaluating a candidate does **not** recompile the workload: every knob the
search space exposes (partitioning, queue geometry, HLS scheduling) acts
after the front end, so a candidate is a *derived* artifact of the
workload's baseline compile — re-run DSWP under the candidate's partition
config, re-schedule/re-roll-up area, and re-simulate timing and power,
exactly the generalisation of the Figure 6.3/6.4 split re-simulation.

That makes exploration cheap and perfectly cacheable: the content key is
:func:`repro.eval.cache.derived_key` over the baseline compile key (which
already folds in the workload source, the full baseline configuration and
the code digest) plus the candidate's canonical parameters — so a second
search, a resumed search, or a report that happens to touch the same
candidate hits the cache instead of re-evaluating.

:func:`compute_explore_point` is a registered remote payload
(``repro.eval.remote.protocol``), so ``repro explore --workers``
distributes candidates over ``repro worker serve`` daemons unchanged.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import perf
from repro.config import CompilerConfig
from repro.eval import taskgraph
from repro.eval.cache import ArtifactCache, compile_key, derived_key
from repro.explore.space import Candidate, Dimension, SearchSpace
from repro.sim.system import evaluate_with_partition, repartition
from repro.workloads import get_workload


def apply_params(
    space: SearchSpace, config: CompilerConfig, params: Dict[str, Any]
) -> CompilerConfig:
    """Validate *params* against *space* and apply them to *config*."""
    return space.candidate(dict(params)).apply(space, config)


def space_from_dict(space_dict: Dict[str, Any]) -> SearchSpace:
    """Inverse of :meth:`SearchSpace.to_dict` (the wire/journal form)."""
    return SearchSpace(
        dimensions=tuple(
            Dimension(d["name"], d["section"], d["field"], tuple(d["values"]))
            for d in space_dict["dimensions"]
        )
    )


# Per-process memo for candidate partitions, keyed by the DSWP stage key.
# A 240-candidate search typically spans only a handful of distinct partition
# parameter sets (the other dimensions act after partitioning), so candidates
# evaluated in the same worker process share one in-memory DSWPResult instead
# of re-running DSWP — and re-reading it from disk — per candidate.
_DSWP_MEMO: "OrderedDict[str, Any]" = OrderedDict()
_DSWP_MEMO_LIMIT = 16


def dswp_stage_key(parent_compile_key: str, candidate_config: CompilerConfig) -> str:
    """Content address of a candidate's re-partition stage.

    Keyed by the baseline compile key (module + profile identity) and the
    candidate's full partition-parameter set — the only inputs DSWP reads.
    Candidates differing only in runtime/queue/HLS dimensions map to the
    same key and therefore share one cached :class:`DSWPResult`.
    """
    params = dataclasses.asdict(candidate_config.partition)
    return derived_key(parent_compile_key, "dswp", params)


def _rebind_partitioning(dswp: Any, module: Any) -> Any:
    """Re-anchor a cached :class:`DSWPResult` onto *module*'s own objects.

    Partition assignments are keyed by instruction object identity, so a
    DSWPResult loaded from the artifact cache references its *own* unpickled
    copy of the module — not the instruction objects the compile artifact's
    trace replays.  Both copies unpickle from content-addressed artifacts
    whose keys share the same compile parent, so instruction order is
    identical and a positional remap is exact.  No-op when already bound
    (fresh computes and repeat memo hits), so rebinding is safe to call on
    every lookup.
    """
    for fn_name, fp in dswp.partitioning.functions.items():
        target = module.get_function(fn_name)
        if fp.function is target:
            continue
        remap = dict(zip((id(i) for i in fp.function.instructions()), target.instructions()))
        for partition in fp.partitions:
            partition.instructions = [remap[id(inst)] for inst in partition.instructions]
        fp.assignment = {
            id(inst): partition.index
            for partition in fp.partitions
            for inst in partition.instructions
        }
        fp.function = target
    dswp.partitioning.module = module
    return dswp


def _candidate_dswp(
    parent_compile_key: str,
    compile_result: Any,
    candidate_config: CompilerConfig,
    cache_root: Optional[str],
) -> Any:
    """Re-partition for one candidate, memoized per process and cached on disk."""
    key = dswp_stage_key(parent_compile_key, candidate_config)
    hit = _DSWP_MEMO.get(key)
    if hit is not None:
        _DSWP_MEMO.move_to_end(key)
        return _rebind_partitioning(hit, compile_result.module)

    def compute() -> Any:
        return repartition(
            compile_result.module,
            compile_result.profile,
            candidate_config,
            candidate_config.partition.sw_fraction,
        )

    if cache_root is not None:
        dswp = ArtifactCache.from_spec(cache_root).get_or_compute(
            key, compute, serializer="pickle"
        )
    else:
        dswp = compute()
    dswp = _rebind_partitioning(dswp, compile_result.module)
    _DSWP_MEMO[key] = dswp
    _DSWP_MEMO.move_to_end(key)
    while len(_DSWP_MEMO) > _DSWP_MEMO_LIMIT:
        _DSWP_MEMO.popitem(last=False)
    return dswp


def compute_explore_point(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    params: Dict[str, Any],
    space_dict: Dict[str, Any],
) -> Dict[str, Any]:
    """Evaluate one candidate: re-partition + re-simulate, return objectives.

    Pure and picklable (pool workers) and wire-encodable (remote workers):
    *params* is the candidate's plain parameter dict and *space_dict* the
    space's ``to_dict()`` form, rebuilt here so validation travels with the
    task.  The result is a small structured-JSON document carrying the
    objective values, the echo of the parameters (so aggregators and
    journals never have to reverse-engineer task ids) and the headline
    speedup for the report figures.

    Evaluation is incremental: the re-partition stage is content-addressed
    by :func:`dswp_stage_key` and shared — via the on-disk cache and a
    per-process memo — across every candidate whose partition parameters
    match, so a search that varies only runtime/queue/HLS dimensions pays
    for DSWP once per distinct partition, not once per candidate.
    """
    with perf.stage("explore"):
        result = taskgraph._sweep_input(name, config, cache_root)
        candidate_config = apply_params(space_from_dict(space_dict), config, params)
        parent = compile_key(get_workload(name).source, config)
        dswp = _candidate_dswp(parent, result, candidate_config, cache_root)
        system = evaluate_with_partition(
            result.name,
            result.module,
            result.execution.trace,
            dswp,
            result.legup,
            candidate_config,
        )
        return {
            "workload": name,
            "params": dict(sorted(params.items())),
            "cycles": system.twill.cycles,
            "area_luts": system.twill.area.luts,
            "power_mw": system.twill.power.total_mw,
            "speedup_vs_sw": system.speedup_vs_software,
            "queues": float(dswp.partitioning.total_queues),
        }


def explore_task_id(name: str, candidate: Candidate) -> str:
    """The deterministic task id of one (workload, candidate) node."""
    return f"explore:{name}:{candidate.short_id()}"


def explore_key(parent_compile_key: str, candidate: Candidate) -> str:
    """The content address of one candidate's evaluation."""
    return derived_key(parent_compile_key, "explore", candidate.params())


def explore_task(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    space: SearchSpace,
    candidate: Candidate,
) -> "taskgraph.Task":
    """One candidate-evaluation node depending on its workload's compile node."""
    parent = compile_key(get_workload(name).source, config)
    return taskgraph.Task(
        task_id=explore_task_id(name, candidate),
        kind=taskgraph.KIND_EXPLORE,
        fn=compute_explore_point,
        args=(name, config, cache_root, candidate.params(), space.to_dict()),
        deps=(f"compile:{name}",),
        key=explore_key(parent, candidate),
        serializer="json",
        workload=name,
    )
