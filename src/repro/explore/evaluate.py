"""The ``explore`` task payload: evaluate one candidate from a compile artifact.

Evaluating a candidate does **not** recompile the workload: every knob the
search space exposes (partitioning, queue geometry, HLS scheduling) acts
after the front end, so a candidate is a *derived* artifact of the
workload's baseline compile — re-run DSWP under the candidate's partition
config, re-schedule/re-roll-up area, and re-simulate timing and power,
exactly the generalisation of the Figure 6.3/6.4 split re-simulation.

That makes exploration cheap and perfectly cacheable: the content key is
:func:`repro.eval.cache.derived_key` over the baseline compile key (which
already folds in the workload source, the full baseline configuration and
the code digest) plus the candidate's canonical parameters — so a second
search, a resumed search, or a report that happens to touch the same
candidate hits the cache instead of re-evaluating.

:func:`compute_explore_point` is a registered remote payload
(``repro.eval.remote.protocol``), so ``repro explore --workers``
distributes candidates over ``repro worker serve`` daemons unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.config import CompilerConfig
from repro.eval import taskgraph
from repro.eval.cache import compile_key, derived_key
from repro.explore.space import Candidate, Dimension, SearchSpace
from repro.sim.system import resimulate_with_split
from repro.workloads import get_workload


def apply_params(
    space: SearchSpace, config: CompilerConfig, params: Dict[str, Any]
) -> CompilerConfig:
    """Validate *params* against *space* and apply them to *config*."""
    return space.candidate(dict(params)).apply(space, config)


def space_from_dict(space_dict: Dict[str, Any]) -> SearchSpace:
    """Inverse of :meth:`SearchSpace.to_dict` (the wire/journal form)."""
    return SearchSpace(
        dimensions=tuple(
            Dimension(d["name"], d["section"], d["field"], tuple(d["values"]))
            for d in space_dict["dimensions"]
        )
    )


def compute_explore_point(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    params: Dict[str, Any],
    space_dict: Dict[str, Any],
) -> Dict[str, Any]:
    """Evaluate one candidate: re-partition + re-simulate, return objectives.

    Pure and picklable (pool workers) and wire-encodable (remote workers):
    *params* is the candidate's plain parameter dict and *space_dict* the
    space's ``to_dict()`` form, rebuilt here so validation travels with the
    task.  The result is a small structured-JSON document carrying the
    objective values, the echo of the parameters (so aggregators and
    journals never have to reverse-engineer task ids) and the headline
    speedup for the report figures.
    """
    result = taskgraph._sweep_input(name, config, cache_root)
    candidate_config = apply_params(space_from_dict(space_dict), config, params)
    dswp, system = resimulate_with_split(
        result.name,
        result.module,
        result.execution.trace,
        result.profile,
        result.legup,
        candidate_config,
        candidate_config.partition.sw_fraction,
    )
    return {
        "workload": name,
        "params": dict(sorted(params.items())),
        "cycles": system.twill.cycles,
        "area_luts": system.twill.area.luts,
        "power_mw": system.twill.power.total_mw,
        "speedup_vs_sw": system.speedup_vs_software,
        "queues": float(dswp.partitioning.total_queues),
    }


def explore_task_id(name: str, candidate: Candidate) -> str:
    """The deterministic task id of one (workload, candidate) node."""
    return f"explore:{name}:{candidate.short_id()}"


def explore_key(parent_compile_key: str, candidate: Candidate) -> str:
    """The content address of one candidate's evaluation."""
    return derived_key(parent_compile_key, "explore", candidate.params())


def explore_task(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    space: SearchSpace,
    candidate: Candidate,
) -> "taskgraph.Task":
    """One candidate-evaluation node depending on its workload's compile node."""
    parent = compile_key(get_workload(name).source, config)
    return taskgraph.Task(
        task_id=explore_task_id(name, candidate),
        kind=taskgraph.KIND_EXPLORE,
        fn=compute_explore_point,
        args=(name, config, cache_root, candidate.params(), space.to_dict()),
        deps=(f"compile:{name}",),
        key=explore_key(parent, candidate),
        serializer="json",
        workload=name,
    )
