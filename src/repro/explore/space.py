"""The declarative search space: typed dimensions over the compiler config.

A :class:`Dimension` names one knob of the configuration tree
(``section.field`` on :class:`repro.config.CompilerConfig`) together with the
finite, ordered list of values the search may assign it.  A
:class:`SearchSpace` is a tuple of dimensions; a :class:`Candidate` is one
point of their cartesian product — frozen and hashable, so strategies can
use candidates as dictionary keys, and canonically serialisable
(``params()``), so every candidate maps onto exactly one cache content key
(:func:`repro.eval.cache.derived_key` over the parent compile key and the
params) and onto one journal entry.

Dimensions are *validated against the config dataclasses* at construction:
an unknown section/field, an empty value list, or a value the corresponding
``validate()`` would reject fails fast instead of mid-search.  Applying a
candidate (:meth:`Candidate.apply`) rebuilds a full
:class:`~repro.config.CompilerConfig` via ``dataclasses.replace``, never
mutating the baseline.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.config import CompilerConfig
from repro.errors import ConfigError, ReproError

#: Config sections a dimension may address (the nested dataclasses).
_SECTIONS = ("partition", "runtime", "hls")


@dataclass(frozen=True)
class Dimension:
    """One searchable knob: a config field plus its enumerable values.

    ``name`` is the short identifier used in params/journals/reports
    (unique within a space); ``section``/``field`` address the knob on the
    configuration tree; ``values`` is the ordered list a step-based strategy
    walks (so neighbouring values should be adjacent trade-offs).
    """

    name: str
    section: str
    field: str
    values: Tuple[Any, ...]

    def validate(self) -> None:
        if self.section not in _SECTIONS:
            raise ConfigError(
                f"dimension '{self.name}': unknown config section '{self.section}' "
                f"(expected one of {_SECTIONS})"
            )
        probe = CompilerConfig()
        section = getattr(probe, self.section)
        if not hasattr(section, self.field):
            raise ConfigError(
                f"dimension '{self.name}': {self.section} config has no field '{self.field}'"
            )
        if not self.values:
            raise ConfigError(f"dimension '{self.name}' has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigError(f"dimension '{self.name}' has duplicate values")
        for value in self.values:
            # Each value must survive the dataclass's own validation when
            # applied alone to the default config.
            replace(probe, **{self.section: replace(section, **{self.field: value})}).validate()

    def index_of(self, value: Any) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ReproError(
                f"value {value!r} is not in dimension '{self.name}' "
                f"(allowed: {list(self.values)})"
            ) from None


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: an assignment per dimension, by name.

    ``assignment`` is sorted by dimension name, which makes equal candidates
    compare (and hash) equal regardless of how they were constructed, and
    makes :meth:`key` a canonical serialisation usable for content
    addresses, task ids and journal matching.
    """

    assignment: Tuple[Tuple[str, Any], ...]

    def params(self) -> Dict[str, Any]:
        """The candidate as a plain, JSON-serialisable parameter dict."""
        return dict(self.assignment)

    def key(self) -> str:
        """Canonical JSON form (sorted keys, compact) — the tie-break order."""
        return json.dumps(self.params(), sort_keys=True, separators=(",", ":"))

    def short_id(self) -> str:
        """Eight hex characters identifying the candidate in task ids."""
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()[:8]

    def value(self, name: str) -> Any:
        for dim_name, value in self.assignment:
            if dim_name == name:
                return value
        raise ReproError(f"candidate has no dimension '{name}'")

    def apply(self, space: "SearchSpace", config: CompilerConfig) -> CompilerConfig:
        """A fresh :class:`CompilerConfig`: *config* with this assignment applied."""
        sections: Dict[str, Dict[str, Any]] = {}
        by_name = {dim.name: dim for dim in space.dimensions}
        for name, value in self.assignment:
            dim = by_name.get(name)
            if dim is None:
                raise ReproError(f"candidate dimension '{name}' is not in the search space")
            sections.setdefault(dim.section, {})[dim.field] = value
        updates = {
            section: replace(getattr(config, section), **fields)
            for section, fields in sections.items()
        }
        candidate_config = replace(config, **updates)
        candidate_config.validate()
        return candidate_config


@dataclass(frozen=True)
class SearchSpace:
    """An ordered tuple of dimensions; the search iterates their product."""

    dimensions: Tuple[Dimension, ...]

    def __post_init__(self) -> None:
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate dimension names in search space: {names}")
        for dim in self.dimensions:
            dim.validate()

    def size(self) -> int:
        total = 1
        for dim in self.dimensions:
            total *= len(dim.values)
        return total

    def dimension(self, name: str) -> Dimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise ReproError(f"search space has no dimension '{name}'")

    def _make(self, values: Tuple[Any, ...]) -> Candidate:
        pairs = sorted(zip((d.name for d in self.dimensions), values))
        return Candidate(assignment=tuple(pairs))

    def candidates(self) -> Iterator[Candidate]:
        """Every candidate, in deterministic (row-major product) order."""
        for values in itertools.product(*(dim.values for dim in self.dimensions)):
            yield self._make(values)

    def candidate(self, params: Dict[str, Any]) -> Candidate:
        """Build (and validate) a candidate from a parameter dict."""
        if set(params) != {dim.name for dim in self.dimensions}:
            raise ReproError(
                f"params {sorted(params)} do not match the space's dimensions "
                f"{sorted(dim.name for dim in self.dimensions)}"
            )
        for dim in self.dimensions:
            dim.index_of(params[dim.name])  # raises on out-of-space values
        return Candidate(assignment=tuple(sorted(params.items())))

    def initial(self, config: Optional[CompilerConfig] = None) -> Candidate:
        """The search's start point: the baseline config snapped into the space.

        Each dimension takes the baseline's value when it is one of the
        dimension's values, else the middle value — so hill-climbers start
        from (near) the thesis configuration rather than a corner.
        """
        config = config or CompilerConfig()
        values = []
        for dim in self.dimensions:
            baseline = getattr(getattr(config, dim.section), dim.field)
            if baseline in dim.values:
                values.append(baseline)
            else:
                values.append(dim.values[len(dim.values) // 2])
        return self._make(tuple(values))

    def neighbours(self, candidate: Candidate) -> List[Candidate]:
        """Candidates one step away along one dimension, in deterministic order."""
        out: List[Candidate] = []
        for dim in self.dimensions:
            index = dim.index_of(candidate.value(dim.name))
            for step in (-1, 1):
                neighbour_index = index + step
                if 0 <= neighbour_index < len(dim.values):
                    params = candidate.params()
                    params[dim.name] = dim.values[neighbour_index]
                    out.append(Candidate(assignment=tuple(sorted(params.items()))))
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (journals, ``repro explore --json`` metadata)."""
        return {
            "dimensions": [
                {
                    "name": dim.name,
                    "section": dim.section,
                    "field": dim.field,
                    "values": list(dim.values),
                }
                for dim in self.dimensions
            ]
        }

    def digest(self) -> str:
        """Content digest folded into journal keys: a different space must
        never resume another space's journal."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_space() -> SearchSpace:
    """The full CLI search space: split, pipeline depth, queue geometry, HLS.

    240 candidates — large enough that budgeted strategies matter, small
    enough that ``exhaustive`` stays feasible for a workload or two.
    """
    return SearchSpace(
        dimensions=(
            Dimension("sw_fraction", "partition", "sw_fraction",
                      (0.1, 0.25, 0.4, 0.5, 0.6, 0.75)),
            Dimension("max_partitions", "partition", "max_partitions_per_function",
                      (2, 3, 4, 6)),
            Dimension("queue_depth", "runtime", "queue_depth", (2, 4, 8, 16, 32)),
            Dimension("loop_pipelining", "hls", "loop_pipelining", (False, True)),
        )
    )


def report_space() -> SearchSpace:
    """The small, fixed space every ``repro report`` explores exhaustively.

    Nine candidates per workload (3 split targets x 3 queue depths): cheap
    enough to ride along with the sweeps, rich enough for a non-trivial
    frontier in the report's exploration section.
    """
    return SearchSpace(
        dimensions=(
            Dimension("sw_fraction", "partition", "sw_fraction", (0.25, 0.5, 0.75)),
            Dimension("queue_depth", "runtime", "queue_depth", (4, 8, 16)),
        )
    )
