"""The exploration driver: strategies on top, the task graph underneath.

:class:`ExplorationDriver` runs one budgeted search for one workload.  Each
generation the strategy proposes becomes ordinary task-graph nodes — one
``explore`` node per fresh candidate, hanging off the workload's compile
node — executed through :meth:`repro.eval.harness.EvaluationHarness.execute`,
so candidate evaluation inherits everything the evaluation stack already
does: process-pool parallelism (``--jobs``), remote workers (``--workers``),
content-addressed disk caching, and single-flight across concurrent
processes.

**Resumability.**  After every generation the search state is journaled as a
structured-JSON derived artifact: the journal key hashes the workload's
compile key, the strategy, budget, seed and the space digest, so a journal
can only ever resume *the same* search.  On start the driver replays the
journal through the strategy (propose → match → observe), which restores
both the evaluated set and the strategy's RNG position; a search killed
mid-way fast-forwards through its completed generations without executing
anything, then continues live — and because candidate evaluations are
content-addressed, even the un-journaled tail of a killed generation is
recovered from the cache rather than recomputed.  Determinism of the whole
construction (same seed + budget ⇒ byte-identical frontier, serial vs
parallel vs resumed) is asserted by ``tests/test_explore.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.eval.cache import derived_key
from repro.eval.harness import EvaluationHarness
from repro.eval.taskgraph import TaskExecutor, TaskGraph
from repro.explore.evaluate import explore_task, explore_task_id
from repro.explore.frontier import OBJECTIVES, Frontier, scalar_cost
from repro.explore.space import Candidate, SearchSpace, default_space
from repro.explore.strategies import make_strategy
from repro.obs import tracing as obs_tracing

#: Journal document schema version (bump on incompatible layout changes;
#: old journals are then discarded and the search replays from the cache).
JOURNAL_SCHEMA = 1


def journal_key(
    compile_key: str, strategy: str, budget: int, seed: int, space_digest: str
) -> str:
    """The content address of one search's journal.

    Unlike ordinary derived artifacts the journal *evolves* under this key
    (each generation overwrites it with a longer prefix); that is sound
    because the full trajectory is a deterministic function of exactly the
    inputs hashed here, so any stored prefix is a prefix of the one true
    search.
    """
    return derived_key(
        compile_key,
        "explore-journal",
        {"strategy": strategy, "budget": budget, "seed": seed, "space": space_digest},
    )


class ExplorationResult:
    """Everything one search produced, separated into *content* and *effort*.

    :meth:`to_json_dict` is the deterministic content (parameters,
    evaluations in evaluation order, the Pareto frontier, per-objective
    bests, search progress) — two runs of the same search emit identical
    bytes.  ``stats`` is the effort (how many candidates actually executed
    vs hit the cache vs were replayed from the journal) and is deliberately
    *not* part of the JSON document, because it legitimately differs
    between cold, warm and resumed runs.
    """

    def __init__(
        self,
        workload: str,
        strategy: str,
        budget: int,
        seed: int,
        space: SearchSpace,
        evaluations: List[Tuple[Candidate, Dict[str, Any]]],
        generations: int,
        stats: Dict[str, int],
    ):
        self.workload = workload
        self.strategy = strategy
        self.budget = budget
        self.seed = seed
        self.space = space
        self.evaluations = evaluations
        self.generations = generations
        self.stats = stats
        self.frontier = Frontier([(c.params(), r) for c, r in evaluations])

    def progress_rows(self) -> List[Dict[str, Any]]:
        """Best-so-far scalar cost after each evaluation (the search curve)."""
        rows = []
        best = float("inf")
        for index, (_, result) in enumerate(self.evaluations, start=1):
            best = min(best, scalar_cost(result))
            rows.append({"evaluation": index, "best_cost": best})
        return rows

    def best_row(self) -> Dict[str, Any]:
        """The scalar-best evaluated candidate (params + objective values)."""
        candidate, result = min(
            self.evaluations, key=lambda pair: (scalar_cost(pair[1]), pair[0].key())
        )
        return {
            "params": candidate.params(),
            "cycles": result["cycles"],
            "area_luts": result["area_luts"],
            "power_mw": result["power_mw"],
            "speedup_vs_sw": result["speedup_vs_sw"],
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """The deterministic, machine-readable search outcome."""
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "space": self.space.to_dict(),
            "objectives": [o.name for o in OBJECTIVES],
            "evaluations": [
                {"params": c.params(), "result": r} for c, r in self.evaluations
            ],
            "generations": self.generations,
            "frontier": self.frontier.to_rows(),
            "best": self.best_row(),
        }


class ExplorationDriver:
    """Run one strategy over one workload's configuration space."""

    def __init__(
        self,
        harness: EvaluationHarness,
        workload: str,
        strategy: str = "annealing",
        budget: int = 32,
        seed: int = 0,
        space: Optional[SearchSpace] = None,
        jobs: Optional[int] = None,
        executor: Optional[TaskExecutor] = None,
        max_generations: Optional[int] = None,
    ):
        if workload not in harness.benchmark_names:
            raise ReproError(
                f"workload '{workload}' is not in this harness's benchmark set "
                f"({', '.join(harness.benchmark_names)})"
            )
        self.harness = harness
        self.workload = workload
        self.strategy_name = strategy
        self.budget = budget
        self.seed = seed
        self.space = space or default_space()
        self.jobs = jobs
        self.executor = executor
        #: Test/interrupt hook: stop (journaled) after this many generations.
        self.max_generations = max_generations
        #: Aggregated effort over the whole search (all generations).
        self.stats: Dict[str, int] = {
            "evaluated": 0, "executed": 0, "cache_hits": 0, "seeded": 0, "replayed": 0,
        }

    # -- journal ---------------------------------------------------------------

    def _journal_key(self) -> str:
        return journal_key(
            self.harness._compile_key(self.workload),
            self.strategy_name,
            self.budget,
            self.seed,
            self.space.digest(),
        )

    def _load_journal(self) -> List[List[Dict[str, Any]]]:
        """The journaled generations (``[]`` when absent or unusable)."""
        if self.harness.cache is None:
            return []
        doc = self.harness.cache.get(self._journal_key())
        if not isinstance(doc, dict) or doc.get("schema") != JOURNAL_SCHEMA:
            return []
        generations = doc.get("generations")
        if not isinstance(generations, list):
            return []
        return generations

    def _write_journal(self, generations: List[List[Dict[str, Any]]]) -> None:
        if self.harness.cache is None:
            return
        self.harness.cache.put(
            self._journal_key(),
            {
                "schema": JOURNAL_SCHEMA,
                "workload": self.workload,
                "strategy": self.strategy_name,
                "budget": self.budget,
                "seed": self.seed,
                "space": self.space.to_dict(),
                "generations": generations,
            },
            serializer="json",
        )

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, candidates: List[Candidate]) -> Dict[Candidate, Dict[str, Any]]:
        """Evaluate fresh candidates as one task-graph generation."""
        graph = TaskGraph()
        self.harness.declare_compile(graph, self.workload)
        for candidate in candidates:
            graph.add(
                explore_task(
                    self.workload,
                    self.harness.config,
                    self.harness._cache_root,
                    self.space,
                    candidate,
                )
            )
        results = self.harness.execute(graph, parallel=self.jobs, executor=self.executor)
        stats = self.harness.last_stats
        self.stats["executed"] += stats.get("executed", {}).get("explore", 0)
        self.stats["cache_hits"] += stats.get("cache_hit_kinds", {}).get("explore", 0)
        self.stats["seeded"] += stats.get("seeded", 0)
        return {
            candidate: results[explore_task_id(self.workload, candidate)]
            for candidate in candidates
        }

    # -- the search loop -------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Execute the search; returns the deterministic exploration result."""
        with obs_tracing.span(
            "explore.run",
            kind="explore",
            workload=self.workload,
            strategy=self.strategy_name,
            budget=self.budget,
        ):
            return self._run()

    def _run(self) -> ExplorationResult:
        strategy = make_strategy(
            self.strategy_name, self.space, self.budget, self.seed,
            config=self.harness.config,
        )
        journal = self._load_journal()
        evaluations: List[Tuple[Candidate, Dict[str, Any]]] = []
        known: Dict[Candidate, Dict[str, Any]] = {}
        generation = 0
        while True:
            if self.max_generations is not None and generation >= self.max_generations:
                break
            batch = strategy.propose()
            if not batch:
                break
            journalled = journal[generation] if generation < len(journal) else None
            if journalled is not None and [e.get("params") for e in journalled] == [
                c.params() for c in batch
            ]:
                # Fast-forward: this generation already ran in a previous
                # (killed or completed) search with identical inputs.
                batch_results = {
                    self.space.candidate(entry["params"]): entry["result"]
                    for entry in journalled
                }
                self.stats["replayed"] += len(batch_results)
            else:
                if journalled is not None:
                    # The stored trajectory diverged (schema/space drift):
                    # discard the stale suffix rather than replaying it.
                    journal = journal[:generation]
                fresh = [c for c in batch if c not in known]
                if fresh:
                    with obs_tracing.span(
                        f"explore.generation:{generation}",
                        kind="explore",
                        generation=generation,
                        candidates=len(fresh),
                    ):
                        computed = self._evaluate(fresh)
                else:
                    computed = {}
                batch_results = {c: known.get(c, computed.get(c)) for c in batch}
                journal = journal[:generation] + [
                    [
                        {"params": c.params(), "result": batch_results[c]}
                        for c in batch
                    ]
                ]
                self._write_journal(journal)
            for candidate in batch:
                if candidate not in known:
                    known[candidate] = batch_results[candidate]
                    evaluations.append((candidate, batch_results[candidate]))
            strategy.observe([(c, batch_results[c]) for c in batch])
            generation += 1
        if not evaluations:
            raise ReproError(
                f"exploration of '{self.workload}' evaluated no candidates "
                f"(strategy={self.strategy_name}, budget={self.budget})"
            )
        self.stats["evaluated"] = len(evaluations)
        return ExplorationResult(
            workload=self.workload,
            strategy=self.strategy_name,
            budget=self.budget,
            seed=self.seed,
            space=self.space,
            evaluations=evaluations,
            generations=generation,
            stats=dict(self.stats),
        )
