"""Search strategies: how the next generation of candidates is chosen.

Every strategy implements the same two-call, *generation-oriented* protocol:

* :meth:`Strategy.propose` returns the next batch of candidates to
  evaluate (empty = the search is over);
* :meth:`Strategy.observe` feeds the batch's results back, in proposal
  order, before the next ``propose``.

Proposing whole generations (instead of one candidate at a time) is what
lets the driver evaluate a batch as parallel task-graph nodes — and it is
also the determinism mechanism: a generation's composition depends only on
the seed and on previously *observed* results, never on evaluation timing,
so serial, ``-j N`` and distributed runs walk exactly the same search
trajectory (see ``tests/test_explore.py``).

All randomness flows from one ``random.Random(seed)`` instance consumed in
a fixed order.  The sequential strategies (``greedy``, ``annealing``)
descend :func:`repro.explore.frontier.scalar_cost` — the Pareto frontier is
still computed over *everything* they evaluated, so dominated steps of the
walk contribute design points too.

A budget is the number of **unique** candidates evaluated; re-proposing an
already-evaluated candidate (annealing revisits happen) costs nothing, in
tokens or in compute — the driver resolves it from memory or the cache.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Type

from repro.config import CompilerConfig
from repro.errors import ReproError
from repro.explore.frontier import scalar_cost
from repro.explore.space import Candidate, SearchSpace

#: Candidates per generation for the enumerative strategies — the unit of
#: journaling granularity and of parallel fan-out.
GENERATION_SIZE = 8

#: Parallel proposals per generation for the walk strategies.
WALK_WIDTH = 4


class Strategy:
    """The pluggable search interface (see module docstring for the protocol)."""

    name = "base"

    def __init__(self, space: SearchSpace, budget: int, seed: int,
                 config: Optional[CompilerConfig] = None):
        if budget < 1:
            raise ReproError(f"exploration budget must be >= 1, got {budget}")
        self.space = space
        self.budget = budget
        self.seed = seed
        self.config = config or CompilerConfig()
        self.rng = random.Random(seed)
        self.evaluated: Dict[Candidate, Dict[str, Any]] = {}

    @property
    def remaining(self) -> int:
        return max(self.budget - len(self.evaluated), 0)

    def propose(self) -> List[Candidate]:
        """The next generation (unique within the batch; [] ends the search)."""
        raise NotImplementedError

    def observe(self, results: "List[tuple[Candidate, Dict[str, Any]]]") -> None:
        """Record one generation's results (in proposal order)."""
        for candidate, result in results:
            self.evaluated[candidate] = result

    def _cost(self, candidate: Candidate) -> float:
        return scalar_cost(self.evaluated[candidate])


class ExhaustiveStrategy(Strategy):
    """Enumerate the whole space in canonical order, budget permitting."""

    name = "exhaustive"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._order = list(self.space.candidates())

    def propose(self) -> List[Candidate]:
        pending = [c for c in self._order if c not in self.evaluated]
        return pending[: min(GENERATION_SIZE, self.remaining)]


class RandomStrategy(ExhaustiveStrategy):
    """Uniform sampling without replacement, from the seeded RNG."""

    name = "random"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.rng.shuffle(self._order)


class GreedyStrategy(Strategy):
    """Steepest-descent hill climb on the scalar cost from the baseline point.

    Each generation evaluates every unvisited neighbour of the current
    point in parallel; the walk then moves to the cheapest evaluated
    neighbour if it improves, and stops at a local optimum (or when the
    budget runs out).  Fully deterministic — ties break on the candidates'
    canonical parameter keys.
    """

    name = "greedy"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.current = self.space.initial(self.config)
        self._done = False

    def propose(self) -> List[Candidate]:
        if self._done or not self.remaining:
            return []
        batch: List[Candidate] = []
        if self.current not in self.evaluated:
            batch.append(self.current)
        for neighbour in self.space.neighbours(self.current):
            if neighbour not in self.evaluated and neighbour not in batch:
                batch.append(neighbour)
        batch = batch[: self.remaining]
        if not batch:
            self._done = True  # every neighbour known and none improved
        return batch

    def observe(self, results: "List[tuple[Candidate, Dict[str, Any]]]") -> None:
        super().observe(results)
        known = [
            c for c in self.space.neighbours(self.current) if c in self.evaluated
        ]
        if not known:
            self._done = True
            return
        best = min(known, key=lambda c: (self._cost(c), c.key()))
        if self._cost(best) < self._cost(self.current):
            self.current = best
        else:
            self._done = True


class AnnealingStrategy(Strategy):
    """Simulated annealing on the scalar cost with batched proposals.

    Each generation draws :data:`WALK_WIDTH` random single-step moves from
    the current point; after evaluation the Metropolis rule is applied to
    the proposals **sequentially in proposal order** (accept when cheaper,
    or with probability ``exp(-delta/T)``), cooling the temperature after
    each decision.  Batching trades a little chain fidelity for parallel
    evaluation while keeping the trajectory a pure function of the seed.
    """

    name = "annealing"

    #: Initial temperature and geometric cooling factor, in scalar-cost
    #: (log-objective) units: T0=0.5 accepts ~40% of moves that double the
    #: objective product early on; alpha cools to near-greedy by ~30 steps.
    INITIAL_TEMPERATURE = 0.5
    COOLING = 0.88

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.current = self.space.initial(self.config)
        self.temperature = self.INITIAL_TEMPERATURE
        self._proposals: List[Candidate] = []
        self._started = False

    def propose(self) -> List[Candidate]:
        if not self._started:
            self._started = True
            self._proposals = [self.current]
            return [self.current]
        if not self.remaining:
            return []
        batch: List[Candidate] = []
        fresh = 0
        # Bounded draw loop: tiny spaces can exhaust fresh neighbours, at
        # which point the walk ends rather than spinning on revisits.
        for _ in range(WALK_WIDTH * 8):
            if len(batch) >= WALK_WIDTH or fresh >= self.remaining:
                break
            neighbours = self.space.neighbours(self.current)
            move = self.rng.choice(neighbours)
            if move in batch:
                continue
            batch.append(move)
            if move not in self.evaluated:
                fresh += 1
        if not fresh:
            return []
        self._proposals = batch
        return batch

    def observe(self, results: "List[tuple[Candidate, Dict[str, Any]]]") -> None:
        super().observe(results)
        for candidate in self._proposals:
            if candidate == self.current:
                continue
            delta = self._cost(candidate) - self._cost(self.current)
            if delta < 0 or self.rng.random() < math.exp(-delta / max(self.temperature, 1e-9)):
                self.current = candidate
            self.temperature *= self.COOLING
        self._proposals = []


#: Strategy registry, by CLI name.
STRATEGIES: Dict[str, Type[Strategy]] = {
    cls.name: cls
    for cls in (ExhaustiveStrategy, RandomStrategy, GreedyStrategy, AnnealingStrategy)
}


def make_strategy(
    name: str,
    space: SearchSpace,
    budget: int,
    seed: int,
    config: Optional[CompilerConfig] = None,
) -> Strategy:
    """Instantiate a registered strategy by name (helpful error otherwise)."""
    cls = STRATEGIES.get(name)
    if cls is None:
        known = ", ".join(sorted(STRATEGIES))
        raise ReproError(f"unknown exploration strategy '{name}' (known: {known})")
    return cls(space, budget, seed, config=config)
