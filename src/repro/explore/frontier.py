"""Exact multi-objective Pareto sets with deterministic tie-breaking.

The exploration objectives are the three axes the thesis trades off —
FPGA **area** (Twill LUTs incl. the MicroBlaze), execution **cycles** and
estimated **power** — all minimised, read from the structured result dict
each ``explore`` task produces (``repro.hls.area`` via the system roll-up,
``repro.sim.timing`` cycles, ``repro.sim.power`` milliwatts).

:func:`pareto_indices` is exact (pairwise dominance, no approximation) and
fully deterministic:

* a point **dominates** another when it is no worse on every objective and
  strictly better on at least one (so objective-identical duplicates do not
  dominate each other);
* duplicated objective vectors are collapsed to the candidate with the
  lexicographically smallest canonical parameter key, so the frontier is a
  *set* of design points, not an artifact of evaluation order;
* the returned frontier is sorted by objective vector, then by that same
  canonical key — identical inputs give identical output bytes.

:func:`scalar_cost` is the single-number collapse (sum of log-objectives,
i.e. the log of their product) that hill-climb and annealing strategies
descend; being scale-free it weighs a 2x area increase like a 2x slowdown.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: display name, result-dict key, and sense."""

    name: str
    key: str
    sense: str = "min"  # "min" or "max"

    def value(self, result: Dict[str, Any]) -> float:
        """The objective's canonical minimise-me value for one result."""
        raw = float(result[self.key])
        return -raw if self.sense == "max" else raw


#: The standard exploration objectives, in report order (all minimised).
OBJECTIVES: Tuple[Objective, ...] = (
    Objective("area", "area_luts"),
    Objective("cycles", "cycles"),
    Objective("power", "power_mw"),
)


def objective_vector(
    result: Dict[str, Any], objectives: Sequence[Objective] = OBJECTIVES
) -> Tuple[float, ...]:
    """The minimise-me vector of one evaluated candidate's result dict."""
    return tuple(objective.value(result) for objective in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether vector *a* Pareto-dominates *b* (<= everywhere, < somewhere)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def scalar_cost(
    result: Dict[str, Any], objectives: Sequence[Objective] = OBJECTIVES
) -> float:
    """Scale-free scalar collapse of the objectives (lower is better).

    The sum of natural logs — the log of the objectives' product — so
    relative improvements count equally whatever the objective's unit, and
    no weighting constants need tuning.  Non-positive values clamp to a tiny
    epsilon rather than exploding (a zero-area candidate should win, not
    crash the search).
    """
    return sum(math.log(max(value, 1e-12)) for value in objective_vector(result, objectives))


def pareto_indices(
    results: Sequence[Dict[str, Any]],
    objectives: Sequence[Objective] = OBJECTIVES,
    tie_keys: Sequence[str] = (),
) -> List[int]:
    """Indices of the exact Pareto-optimal entries of *results*.

    *tie_keys* supplies the deterministic tie-break identity per entry (the
    candidate's canonical parameter key); when omitted, the entry's index
    string is used, which keeps order-determinism but not set-semantics —
    always pass real keys when duplicates are possible.

    Returned indices are sorted by (objective vector, tie key), and
    objective-identical duplicates keep only the smallest tie key.
    """
    keys = [tie_keys[i] if tie_keys else str(i) for i in range(len(results))]
    vectors = [objective_vector(result, objectives) for result in results]
    frontier: List[int] = []
    seen_vectors: Dict[Tuple[float, ...], int] = {}
    for index, vector in enumerate(vectors):
        if any(dominates(other, vector) for other in vectors):
            continue
        twin = seen_vectors.get(vector)
        if twin is not None:
            # Duplicate design point: keep the lexicographically smaller key.
            if keys[index] < keys[twin]:
                frontier[frontier.index(twin)] = index
                seen_vectors[vector] = index
            continue
        seen_vectors[vector] = index
        frontier.append(index)
    return sorted(frontier, key=lambda i: (vectors[i], keys[i]))


class Frontier:
    """The Pareto set over a list of evaluated candidates.

    Construction is a pure function of ``(params, result)`` pairs; the
    stored rows carry the objective values plus the originating parameters,
    already in the canonical deterministic order, so serialising a frontier
    (``to_rows``) is what ``repro explore --json`` emits byte-identically
    run after run.
    """

    def __init__(
        self,
        evaluations: Sequence[Tuple[Dict[str, Any], Dict[str, Any]]],
        objectives: Sequence[Objective] = OBJECTIVES,
    ):
        self.objectives = tuple(objectives)
        self._evaluations = list(evaluations)
        tie_keys = [
            json.dumps(params, sort_keys=True, separators=(",", ":"))
            for params, _ in self._evaluations
        ]
        self._indices = pareto_indices(
            [result for _, result in self._evaluations], self.objectives, tie_keys
        )

    def __len__(self) -> int:
        return len(self._indices)

    @property
    def indices(self) -> List[int]:
        return list(self._indices)

    def points(self) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """The frontier's ``(params, result)`` pairs in canonical order."""
        return [self._evaluations[i] for i in self._indices]

    def to_rows(self) -> List[Dict[str, Any]]:
        """One JSON-ready row per frontier point: params + objective values."""
        rows = []
        for params, result in self.points():
            row: Dict[str, Any] = {"params": dict(params)}
            for objective in self.objectives:
                row[objective.key] = result[objective.key]
            if "speedup_vs_sw" in result:
                row["speedup_vs_sw"] = result["speedup_vs_sw"]
            rows.append(row)
        return rows

    def best_by(self, objective_name: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """The frontier point minimising one named objective (ties: canonical order)."""
        for objective in self.objectives:
            if objective.name == objective_name:
                return min(
                    self.points(),
                    key=lambda pair: (objective.value(pair[1]), sorted(pair[0].items())),
                )
        raise KeyError(f"no objective named '{objective_name}'")
