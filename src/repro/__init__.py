"""Twill reproduction: hybrid MCU/FPGA parallelization of single-threaded C.

This package reproduces the system described in *Twill: A Hybrid
Microcontroller-FPGA Framework for Parallelizing Single-Threaded C Programs*
(Gallatin, 2014).  The public entry point is :class:`repro.core.TwillCompiler`
which chains the C front end, the SSA IR passes, the DSWP partitioner, the
LegUp-style HLS scheduler, and the hybrid timing simulator.

Typical use::

    from repro import TwillCompiler, CompilerConfig
    result = TwillCompiler(CompilerConfig()).compile_and_simulate(c_source)
    print(result.report())
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = [
    "TwillCompiler",
    "CompilationResult",
    "CompilerConfig",
    "RuntimeConfig",
    "PartitionConfig",
    "__version__",
]

# The heavyweight subpackages are imported lazily so that low-level pieces
# (e.g. repro.ir, repro.frontend) can be used without pulling in the whole
# compiler/simulator stack.
_LAZY_EXPORTS = {
    "TwillCompiler": ("repro.core.compiler", "TwillCompiler"),
    "CompilationResult": ("repro.core.compiler", "CompilationResult"),
    "CompilerConfig": ("repro.core.config", "CompilerConfig"),
    "RuntimeConfig": ("repro.core.config", "RuntimeConfig"),
    "PartitionConfig": ("repro.core.config", "PartitionConfig"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
