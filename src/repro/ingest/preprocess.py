"""Minimal ``#include`` preprocessing for ingested C files.

Deliberately small, matching the self-contained-translation-unit model the
rest of the pipeline assumes:

* ``#include "file.h"`` — spliced in place, resolved relative to the
  including file, with cycle detection; each splice is recorded so the
  :class:`~repro.ingest.report.IngestReport` can list it;
* ``#include <header.h>`` — dropped (system headers are not modelled);
  the line is replaced by a comment so later line numbers shift as little
  as possible, and the header name is recorded as skipped;
* ``#define NAME value`` — left in the text; the lexer expands integer
  object macros itself (see :mod:`repro.frontend.lexer`).

Diagnostics produced downstream refer to positions in the *preprocessed*
source, which equals the original file line-for-line unless quoted includes
were spliced.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import IngestError

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>\n]+>|"[^"\n]+")\s*$')


@dataclass(frozen=True)
class PreprocessResult:
    """Preprocessed source plus what the preprocessor did to produce it."""

    source: str
    #: Quoted includes spliced into the output, in splice order.
    includes: Tuple[str, ...]
    #: System headers dropped (the ``<...>`` names, without brackets).
    skipped_includes: Tuple[str, ...]


def preprocess_source(
    text: str, base_dir: str = ".", filename: str = "<string>"
) -> PreprocessResult:
    """Expand quoted includes in *text*; see the module docstring for scope."""
    out: List[str] = []
    includes: List[str] = []
    skipped: List[str] = []
    _expand(text, base_dir, filename, [], out, includes, skipped)
    return PreprocessResult(
        source="\n".join(out) + "\n",
        includes=tuple(includes),
        skipped_includes=tuple(skipped),
    )


def preprocess_file(path: str) -> PreprocessResult:
    """Read *path* and preprocess it (includes resolve relative to it)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise IngestError(f"cannot read '{path}': {exc.strerror or exc}") from exc
    return preprocess_source(text, base_dir=os.path.dirname(path) or ".", filename=path)


def _expand(
    text: str,
    directory: str,
    display: str,
    stack: List[str],
    out: List[str],
    includes: List[str],
    skipped: List[str],
) -> None:
    for line in text.splitlines():
        match = _INCLUDE_RE.match(line)
        if match is None:
            out.append(line)
            continue
        target = match.group(1)
        if target.startswith("<"):
            name = target[1:-1]
            skipped.append(name)
            out.append(f"/* #include <{name}> skipped: system headers are not modelled */")
            continue
        rel = target[1:-1]
        path = os.path.normpath(os.path.join(directory, rel))
        if path in stack:
            cycle = " -> ".join(stack + [path])
            raise IngestError(f"{display}: include cycle: {cycle}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                included = handle.read()
        except OSError as exc:
            raise IngestError(
                f"{display}: cannot open include \"{rel}\": {exc.strerror or exc}"
            ) from exc
        includes.append(rel)
        stack.append(path)
        _expand(included, os.path.dirname(path) or ".", rel, stack, out, includes, skipped)
        stack.pop()
