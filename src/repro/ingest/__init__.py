"""Ingestion of raw ``.c`` files as first-class workloads.

``repro ingest FILE.c`` turns an arbitrary C file into a registered
:class:`~repro.workloads.base.Workload` — cacheable, sweepable and
explorable exactly like the eight builtin kernels:

1. :mod:`repro.ingest.preprocess` splices quoted ``#include`` files (with
   cycle detection) and drops system headers; ``#define`` object macros are
   handled by the existing lexer;
2. the error-recovering frontend (:func:`repro.frontend.parse_with_diagnostics`)
   collects every problem as a ``file:line:col`` diagnostic instead of
   stopping at the first;
3. the unoptimised lowered module is interpreted once to capture the
   program's reference outputs — all of which lands in a structured
   :class:`~repro.ingest.report.IngestReport`, computed through an ``ingest``
   task-graph node so reports are content-addressed and cached;
4. clean programs register in the :class:`~repro.workloads.base.WorkloadRegistry`
   with the reference outputs from step 3, making the subsequent full compile
   (optimisation passes, DSWP, HLS, timing replays) a genuine differential
   check against the unoptimised interpretation.

:mod:`repro.ingest.difftest` is the correctness layer on top: for any
workload it asserts the interpreter and the timing simulator agree on the
observable output stream under the software-only, hybrid and hardware-heavy
configurations.
"""

from repro.ingest.preprocess import PreprocessResult, preprocess_file, preprocess_source
from repro.ingest.report import IngestReport
from repro.ingest.evaluate import compute_ingest_report, ingest_task
from repro.ingest.registry import default_workload_name, ingest_file, ingest_source, load_corpus
from repro.ingest.difftest import DiffTestOutcome, difftest_all, difftest_workload

__all__ = [
    "PreprocessResult",
    "preprocess_file",
    "preprocess_source",
    "IngestReport",
    "compute_ingest_report",
    "ingest_task",
    "default_workload_name",
    "ingest_file",
    "ingest_source",
    "load_corpus",
    "DiffTestOutcome",
    "difftest_all",
    "difftest_workload",
]
