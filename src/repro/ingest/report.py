"""The structured result of ingesting one C file.

An :class:`IngestReport` is the JSON-serialisable value of an ``ingest``
task-graph node: everything the frontend and the reference interpretation
learned about a file — its content digest (the workload cache identity),
every ``file:line:col`` diagnostic when the file is malformed, and the
reference output stream when it is clean.  The dict form is fully
deterministic (no timestamps, no volatile statistics), which is what lets
CI diff a cold and a warm ``repro ingest --json`` byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.frontend.diagnostics import Diagnostic


@dataclass(frozen=True)
class IngestReport:
    """Everything ingestion determined about one preprocessed C file."""

    name: str
    filename: str
    #: SHA-256 of the preprocessed source — equals the registered
    #: workload's :meth:`~repro.workloads.base.Workload.source_digest`.
    digest: str
    ok: bool
    diagnostics: Tuple[Diagnostic, ...] = ()
    includes: Tuple[str, ...] = ()
    skipped_includes: Tuple[str, ...] = ()
    functions: int = 0
    globals: int = 0
    tokens: int = 0
    #: Reference outputs from interpreting the unoptimised lowered module.
    outputs: Tuple[int, ...] = ()
    steps: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "filename": self.filename,
            "digest": self.digest,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "includes": list(self.includes),
            "skipped_includes": list(self.skipped_includes),
            "functions": self.functions,
            "globals": self.globals,
            "tokens": self.tokens,
            "outputs": list(self.outputs),
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IngestReport":
        return cls(
            name=data["name"],
            filename=data["filename"],
            digest=data["digest"],
            ok=data["ok"],
            diagnostics=tuple(Diagnostic.from_dict(d) for d in data["diagnostics"]),
            includes=tuple(data["includes"]),
            skipped_includes=tuple(data["skipped_includes"]),
            functions=data["functions"],
            globals=data["globals"],
            tokens=data["tokens"],
            outputs=tuple(data["outputs"]),
            steps=data["steps"],
        )

    def format_text(self) -> str:
        """Human-readable rendering for the plain ``repro ingest`` output."""
        lines: List[str] = [
            f"ingest {self.filename}",
            f"  workload : {self.name}",
            f"  digest   : {self.digest[:16]}…",
            f"  status   : {'ok' if self.ok else 'failed'}",
        ]
        if self.includes:
            lines.append("  includes : " + ", ".join(self.includes))
        if self.skipped_includes:
            lines.append("  skipped  : " + ", ".join(f"<{h}>" for h in self.skipped_includes))
        if self.ok:
            lines.append(
                f"  program  : {self.functions} function(s), {self.globals} global(s), "
                f"{self.tokens} tokens"
            )
            lines.append(f"  outputs  : {len(self.outputs)} value(s) in {self.steps} steps")
        for diag in self.diagnostics:
            lines.append("  " + diag.format())
        return "\n".join(lines)
