"""From an :class:`~repro.ingest.report.IngestReport` to a registered workload.

Clean reports become :class:`~repro.workloads.base.Workload` instances whose
``reference`` replays the outputs captured from the unoptimised-module
interpretation, registered under
:meth:`~repro.workloads.base.WorkloadRegistry.register_ingested` (idempotent
for identical source, a hard error for a name collision with different
source).  :func:`load_corpus` applies the same path to every ``.c`` file of
a directory — how the fuzzer-survivor corpus under ``tests/corpus/`` becomes
regression workloads for ``repro difftest all``.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple

from repro.config import CompilerConfig
from repro.errors import IngestError
from repro.eval.taskgraph import TaskGraph
from repro.ingest.evaluate import compute_ingest_report
from repro.ingest.preprocess import PreprocessResult, preprocess_file, preprocess_source
from repro.ingest.report import IngestReport
from repro.workloads.base import Workload, WorkloadRegistry


def default_workload_name(path: str) -> str:
    """Derive a registry-safe workload name from a file path's stem."""
    stem = os.path.splitext(os.path.basename(path))[0]
    name = re.sub(r"[^A-Za-z0-9_]", "_", stem) or "ingested"
    if name[0].isdigit():
        name = "c_" + name
    return name


def workload_from_report(source: str, report: IngestReport, path: str = "") -> Workload:
    """Build the Workload an ok report describes (reference = captured outputs)."""
    outputs = [int(v) for v in report.outputs]
    return Workload(
        name=report.name,
        description=f"ingested from {path or report.filename}",
        source=source,
        reference=lambda: list(outputs),
        origin="ingested",
    )


def _report_via_harness(
    harness, name: str, pre: PreprocessResult, filename: str
) -> IngestReport:
    """Compute (or cache-hit) the report through the ordinary task graph."""
    graph = TaskGraph()
    task_id = harness.declare_ingest(
        graph, name, pre.source, filename, pre.includes, pre.skipped_includes
    )
    results = harness.execute(graph)
    return IngestReport.from_dict(results[task_id])


def ingest_source(
    source: str,
    name: str,
    filename: str = "<string>",
    base_dir: str = ".",
    harness=None,
    config: Optional[CompilerConfig] = None,
    register: bool = True,
) -> Tuple[IngestReport, Optional[Workload]]:
    """Ingest C source text; returns ``(report, workload-or-None)``.

    With a *harness* the report is computed through an ``ingest`` task node
    (content-addressed and cached); without one it is computed directly.
    Clean programs are registered unless ``register=False``.
    """
    pre = preprocess_source(source, base_dir=base_dir, filename=filename)
    if harness is not None:
        report = _report_via_harness(harness, name, pre, filename)
    else:
        report = IngestReport.from_dict(
            compute_ingest_report(
                name,
                pre.source,
                filename,
                config or CompilerConfig(),
                pre.includes,
                pre.skipped_includes,
            )
        )
    workload: Optional[Workload] = None
    if report.ok and register:
        workload = WorkloadRegistry.register_ingested(
            workload_from_report(pre.source, report, filename)
        )
    return report, workload


def ingest_file(
    path: str,
    name: Optional[str] = None,
    harness=None,
    config: Optional[CompilerConfig] = None,
    register: bool = True,
) -> Tuple[IngestReport, Optional[Workload]]:
    """Ingest one ``.c`` file; returns ``(report, workload-or-None)``."""
    pre = preprocess_file(path)
    workload_name = name or default_workload_name(path)
    if harness is not None:
        report = _report_via_harness(harness, workload_name, pre, path)
    else:
        report = IngestReport.from_dict(
            compute_ingest_report(
                workload_name,
                pre.source,
                path,
                config or CompilerConfig(),
                pre.includes,
                pre.skipped_includes,
            )
        )
    workload: Optional[Workload] = None
    if report.ok and register:
        workload = WorkloadRegistry.register_ingested(
            workload_from_report(pre.source, report, path)
        )
    return report, workload


def load_corpus(
    directory: str,
    harness=None,
    config: Optional[CompilerConfig] = None,
) -> List[IngestReport]:
    """Ingest and register every ``*.c`` file of *directory* (sorted order).

    A malformed corpus file is a broken regression asset, so it raises
    :class:`~repro.errors.IngestError` (carrying the diagnostics) instead of
    being skipped silently.
    """
    if not os.path.isdir(directory):
        raise IngestError(f"corpus directory '{directory}' does not exist")
    reports: List[IngestReport] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".c"):
            continue
        path = os.path.join(directory, entry)
        report, _ = ingest_file(path, harness=harness, config=config)
        if not report.ok:
            raise IngestError(
                f"corpus file '{path}' failed to ingest",
                diagnostics=list(report.diagnostics),
            )
        reports.append(report)
    return reports
