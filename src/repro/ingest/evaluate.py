"""The ``ingest`` task payload: frontend + reference interpretation of one file.

Mirrors :mod:`repro.explore.evaluate`: the payload is a pure, picklable
module-level function of plain arguments (the *preprocessed* source text
travels with the task, so the payload never touches the filesystem), and the
node constructor wires it into :mod:`repro.eval.taskgraph` without that
module having to import this package.

The content key is :func:`repro.eval.cache.derived_key` over the file's
would-be compile key (preprocessed source + full configuration + code
digest) plus the chosen workload name — so a second ``repro ingest`` of an
unchanged file is a pure cache hit, and any edit to the file *or* to the
compiler re-keys the report.

The report's ``outputs`` come from interpreting the **unoptimised** lowered
module.  They become the registered workload's reference, which the
evaluation harness re-checks against the fully optimised pipeline's outputs
on every compile — a real frontend+interpreter vs. full-pass-pipeline
differential check, not a self-comparison.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro import perf
from repro.config import CompilerConfig
from repro.errors import FrontendError, InterpreterError, IRError
from repro.eval import taskgraph
from repro.eval.cache import compile_key, derived_key
from repro.frontend.diagnostics import Diagnostic, parse_with_diagnostics
from repro.frontend.lexer import tokenize
from repro.frontend.lowering import lower_to_ir
from repro.interp.interpreter import Interpreter


def compute_ingest_report(
    name: str,
    source: str,
    filename: str,
    config: CompilerConfig,
    includes: tuple = (),
    skipped_includes: tuple = (),
) -> Dict[str, Any]:
    """Frontend + reference interpretation of one preprocessed source.

    Returns the :class:`~repro.ingest.report.IngestReport` dict form (JSON
    task serialisation).  Never raises for problems *in the program*: lexer,
    parser, lowering, and execution failures all land in ``diagnostics``
    with ``ok=False``.
    """
    with perf.stage("ingest"):
        return _compute_ingest_report(
            name, source, filename, config, includes, skipped_includes
        )


def _compute_ingest_report(
    name: str,
    source: str,
    filename: str,
    config: CompilerConfig,
    includes: tuple,
    skipped_includes: tuple,
) -> Dict[str, Any]:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    report: Dict[str, Any] = {
        "name": name,
        "filename": filename,
        "digest": digest,
        "ok": False,
        "diagnostics": [],
        "includes": list(includes),
        "skipped_includes": list(skipped_includes),
        "functions": 0,
        "globals": 0,
        "tokens": 0,
        "outputs": [],
        "steps": 0,
    }

    unit, diagnostics = parse_with_diagnostics(source, filename)
    if diagnostics or unit is None:
        report["diagnostics"] = [d.to_dict() for d in diagnostics]
        return report

    report["tokens"] = max(0, len(tokenize(source)) - 1)  # minus EOF
    report["functions"] = sum(1 for f in unit.functions if f.body is not None)
    report["globals"] = len(unit.globals)

    try:
        module = lower_to_ir(unit, module_name=name)
    except FrontendError as exc:
        report["diagnostics"] = [Diagnostic.from_error(exc, filename).to_dict()]
        return report
    except IRError as exc:
        report["diagnostics"] = [
            Diagnostic(file=filename, line=0, col=0, message=f"lowering failed: {exc}").to_dict()
        ]
        return report

    try:
        execution = Interpreter(
            module, record_trace=False, max_steps=config.max_interpreter_steps
        ).run()
    except (InterpreterError, IRError) as exc:
        report["diagnostics"] = [
            Diagnostic(file=filename, line=0, col=0, message=f"execution failed: {exc}").to_dict()
        ]
        return report

    report["ok"] = True
    report["outputs"] = [int(v) for v in execution.outputs]
    report["steps"] = execution.steps
    return report


def ingest_task_id(name: str) -> str:
    """The deterministic task id of one file's ingest node."""
    return f"ingest:{name}"


def ingest_key(name: str, source: str, config: CompilerConfig) -> str:
    """The content address of one file's ingest report."""
    return derived_key(compile_key(source, config), "ingest", {"name": name})


def ingest_task(
    name: str,
    source: str,
    filename: str,
    config: CompilerConfig,
    includes: tuple = (),
    skipped_includes: tuple = (),
) -> "taskgraph.Task":
    """One ingest-report node (no dependencies; the source travels inline)."""
    return taskgraph.Task(
        task_id=ingest_task_id(name),
        kind=taskgraph.KIND_INGEST,
        fn=compute_ingest_report,
        args=(name, source, filename, config, tuple(includes), tuple(skipped_includes)),
        deps=(),
        key=ingest_key(name, source, config),
        serializer="json",
        workload=name,
    )
