"""Differential testing: interpreter vs. timing-simulator output agreement.

The timing simulator replays the interpreter's dynamic trace, so the two
engines share a functional execution — but the replay re-orders work across
threads, applies queue back-pressure, and may force-process events on a
cyclic wait.  A divergence in the *observable output stream* (the values the
program printed, in completion order — ``TimingResult.replay_outputs``)
therefore means the replay dropped, duplicated or mis-ordered events, which
is exactly the class of bug differential testing exists to catch.

For every workload, :func:`difftest_workload` checks under the three
standard hardware configurations (software-only MicroBlaze, hardware-heavy
LegUp, and the Twill hybrid):

* the replayed output stream equals the interpreter's outputs;
* the interpreter's outputs equal the workload reference (for ingested
  workloads this compares the optimised pipeline against the unoptimised
  interpretation captured at ingest time);
* replay completeness: every trace event was timed, exactly once, and the
  defensive force-execution fallback never fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: (human label, SystemResult attribute) for the three standard configs.
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("software_only", "pure_software"),
    ("hybrid", "twill"),
    ("hardware_heavy", "pure_hardware"),
)


@dataclass
class DiffTestOutcome:
    """Result of differentially testing one workload."""

    workload: str
    origin: str
    ok: bool
    events: int
    outputs: int
    #: Per-config pass/fail, keyed by the CONFIGS labels.
    configs: Dict[str, bool] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "origin": self.origin,
            "ok": self.ok,
            "events": self.events,
            "outputs": self.outputs,
            "configs": dict(self.configs),
            "failures": list(self.failures),
        }


def difftest_workload(harness, name: str) -> DiffTestOutcome:
    """Differentially test one workload through *harness* (cached compile)."""
    run = harness.run(name)
    interp_outputs = [int(v) for v in run.result.execution.outputs]
    expected = run.workload.expected_outputs()
    trace = run.result.execution.trace
    trace_events = len(trace.events) if trace is not None else 0

    failures: List[str] = []
    if interp_outputs != expected:
        failures.append(
            f"interpreter outputs diverge from the reference "
            f"({len(interp_outputs)} vs {len(expected)} values)"
        )

    configs: Dict[str, bool] = {}
    for label, attr in CONFIGS:
        timing = getattr(run.result.system, attr).timing
        config_failures: List[str] = []
        replayed = [int(v) for v in timing.replay_outputs]
        if replayed != interp_outputs:
            config_failures.append(
                f"{label}: replayed output stream diverges from the interpreter "
                f"(replay {replayed[:4]}…, interp {interp_outputs[:4]}…)"
            )
        if timing.events != trace_events:
            config_failures.append(
                f"{label}: replay timed {timing.events} events, trace has {trace_events}"
            )
        executed = sum(t.events_executed for t in timing.threads.values())
        if executed != timing.events:
            config_failures.append(
                f"{label}: thread timelines executed {executed} events, expected {timing.events}"
            )
        if timing.forced_events != 0:
            config_failures.append(
                f"{label}: {timing.forced_events} event(s) needed force-execution"
            )
        configs[label] = not config_failures
        failures.extend(config_failures)

    return DiffTestOutcome(
        workload=name,
        origin=run.workload.origin,
        ok=not failures,
        events=trace_events,
        outputs=len(interp_outputs),
        configs=configs,
        failures=failures,
    )


def difftest_all(harness, names: Optional[Sequence[str]] = None) -> List[DiffTestOutcome]:
    """Differentially test several workloads (default: the harness's set)."""
    return [difftest_workload(harness, name) for name in (names or harness.benchmark_names)]
