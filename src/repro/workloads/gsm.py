"""GSM — LPC autocorrelation and reflection coefficients (the CHStone ``gsm`` kernel).

The CHStone GSM benchmark runs the LPC analysis stage of the GSM 06.10
full-rate codec.  This kernel reproduces its computational core: windowed
autocorrelation of an 80-sample frame followed by a fixed-point Schur-like
recursion producing eight reflection coefficients.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, WorkloadRegistry

_FRAME = 80
_LAGS = 9


def _input_frame() -> List[int]:
    samples = []
    for i in range(_FRAME):
        tri = ((i * 3) % 17) * 40 - 300
        tone = ((i * i * 7) % 23) * 11 - 120
        samples.append(tri + tone)
    return samples


_SAMPLES = _input_frame()
_SAMPLES_INIT = "{" + ", ".join(str(v) for v in _SAMPLES) + "}"

SOURCE = f"""
/* GSM LPC analysis: autocorrelation + reflection coefficients (CHStone `gsm` analogue). */
#define FRAME {_FRAME}
#define LAGS {_LAGS}

int frame[FRAME] = {_SAMPLES_INIT};
int acf[LAGS];
int refl[LAGS - 1];

void autocorrelation(void) {{
  int k;
  int i;
  for (k = 0; k < LAGS; k++) {{
    int sum = 0;
    for (i = k; i < FRAME; i++) {{
      sum = sum + (frame[i] >> 3) * (frame[i - k] >> 3);
    }}
    acf[k] = sum;
  }}
}}

void reflection_coefficients(void) {{
  int p[LAGS];
  int k[LAGS];
  int i;
  int n;
  for (i = 0; i < LAGS; i++) {{ p[i] = acf[i]; k[i] = 0; }}
  if (acf[0] == 0) {{
    for (i = 0; i < LAGS - 1; i++) {{ refl[i] = 0; }}
    return;
  }}
  for (n = 1; n < LAGS; n++) {{
    int denom = p[0];
    int r;
    if (denom == 0) {{ denom = 1; }}
    r = -(p[n] * 256) / denom;
    if (r > 255) {{ r = 255; }}
    if (r < -255) {{ r = -255; }}
    refl[n - 1] = r;
    for (i = 0; i < LAGS - n; i++) {{
      p[i] = p[i] + (r * p[i + n]) / 256;
    }}
  }}
}}

int main(void) {{
  int i;
  int checksum = 0;
  autocorrelation();
  reflection_coefficients();
  for (i = 0; i < LAGS; i++) {{ print_int(acf[i]); checksum = checksum + acf[i]; }}
  for (i = 0; i < LAGS - 1; i++) {{ print_int(refl[i]); checksum = checksum + refl[i]; }}
  print_int(checksum);
  return checksum & 1048575;
}}
"""


def reference() -> List[int]:
    acf = []
    for k in range(_LAGS):
        total = 0
        for i in range(k, _FRAME):
            total += (_SAMPLES[i] >> 3) * (_SAMPLES[i - k] >> 3)
        acf.append(total)

    refl = [0] * (_LAGS - 1)
    p = list(acf)
    if acf[0] != 0:
        for n in range(1, _LAGS):
            denom = p[0] if p[0] != 0 else 1
            # C division truncates toward zero.
            num = -(p[n] * 256)
            r = int(num / denom) if denom != 0 else 0
            r = max(-255, min(255, r))
            refl[n - 1] = r
            for i in range(_LAGS - n):
                p[i] = p[i] + int((r * p[i + n]) / 256)

    outputs = list(acf) + list(refl)
    checksum = sum(outputs)
    outputs.append(checksum)
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="gsm",
        description="GSM LPC autocorrelation and reflection coefficients",
        source=SOURCE,
        reference=reference,
        chstone_name="GSM",
        paper_queues=65,
        paper_semaphores=0,
        paper_hw_threads=3,
    )
)
