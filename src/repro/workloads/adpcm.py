"""ADPCM — IMA ADPCM encode/decode round trip (the CHStone ``adpcm`` kernel).

Compresses a synthetic waveform to 4-bit codes and decompresses it again,
using the standard IMA step-size and index-adjust tables; the outputs are
the decoded samples plus an accumulated error metric.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Workload, WorkloadRegistry

_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230,
    253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963,
]
_NUM_SAMPLES = 48


def _input_samples() -> List[int]:
    # A deterministic pseudo-waveform (triangle + pseudo-noise), 16-bit range.
    samples = []
    value = 0
    for i in range(_NUM_SAMPLES):
        tri = (i % 16) * 512 - 4096
        noise = ((i * 7919 + 131) % 257) - 128
        value = tri * 2 + noise * 4
        samples.append(value)
    return samples


_SAMPLES = _input_samples()

_IDX_INIT = "{" + ", ".join(str(v) for v in _INDEX_TABLE) + "}"
_STEP_INIT = "{" + ", ".join(str(v) for v in _STEP_TABLE) + "}"
_SAMPLES_INIT = "{" + ", ".join(str(v) for v in _SAMPLES) + "}"

SOURCE = f"""
/* IMA ADPCM encode/decode round trip (CHStone `adpcm` analogue). */
#define NUM_SAMPLES {_NUM_SAMPLES}
#define STEP_MAX {len(_STEP_TABLE) - 1}

int index_table[16] = {_IDX_INIT};
int step_table[{len(_STEP_TABLE)}] = {_STEP_INIT};
int samples[NUM_SAMPLES] = {_SAMPLES_INIT};
int codes[NUM_SAMPLES];
int decoded[NUM_SAMPLES];

int clamp(int v, int lo, int hi) {{
  if (v < lo) {{ return lo; }}
  if (v > hi) {{ return hi; }}
  return v;
}}

int encode(void) {{
  int predicted = 0;
  int index = 0;
  int i;
  for (i = 0; i < NUM_SAMPLES; i++) {{
    int step = step_table[index];
    int diff = samples[i] - predicted;
    int code = 0;
    if (diff < 0) {{ code = 8; diff = -diff; }}
    if (diff >= step) {{ code = code | 4; diff = diff - step; }}
    if (diff >= (step >> 1)) {{ code = code | 2; diff = diff - (step >> 1); }}
    if (diff >= (step >> 2)) {{ code = code | 1; }}
    codes[i] = code;
    /* reconstruct like the decoder so predictor stays in sync */
    {{
      int delta = step >> 3;
      if (code & 1) {{ delta = delta + (step >> 2); }}
      if (code & 2) {{ delta = delta + (step >> 1); }}
      if (code & 4) {{ delta = delta + step; }}
      if (code & 8) {{ predicted = predicted - delta; }}
      else {{ predicted = predicted + delta; }}
    }}
    predicted = clamp(predicted, -32768, 32767);
    index = clamp(index + index_table[code], 0, STEP_MAX);
  }}
  return index;
}}

int decode(void) {{
  int predicted = 0;
  int index = 0;
  int i;
  for (i = 0; i < NUM_SAMPLES; i++) {{
    int step = step_table[index];
    int code = codes[i];
    int delta = step >> 3;
    if (code & 1) {{ delta = delta + (step >> 2); }}
    if (code & 2) {{ delta = delta + (step >> 1); }}
    if (code & 4) {{ delta = delta + step; }}
    if (code & 8) {{ predicted = predicted - delta; }}
    else {{ predicted = predicted + delta; }}
    predicted = clamp(predicted, -32768, 32767);
    index = clamp(index + index_table[code], 0, STEP_MAX);
    decoded[i] = predicted;
  }}
  return index;
}}

int main(void) {{
  int i;
  int error = 0;
  encode();
  decode();
  for (i = 0; i < NUM_SAMPLES; i++) {{
    int diff = samples[i] - decoded[i];
    if (diff < 0) {{ diff = -diff; }}
    error = error + diff;
    print_int(decoded[i]);
  }}
  print_int(error);
  return error;
}}
"""


def _ima_round_trip() -> Tuple[List[int], List[int]]:
    def clamp(v: int, lo: int, hi: int) -> int:
        return lo if v < lo else hi if v > hi else v

    codes: List[int] = []
    predicted, index = 0, 0
    step_max = len(_STEP_TABLE) - 1
    for sample in _SAMPLES:
        step = _STEP_TABLE[index]
        diff = sample - predicted
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        if diff >= step:
            code |= 4
            diff -= step
        if diff >= step >> 1:
            code |= 2
            diff -= step >> 1
        if diff >= step >> 2:
            code |= 1
        codes.append(code)
        delta = step >> 3
        if code & 1:
            delta += step >> 2
        if code & 2:
            delta += step >> 1
        if code & 4:
            delta += step
        predicted = predicted - delta if code & 8 else predicted + delta
        predicted = clamp(predicted, -32768, 32767)
        index = clamp(index + _INDEX_TABLE[code], 0, step_max)

    decoded: List[int] = []
    predicted, index = 0, 0
    for code in codes:
        step = _STEP_TABLE[index]
        delta = step >> 3
        if code & 1:
            delta += step >> 2
        if code & 2:
            delta += step >> 1
        if code & 4:
            delta += step
        predicted = predicted - delta if code & 8 else predicted + delta
        predicted = clamp(predicted, -32768, 32767)
        index = clamp(index + _INDEX_TABLE[code], 0, step_max)
        decoded.append(predicted)
    return codes, decoded


def reference() -> List[int]:
    _, decoded = _ima_round_trip()
    error = sum(abs(s - d) for s, d in zip(_SAMPLES, decoded))
    return decoded + [error]


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="adpcm",
        description="IMA ADPCM encode/decode round trip",
        source=SOURCE,
        reference=reference,
        chstone_name="ADPCM",
        paper_queues=328,
        paper_semaphores=0,
        paper_hw_threads=5,
    )
)
