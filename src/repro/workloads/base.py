"""Workload registry: C source + Python reference for each benchmark."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import UnknownWorkloadError


def wrap32(value: int) -> int:
    """Wrap a Python int to a signed 32-bit value (C semantics on this target)."""
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


@dataclass
class Workload:
    """One benchmark: its C source and the reference model of its outputs."""

    name: str
    description: str
    source: str
    reference: Callable[[], List[int]]
    # CHStone counterpart (for the EXPERIMENTS.md mapping).
    chstone_name: str = ""
    # Paper-reported values for Table 6.1, used in EXPERIMENTS.md comparisons.
    paper_queues: Optional[int] = None
    paper_semaphores: Optional[int] = None
    paper_hw_threads: Optional[int] = None

    def expected_outputs(self) -> List[int]:
        return [wrap32(v) for v in self.reference()]

    def source_digest(self) -> str:
        """SHA-256 of the C source, the workload's input to its compile task.

        ``repro graph`` annotates each compile node with a prefix of this
        digest (full digest under ``--json``), so two graphs over edited
        sources are visibly different even before any key is computed."""
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()


class WorkloadRegistry:
    """Global name -> workload map populated by each kernel module at import time."""

    _registry: Dict[str, Workload] = {}

    @classmethod
    def register(cls, workload: Workload) -> Workload:
        cls._registry[workload.name] = workload
        return workload

    @classmethod
    def get(cls, name: str) -> Workload:
        try:
            return cls._registry[name]
        except KeyError:
            known = ", ".join(sorted(cls._registry)) or "<none registered>"
            raise UnknownWorkloadError(f"unknown workload '{name}' (known: {known})") from None

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._registry)

    @classmethod
    def all(cls) -> List[Workload]:
        return [cls._registry[name] for name in cls.names()]


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name (importing ``repro.workloads`` first)."""
    return WorkloadRegistry.get(name)


def all_workloads() -> List[Workload]:
    """All registered workloads in name order."""
    return WorkloadRegistry.all()
