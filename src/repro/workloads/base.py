"""Workload registry: C source + Python reference for each benchmark."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError, UnknownWorkloadError


def wrap32(value: int) -> int:
    """Wrap a Python int to a signed 32-bit value (C semantics on this target)."""
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


@dataclass
class Workload:
    """One benchmark: its C source and the reference model of its outputs."""

    name: str
    description: str
    source: str
    reference: Callable[[], List[int]]
    # CHStone counterpart (for the EXPERIMENTS.md mapping).
    chstone_name: str = ""
    # Paper-reported values for Table 6.1, used in EXPERIMENTS.md comparisons.
    paper_queues: Optional[int] = None
    paper_semaphores: Optional[int] = None
    paper_hw_threads: Optional[int] = None
    # "builtin" for the hand-ported kernels, "ingested" for workloads
    # registered from raw .c files by repro.ingest.
    origin: str = "builtin"

    def expected_outputs(self) -> List[int]:
        return [wrap32(v) for v in self.reference()]

    def source_digest(self) -> str:
        """SHA-256 of the C source, the workload's input to its compile task.

        ``repro graph`` annotates each compile node with a prefix of this
        digest (full digest under ``--json``), so two graphs over edited
        sources are visibly different even before any key is computed."""
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()


class WorkloadRegistry:
    """Global name -> workload map populated by each kernel module at import time."""

    _registry: Dict[str, Workload] = {}

    @classmethod
    def register(cls, workload: Workload) -> Workload:
        cls._registry[workload.name] = workload
        return workload

    @classmethod
    def register_ingested(cls, workload: Workload) -> Workload:
        """Register a workload produced by ``repro.ingest``.

        Re-registering the same name is allowed only when the source digest is
        unchanged (the ingest round trip is idempotent); a different digest
        under an existing name is a real conflict the caller must resolve
        (``repro ingest --name`` picks a fresh one)."""
        existing = cls._registry.get(workload.name)
        if existing is not None:
            if existing.source_digest() == workload.source_digest():
                return existing
            kind = "builtin workload" if existing.origin == "builtin" else "ingested workload"
            raise ReproError(
                f"workload name '{workload.name}' already names a {kind} with "
                f"different source; pass --name to register under another name"
            )
        workload.origin = "ingested"
        return cls.register(workload)

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove a workload (tests and ingest error paths only)."""
        cls._registry.pop(name, None)

    @classmethod
    def get(cls, name: str) -> Workload:
        try:
            return cls._registry[name]
        except KeyError:
            known = ", ".join(sorted(cls._registry)) or "<none registered>"
            raise UnknownWorkloadError(f"unknown workload '{name}' (known: {known})") from None

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._registry)

    @classmethod
    def all(cls) -> List[Workload]:
        return [cls._registry[name] for name in cls.names()]


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name (importing ``repro.workloads`` first)."""
    return WorkloadRegistry.get(name)


def all_workloads() -> List[Workload]:
    """All registered workloads in name order."""
    return WorkloadRegistry.all()
