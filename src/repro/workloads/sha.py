"""SHA — SHA-1 digest over a two-block message (the CHStone ``sha`` kernel).

The full 80-round SHA-1 compression function with the standard round
constants and rotations, run over two 512-bit blocks of a deterministic
message.  Outputs are the five digest words plus a checksum.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, WorkloadRegistry

_NUM_BLOCKS = 2
_MESSAGE_WORDS = [((i * 2654435761) ^ (i << 7) ^ 0x5A5A5A5A) & 0xFFFFFFFF for i in range(16 * _NUM_BLOCKS)]


def _fmt(values: List[int]) -> str:
    return "{" + ", ".join(str(v) for v in values) + "}"


SOURCE = f"""
/* SHA-1 over two 512-bit blocks (CHStone `sha` analogue). */
#define NUM_BLOCKS {_NUM_BLOCKS}

unsigned int message[NUM_BLOCKS * 16] = {_fmt(_MESSAGE_WORDS)};
unsigned int digest[5];
unsigned int w[80];

unsigned int rotl(unsigned int x, int n) {{
  return ((x << n) | (x >> (32 - n)));
}}

void sha1_block(int block) {{
  unsigned int a = digest[0];
  unsigned int b = digest[1];
  unsigned int c = digest[2];
  unsigned int d = digest[3];
  unsigned int e = digest[4];
  int t;
  for (t = 0; t < 16; t++) {{ w[t] = message[block * 16 + t]; }}
  for (t = 16; t < 80; t++) {{
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }}
  for (t = 0; t < 80; t++) {{
    unsigned int f;
    unsigned int k;
    unsigned int temp;
    if (t < 20) {{ f = (b & c) | ((~b) & d); k = 1518500249; }}
    else if (t < 40) {{ f = b ^ c ^ d; k = 1859775393; }}
    else if (t < 60) {{ f = (b & c) | (b & d) | (c & d); k = 2400959708u; }}
    else {{ f = b ^ c ^ d; k = 3395469782u; }}
    temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }}
  digest[0] = digest[0] + a;
  digest[1] = digest[1] + b;
  digest[2] = digest[2] + c;
  digest[3] = digest[3] + d;
  digest[4] = digest[4] + e;
}}

int main(void) {{
  int block;
  int i;
  unsigned int checksum = 0;
  digest[0] = 1732584193u;
  digest[1] = 4023233417u;
  digest[2] = 2562383102u;
  digest[3] = 271733878u;
  digest[4] = 3285377520u;
  for (block = 0; block < NUM_BLOCKS; block++) {{
    sha1_block(block);
  }}
  for (i = 0; i < 5; i++) {{
    print_int(digest[i]);
    checksum = checksum ^ digest[i];
  }}
  print_int(checksum);
  return checksum & 65535;
}}
"""


def reference() -> List[int]:
    mask = 0xFFFFFFFF

    def rotl(x: int, n: int) -> int:
        return ((x << n) | (x >> (32 - n))) & mask

    digest = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    for block in range(_NUM_BLOCKS):
        w = list(_MESSAGE_WORDS[block * 16 : block * 16 + 16])
        for t in range(16, 80):
            w.append(rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = digest
        for t in range(80):
            if t < 20:
                f, k = (b & c) | ((~b & mask) & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            temp = (rotl(a, 5) + f + e + k + w[t]) & mask
            e, d, c, b, a = d, c, rotl(b, 30), a, temp
        digest = [(x + y) & mask for x, y in zip(digest, [a, b, c, d, e])]
    checksum = 0
    outputs: List[int] = []
    for value in digest:
        outputs.append(value)
        checksum ^= value
    outputs.append(checksum)
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="sha",
        description="SHA-1 digest over a two-block message",
        source=SOURCE,
        reference=reference,
        chstone_name="SHA",
        paper_queues=82,
        paper_semaphores=0,
        paper_hw_threads=1,
    )
)
