"""AES — byte-oriented AES-128 encryption rounds (the CHStone ``aes`` kernel).

Encrypts two 16-byte blocks with the real AES S-box, ShiftRows, a
GF(2^8) MixColumns and AddRoundKey over a fixed expanded-key schedule
(key expansion itself is done with the same S-box).  Reduced to four rounds
so the dynamic trace stays small; the transformation structure (table
lookups feeding xor trees inside nested loops) matches the original.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, WorkloadRegistry


def _build_sbox() -> List[int]:
    """Standard AES S-box, computed (multiplicative inverse + affine map)."""

    def gmul(a: int, b: int) -> int:
        p = 0
        for _ in range(8):
            if b & 1:
                p ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return p

    # Build inverses by brute force (field is tiny).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gmul(x, y) == 1:
                inv[x] = y
                break
    sbox = []
    for x in range(256):
        b = inv[x]
        s = b
        for _ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        sbox.append(s ^ 0x63)
    return sbox


_SBOX = _build_sbox()
_ROUNDS = 4
_NUM_BLOCKS = 2
_KEY = [0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C]
_PLAINTEXT = [(i * 17 + b * 31 + 3) % 256 for b in range(_NUM_BLOCKS) for i in range(16)]

_SBOX_INIT = "{" + ", ".join(str(v) for v in _SBOX) + "}"
_KEY_INIT = "{" + ", ".join(str(v) for v in _KEY) + "}"
_PT_INIT = "{" + ", ".join(str(v) for v in _PLAINTEXT) + "}"

SOURCE = f"""
/* AES-128 rounds over two blocks (CHStone `aes` analogue, 4 rounds). */
#define ROUNDS {_ROUNDS}
#define NUM_BLOCKS {_NUM_BLOCKS}

int sbox[256] = {_SBOX_INIT};
int key[16] = {_KEY_INIT};
int input[NUM_BLOCKS * 16] = {_PT_INIT};
int state[16];
int round_key[16];
int output[NUM_BLOCKS * 16];

int xtime(int a) {{
  int r = (a << 1) & 255;
  if (a & 128) {{ r = r ^ 27; }}
  return r;
}}

void next_round_key(int round) {{
  int temp0 = round_key[13];
  int temp1 = round_key[14];
  int temp2 = round_key[15];
  int temp3 = round_key[12];
  int rcon = 1;
  int i;
  for (i = 0; i < round; i++) {{ rcon = xtime(rcon); }}
  round_key[0] = round_key[0] ^ sbox[temp0] ^ rcon;
  round_key[1] = round_key[1] ^ sbox[temp1];
  round_key[2] = round_key[2] ^ sbox[temp2];
  round_key[3] = round_key[3] ^ sbox[temp3];
  for (i = 4; i < 16; i++) {{
    round_key[i] = round_key[i] ^ round_key[i - 4];
  }}
}}

void sub_and_shift(void) {{
  int tmp[16];
  int row;
  int col;
  for (row = 0; row < 4; row++) {{
    for (col = 0; col < 4; col++) {{
      tmp[row + 4 * col] = sbox[state[row + 4 * ((col + row) % 4)]];
    }}
  }}
  for (row = 0; row < 16; row++) {{ state[row] = tmp[row]; }}
}}

void mix_columns(void) {{
  int col;
  for (col = 0; col < 4; col++) {{
    int a0 = state[4 * col];
    int a1 = state[4 * col + 1];
    int a2 = state[4 * col + 2];
    int a3 = state[4 * col + 3];
    state[4 * col]     = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
    state[4 * col + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
    state[4 * col + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
    state[4 * col + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
  }}
}}

void add_round_key(void) {{
  int i;
  for (i = 0; i < 16; i++) {{ state[i] = (state[i] ^ round_key[i]) & 255; }}
}}

int main(void) {{
  int block;
  int i;
  int round;
  int checksum = 0;
  for (block = 0; block < NUM_BLOCKS; block++) {{
    for (i = 0; i < 16; i++) {{ state[i] = input[block * 16 + i]; }}
    for (i = 0; i < 16; i++) {{ round_key[i] = key[i]; }}
    add_round_key();
    for (round = 0; round < ROUNDS; round++) {{
      sub_and_shift();
      if (round < ROUNDS - 1) {{ mix_columns(); }}
      next_round_key(round);
      add_round_key();
    }}
    for (i = 0; i < 16; i++) {{
      output[block * 16 + i] = state[i];
      checksum = (checksum * 31 + state[i]) & 16777215;
      print_int(state[i]);
    }}
  }}
  print_int(checksum);
  return checksum;
}}
"""


def reference() -> List[int]:
    def xtime(a: int) -> int:
        r = (a << 1) & 255
        if a & 128:
            r ^= 27
        return r

    outputs: List[int] = []
    checksum = 0
    for block in range(_NUM_BLOCKS):
        state = [_PLAINTEXT[block * 16 + i] for i in range(16)]
        round_key = list(_KEY)
        state = [(s ^ k) & 255 for s, k in zip(state, round_key)]
        for rnd in range(_ROUNDS):
            tmp = [0] * 16
            for row in range(4):
                for col in range(4):
                    tmp[row + 4 * col] = _SBOX[state[row + 4 * ((col + row) % 4)]]
            state = tmp
            if rnd < _ROUNDS - 1:
                for col in range(4):
                    a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
                    state[4 * col] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
                    state[4 * col + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
                    state[4 * col + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
                    state[4 * col + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
            # next round key
            t = [round_key[13], round_key[14], round_key[15], round_key[12]]
            rcon = 1
            for _ in range(rnd):
                rcon = xtime(rcon)
            round_key[0] ^= _SBOX[t[0]] ^ rcon
            round_key[1] ^= _SBOX[t[1]]
            round_key[2] ^= _SBOX[t[2]]
            round_key[3] ^= _SBOX[t[3]]
            for i in range(4, 16):
                round_key[i] ^= round_key[i - 4]
            state = [(s ^ k) & 255 for s, k in zip(state, round_key)]
        for value in state:
            outputs.append(value)
            checksum = (checksum * 31 + value) & 16777215
    outputs.append(checksum)
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="aes",
        description="AES-128 encryption rounds over two blocks",
        source=SOURCE,
        reference=reference,
        chstone_name="AES",
        paper_queues=100,
        paper_semaphores=0,
        paper_hw_threads=3,
    )
)
