"""MPEG-2 — full-search motion estimation (the CHStone ``motion``/MPEG-2 kernel).

The CHStone MPEG-2 benchmark decodes motion vectors; the compute-heavy
analogue on the encoder side is block motion estimation, which has the same
nested-loop absolute-difference structure.  This kernel does a full search
of a 12x12 window for one 8x8 macroblock over a synthetic frame pair and
reports the best motion vector and SAD surface samples.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Workload, WorkloadRegistry

_FRAME_W = 24
_FRAME_H = 24
_BLOCK = 8
_SEARCH = 3          # +/- search range
_BLOCK_X = 8
_BLOCK_Y = 8


def _frames() -> Tuple[List[int], List[int]]:
    reference_frame = [((x * 7 + y * 13) % 97 + ((x * y) % 11)) % 256 for y in range(_FRAME_H) for x in range(_FRAME_W)]
    # The current frame is the reference shifted by (+2, +1) with mild noise.
    current = [0] * (_FRAME_W * _FRAME_H)
    for y in range(_FRAME_H):
        for x in range(_FRAME_W):
            sx = min(_FRAME_W - 1, max(0, x - 2))
            sy = min(_FRAME_H - 1, max(0, y - 1))
            noise = (x * 31 + y * 17) % 5
            current[y * _FRAME_W + x] = (reference_frame[sy * _FRAME_W + sx] + noise) % 256
    return reference_frame, current


_REF, _CUR = _frames()


def _fmt(values: List[int]) -> str:
    return "{" + ", ".join(str(v) for v in values) + "}"


SOURCE = f"""
/* Full-search motion estimation over a 12x12 window (CHStone MPEG-2 analogue). */
#define FRAME_W {_FRAME_W}
#define FRAME_H {_FRAME_H}
#define BLOCK {_BLOCK}
#define SEARCH {_SEARCH}
#define BLOCK_X {_BLOCK_X}
#define BLOCK_Y {_BLOCK_Y}

int ref_frame[FRAME_W * FRAME_H] = {_fmt(_REF)};
int cur_frame[FRAME_W * FRAME_H] = {_fmt(_CUR)};
int sad_surface[(2 * SEARCH + 1) * (2 * SEARCH + 1)];

int block_sad(int dx, int dy) {{
  int sad = 0;
  int y;
  int x;
  for (y = 0; y < BLOCK; y++) {{
    for (x = 0; x < BLOCK; x++) {{
      int cur = cur_frame[(BLOCK_Y + y) * FRAME_W + BLOCK_X + x];
      int refp = ref_frame[(BLOCK_Y + y + dy) * FRAME_W + BLOCK_X + x + dx];
      int diff = cur - refp;
      if (diff < 0) {{ diff = -diff; }}
      sad = sad + diff;
    }}
  }}
  return sad;
}}

int main(void) {{
  int dy;
  int dx;
  int best_sad = 1000000;
  int best_dx = 0;
  int best_dy = 0;
  int index = 0;
  for (dy = -SEARCH; dy <= SEARCH; dy++) {{
    for (dx = -SEARCH; dx <= SEARCH; dx++) {{
      int sad = block_sad(dx, dy);
      sad_surface[index] = sad;
      index = index + 1;
      if (sad < best_sad) {{
        best_sad = sad;
        best_dx = dx;
        best_dy = dy;
      }}
    }}
  }}
  print_int(best_dx);
  print_int(best_dy);
  print_int(best_sad);
  for (index = 0; index < (2 * SEARCH + 1) * (2 * SEARCH + 1); index = index + 9) {{
    print_int(sad_surface[index]);
  }}
  return best_sad;
}}
"""


def reference() -> List[int]:
    def block_sad(dx: int, dy: int) -> int:
        sad = 0
        for y in range(_BLOCK):
            for x in range(_BLOCK):
                cur = _CUR[(_BLOCK_Y + y) * _FRAME_W + _BLOCK_X + x]
                refp = _REF[(_BLOCK_Y + y + dy) * _FRAME_W + _BLOCK_X + x + dx]
                sad += abs(cur - refp)
        return sad

    surface: List[int] = []
    best_sad, best_dx, best_dy = 1000000, 0, 0
    for dy in range(-_SEARCH, _SEARCH + 1):
        for dx in range(-_SEARCH, _SEARCH + 1):
            sad = block_sad(dx, dy)
            surface.append(sad)
            if sad < best_sad:
                best_sad, best_dx, best_dy = sad, dx, dy
    outputs = [best_dx, best_dy, best_sad]
    outputs.extend(surface[0 : len(surface) : 9])
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="mpeg2",
        description="Full-search block motion estimation",
        source=SOURCE,
        reference=reference,
        chstone_name="MPEG-2",
        paper_queues=47,
        paper_semaphores=0,
        paper_hw_threads=4,
    )
)
