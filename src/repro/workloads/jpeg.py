"""JPEG — 2-D DCT, quantisation and zig-zag scan (the CHStone ``jpeg`` kernel).

The CHStone JPEG benchmark decodes a small JPEG image; its computational
heart is the block transform pipeline.  This kernel runs the forward
pipeline on two 8x8 blocks: an integer 2-D DCT using a x1024 fixed-point
cosine table, quantisation with the standard luminance table, and the
zig-zag reordering — the same loop/table structure at reduced size.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, WorkloadRegistry

_N = 8
_NUM_BLOCKS = 2

_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

_ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def _cos_table() -> List[int]:
    import math

    table = []
    for u in range(_N):
        for x in range(_N):
            c = math.cos((2 * x + 1) * u * math.pi / 16.0)
            scale = math.sqrt(1.0 / _N) if u == 0 else math.sqrt(2.0 / _N)
            table.append(int(round(c * scale * 1024)))
    return table


_COS = _cos_table()
_PIXELS = [((x * 13 + y * 7 + b * 29) % 200 + 20) for b in range(_NUM_BLOCKS) for y in range(_N) for x in range(_N)]


def _fmt(values: List[int]) -> str:
    return "{" + ", ".join(str(v) for v in values) + "}"


SOURCE = f"""
/* JPEG forward block pipeline: 2-D DCT + quantisation + zig-zag (CHStone `jpeg` analogue). */
#define N {_N}
#define NUM_BLOCKS {_NUM_BLOCKS}

int cos_table[N * N] = {_fmt(_COS)};
int quant[N * N] = {_fmt(_QUANT)};
int zigzag[N * N] = {_fmt(_ZIGZAG)};
int pixels[NUM_BLOCKS * N * N] = {_fmt(_PIXELS)};
int block[N * N];
int temp[N * N];
int coeffs[N * N];
int scanned[NUM_BLOCKS * N * N];

void dct_rows(void) {{
  int u;
  int y;
  int x;
  for (y = 0; y < N; y++) {{
    for (u = 0; u < N; u++) {{
      int sum = 0;
      for (x = 0; x < N; x++) {{
        sum = sum + cos_table[u * N + x] * block[y * N + x];
      }}
      temp[y * N + u] = sum / 1024;
    }}
  }}
}}

void dct_cols(void) {{
  int u;
  int v;
  int y;
  for (u = 0; u < N; u++) {{
    for (v = 0; v < N; v++) {{
      int sum = 0;
      for (y = 0; y < N; y++) {{
        sum = sum + cos_table[v * N + y] * temp[y * N + u];
      }}
      coeffs[v * N + u] = sum / 1024;
    }}
  }}
}}

void quantise_and_scan(int block_index) {{
  int i;
  for (i = 0; i < N * N; i++) {{
    coeffs[i] = coeffs[i] / quant[i];
  }}
  for (i = 0; i < N * N; i++) {{
    scanned[block_index * N * N + i] = coeffs[zigzag[i]];
  }}
}}

int main(void) {{
  int b;
  int i;
  int checksum = 0;
  for (b = 0; b < NUM_BLOCKS; b++) {{
    for (i = 0; i < N * N; i++) {{ block[i] = pixels[b * N * N + i] - 128; }}
    dct_rows();
    dct_cols();
    quantise_and_scan(b);
  }}
  for (b = 0; b < NUM_BLOCKS; b++) {{
    for (i = 0; i < 16; i++) {{ print_int(scanned[b * N * N + i]); }}
  }}
  for (i = 0; i < NUM_BLOCKS * N * N; i++) {{ checksum = checksum + scanned[i] * (i + 1); }}
  print_int(checksum);
  return checksum & 1048575;
}}
"""


def _c_div(a: int, b: int) -> int:
    """C integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def reference() -> List[int]:
    outputs: List[int] = []
    scanned_all: List[int] = []
    for b in range(_NUM_BLOCKS):
        block = [_PIXELS[b * 64 + i] - 128 for i in range(64)]
        temp = [0] * 64
        for y in range(_N):
            for u in range(_N):
                total = sum(_COS[u * _N + x] * block[y * _N + x] for x in range(_N))
                temp[y * _N + u] = _c_div(total, 1024)
        coeffs = [0] * 64
        for u in range(_N):
            for v in range(_N):
                total = sum(_COS[v * _N + y] * temp[y * _N + u] for y in range(_N))
                coeffs[v * _N + u] = _c_div(total, 1024)
        coeffs = [_c_div(c, q) for c, q in zip(coeffs, _QUANT)]
        scanned = [coeffs[_ZIGZAG[i]] for i in range(64)]
        scanned_all.extend(scanned)
    for b in range(_NUM_BLOCKS):
        outputs.extend(scanned_all[b * 64 : b * 64 + 16])
    checksum = sum(v * (i + 1) for i, v in enumerate(scanned_all))
    outputs.append(checksum)
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="jpeg",
        description="JPEG forward block pipeline: 2-D DCT, quantisation, zig-zag",
        source=SOURCE,
        reference=reference,
        chstone_name="JPEG",
        paper_queues=576,
        paper_semaphores=3,
        paper_hw_threads=6,
    )
)
