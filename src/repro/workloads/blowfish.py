"""Blowfish — reduced-box Blowfish encryption (the CHStone ``blowfish`` kernel).

A Feistel cipher with the Blowfish round structure: an 18-entry P-array and
an S-box driven F function, 16 rounds, encrypting four 64-bit blocks held as
pairs of 32-bit words.  The four 256-entry S-boxes of the real cipher are
reduced to one 256-entry box indexed four ways, which keeps the table
pressure (the reason the thesis calls Blowfish's call graph "optimized")
while keeping the source compact.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Workload, WorkloadRegistry

_ROUNDS = 16
_NUM_BLOCKS = 4

# Deterministic pseudo-random P-array and S-box (hex digits of a LCG).
def _pseudo_table(count: int, seed: int) -> List[int]:
    out = []
    state = seed & 0xFFFFFFFF
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out.append(state)
    return out


_P_ARRAY = _pseudo_table(18, 0x243F6A88)
_SBOX = _pseudo_table(256, 0x13198A2E)
_PLAIN = _pseudo_table(_NUM_BLOCKS * 2, 0xA4093822)


def _fmt_unsigned(values: List[int]) -> str:
    return "{" + ", ".join(str(v) for v in values) + "}"


SOURCE = f"""
/* Reduced-box Blowfish encryption of four 64-bit blocks (CHStone `blowfish` analogue). */
#define ROUNDS {_ROUNDS}
#define NUM_BLOCKS {_NUM_BLOCKS}

unsigned int p_array[18] = {_fmt_unsigned(_P_ARRAY)};
unsigned int sbox[256] = {_fmt_unsigned(_SBOX)};
unsigned int text[NUM_BLOCKS * 2] = {_fmt_unsigned(_PLAIN)};
unsigned int cipher[NUM_BLOCKS * 2];

unsigned int feistel(unsigned int x) {{
  unsigned int a = (x >> 24) & 255;
  unsigned int b = (x >> 16) & 255;
  unsigned int c = (x >> 8) & 255;
  unsigned int d = x & 255;
  unsigned int h = sbox[a] + sbox[b];
  h = h ^ sbox[c];
  h = h + sbox[d];
  return h;
}}

void encrypt_block(int block) {{
  unsigned int left = text[block * 2];
  unsigned int right = text[block * 2 + 1];
  int i;
  for (i = 0; i < ROUNDS; i++) {{
    unsigned int tmp;
    left = left ^ p_array[i];
    right = feistel(left) ^ right;
    tmp = left;
    left = right;
    right = tmp;
  }}
  {{
    unsigned int tmp = left;
    left = right;
    right = tmp;
  }}
  right = right ^ p_array[16];
  left = left ^ p_array[17];
  cipher[block * 2] = left;
  cipher[block * 2 + 1] = right;
}}

int main(void) {{
  int block;
  int i;
  unsigned int checksum = 0;
  for (block = 0; block < NUM_BLOCKS; block++) {{
    encrypt_block(block);
  }}
  for (i = 0; i < NUM_BLOCKS * 2; i++) {{
    checksum = checksum ^ cipher[i];
    print_int(cipher[i]);
  }}
  print_int(checksum);
  return checksum & 65535;
}}
"""


def reference() -> List[int]:
    mask = 0xFFFFFFFF

    def feistel(x: int) -> int:
        a = (x >> 24) & 255
        b = (x >> 16) & 255
        c = (x >> 8) & 255
        d = x & 255
        h = (_SBOX[a] + _SBOX[b]) & mask
        h ^= _SBOX[c]
        h = (h + _SBOX[d]) & mask
        return h

    outputs: List[int] = []
    cipher: List[int] = []
    for block in range(_NUM_BLOCKS):
        left = _PLAIN[block * 2]
        right = _PLAIN[block * 2 + 1]
        for i in range(_ROUNDS):
            left ^= _P_ARRAY[i]
            right = feistel(left) ^ right
            left, right = right, left
        left, right = right, left
        right ^= _P_ARRAY[16]
        left ^= _P_ARRAY[17]
        cipher.extend([left, right])
    checksum = 0
    for value in cipher:
        checksum ^= value
        outputs.append(value)
    outputs.append(checksum)
    return outputs


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="blowfish",
        description="Reduced-box Blowfish encryption of four 64-bit blocks",
        source=SOURCE,
        reference=reference,
        chstone_name="Blowfish",
        paper_queues=104,
        paper_semaphores=2,
        paper_hw_threads=2,
    )
)
