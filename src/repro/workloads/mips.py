"""MIPS — a small MIPS-subset interpreter (the CHStone ``mips`` kernel).

The CHStone benchmark executes a MIPS machine-code program (a bubble sort)
on a software ISA interpreter.  This reproduction interprets an 8-register
MIPS-like ISA with the same flavour of instructions (add/sub/and/or/slt,
addi, lw/sw, beq/bne, j) running an insertion sort over a small data
memory.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, WorkloadRegistry

# Instruction encoding: op * 0x100000 + rs * 0x10000 + rt * 0x1000 + rd * 0x100 + imm8
# ops: 0 add, 1 sub, 2 and, 3 or, 4 slt, 5 addi, 6 lw, 7 sw, 8 beq, 9 bne, 10 j, 15 halt


def _encode(op: int, rs: int = 0, rt: int = 0, rd: int = 0, imm: int = 0) -> int:
    return op * 0x100000 + rs * 0x10000 + rt * 0x1000 + rd * 0x100 + (imm & 0xFF)


def _sort_program() -> List[int]:
    """Selection-sort over DATA_LEN words using the toy ISA."""
    # r1 = i, r2 = j, r3 = min index, r4/r5 scratch values, r6 = DATA_LEN, r7 = 1
    DATA_LEN = 8
    program = [
        _encode(5, 0, 6, 0, DATA_LEN),      # addi r6 = DATA_LEN
        _encode(5, 0, 7, 0, 1),             # addi r7 = 1
        _encode(5, 0, 1, 0, 0),             # addi r1 = 0                     (outer loop)
        # outer: pc=3
        _encode(8, 1, 6, 0, 16),            # beq r1, r6 -> halt (pc 19)
        _encode(0, 1, 0, 3, 0),             # r3 = r1 (min index)
        _encode(0, 1, 7, 2, 0),             # r2 = r1 + 1
        # inner: pc=6
        _encode(8, 2, 6, 0, 7),             # beq r2, r6 -> swap (pc 14)
        _encode(6, 2, 4, 0, 0),             # r4 = mem[r2]
        _encode(6, 3, 5, 0, 0),             # r5 = mem[r3]
        _encode(4, 4, 5, 5, 0),             # r5 = (r4 < r5)
        _encode(8, 5, 0, 0, 1),             # beq r5, r0 -> skip (pc 11)
        _encode(0, 2, 0, 3, 0),             # r3 = r2
        # skip: pc=11 (wait, label math handled by offsets below)
        _encode(0, 2, 7, 2, 0),             # r2 = r2 + 1
        _encode(10, 0, 0, 0, 6),            # j inner (pc 6)
        # swap: pc=13
        _encode(6, 1, 4, 0, 0),             # r4 = mem[r1]
        _encode(6, 3, 5, 0, 0),             # r5 = mem[r3]
        _encode(7, 1, 5, 0, 0),             # mem[r1] = r5
        _encode(7, 3, 4, 0, 0),             # mem[r3] = r4
        _encode(0, 1, 7, 1, 0),             # r1 = r1 + 1
        _encode(10, 0, 0, 0, 3),            # j outer (pc 3)
        _encode(15, 0, 0, 0, 0),            # halt (pc 19)
    ]
    return program


_PROGRAM = _sort_program()
_DATA = [22, 5, -9, 3, 14, 0, 77, -3]

_PROGRAM_INIT = "{" + ", ".join(str(v) for v in _PROGRAM) + "}"
_DATA_INIT = "{" + ", ".join(str(v) for v in _DATA) + "}"

SOURCE = f"""
/* MIPS-subset interpreter running a selection sort (CHStone `mips` analogue). */
#define PROG_LEN {len(_PROGRAM)}
#define DATA_LEN {len(_DATA)}

int imem[PROG_LEN] = {_PROGRAM_INIT};
int dmem[DATA_LEN] = {_DATA_INIT};
int regs[8];

int run_cpu(int max_steps) {{
  int pc = 0;
  int steps = 0;
  while (steps < max_steps) {{
    int inst = imem[pc];
    int op = (inst >> 20) & 15;
    int rs = (inst >> 16) & 15;
    int rt = (inst >> 12) & 15;
    int rd = (inst >> 8) & 15;
    int imm = inst & 255;
    int next = pc + 1;
    if (op == 15) {{
      return steps;
    }}
    if (op == 0) {{ regs[rd] = regs[rs] + regs[rt]; }}
    else if (op == 1) {{ regs[rd] = regs[rs] - regs[rt]; }}
    else if (op == 2) {{ regs[rd] = regs[rs] & regs[rt]; }}
    else if (op == 3) {{ regs[rd] = regs[rs] | regs[rt]; }}
    else if (op == 4) {{ regs[rd] = regs[rs] < regs[rt]; }}
    else if (op == 5) {{ regs[rt] = regs[rs] + imm; }}
    else if (op == 6) {{ regs[rt] = dmem[regs[rs]]; }}
    else if (op == 7) {{ dmem[regs[rs]] = regs[rt]; }}
    else if (op == 8) {{ if (regs[rs] == regs[rt]) {{ next = pc + 1 + imm; }} }}
    else if (op == 9) {{ if (regs[rs] != regs[rt]) {{ next = pc + 1 + imm; }} }}
    else if (op == 10) {{ next = imm; }}
    pc = next;
    steps = steps + 1;
  }}
  return steps;
}}

int main(void) {{
  int i;
  int steps;
  for (i = 0; i < 8; i++) {{ regs[i] = 0; }}
  steps = run_cpu(4000);
  for (i = 0; i < DATA_LEN; i++) {{ print_int(dmem[i]); }}
  print_int(steps);
  return steps;
}}
"""


def reference() -> List[int]:
    """Pure-Python model of the interpreter running the same program."""
    regs = [0] * 8
    dmem = list(_DATA)
    pc = 0
    steps = 0
    max_steps = 4000
    while steps < max_steps:
        inst = _PROGRAM[pc]
        op = (inst >> 20) & 15
        rs = (inst >> 16) & 15
        rt = (inst >> 12) & 15
        rd = (inst >> 8) & 15
        imm = inst & 255
        nxt = pc + 1
        if op == 15:
            break
        if op == 0:
            regs[rd] = regs[rs] + regs[rt]
        elif op == 1:
            regs[rd] = regs[rs] - regs[rt]
        elif op == 2:
            regs[rd] = regs[rs] & regs[rt]
        elif op == 3:
            regs[rd] = regs[rs] | regs[rt]
        elif op == 4:
            regs[rd] = 1 if regs[rs] < regs[rt] else 0
        elif op == 5:
            regs[rt] = regs[rs] + imm
        elif op == 6:
            regs[rt] = dmem[regs[rs]]
        elif op == 7:
            dmem[regs[rs]] = regs[rt]
        elif op == 8:
            if regs[rs] == regs[rt]:
                nxt = pc + 1 + imm
        elif op == 9:
            if regs[rs] != regs[rt]:
                nxt = pc + 1 + imm
        elif op == 10:
            nxt = imm
        pc = nxt
        steps += 1
    return dmem + [steps]


WORKLOAD = WorkloadRegistry.register(
    Workload(
        name="mips",
        description="MIPS-subset ISA interpreter running a selection sort",
        source=SOURCE,
        reference=reference,
        chstone_name="MIPS",
        paper_queues=12,
        paper_semaphores=0,
        paper_hw_threads=1,
    )
)
