"""CHStone-style benchmark kernels (thesis Chapter 6).

The thesis evaluates Twill on the eight 32-bit CHStone benchmarks (the four
64-bit ones — DFAdd, DFDiv, DFMul, DFSine — are excluded because Twill does
not support 64-bit values, §6).  The original CHStone sources are not
redistributable here, so each kernel is re-implemented in the supported C
subset with the same computational structure (table-driven crypto rounds,
codec inner loops, an ISA interpreter, transform/quantisation loops) at
reduced input sizes so the functional interpreter and the timing replay stay
laptop-scale.  Every kernel ships with a pure-Python reference
implementation; the test suite checks that the compiled-and-interpreted C
produces exactly the reference outputs.
"""

from repro.workloads.base import Workload, WorkloadRegistry, get_workload, all_workloads
from repro.workloads import mips, adpcm, aes, blowfish, gsm, jpeg, mpeg2, sha

__all__ = [
    "Workload",
    "WorkloadRegistry",
    "get_workload",
    "all_workloads",
    "mips",
    "adpcm",
    "aes",
    "blowfish",
    "gsm",
    "jpeg",
    "mpeg2",
    "sha",
]
