"""Modules: the top-level IR container (functions + global variables)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.types import FunctionType, Type
from repro.ir.values import GlobalVariable


class Module:
    """A translation unit: named globals and named functions.

    The module preserves insertion order (so printed IR and layout of the
    simulated memory image are deterministic).
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- functions -----------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"module already contains a function named {function.name}")
        function.parent = self
        self.functions[function.name] = function
        return function

    def create_function(
        self,
        name: str,
        type: FunctionType,
        param_names: Optional[List[str]] = None,
    ) -> Function:
        return self.add_function(Function(name, type, param_names, parent=self))

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise IRError(f"module has no function named {name}") from exc

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def remove_function(self, name: str) -> None:
        fn = self.get_function(name)
        if fn.is_used():
            raise IRError(f"cannot remove function {name}: it still has uses")
        del self.functions[name]
        fn.parent = None

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration()]

    # -- globals --------------------------------------------------------------

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals:
            raise IRError(f"module already contains a global named {g.name}")
        self.globals[g.name] = g
        return g

    def create_global(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[object] = None,
        is_const: bool = False,
    ) -> GlobalVariable:
        return self.add_global(GlobalVariable(name, value_type, initializer, is_const))

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError as exc:
            raise IRError(f"module has no global named {name}") from exc

    def has_global(self, name: str) -> bool:
        return name in self.globals

    def remove_global(self, name: str) -> None:
        g = self.get_global(name)
        if g.is_used():
            raise IRError(f"cannot remove global {name}: it still has uses")
        del self.globals[name]

    # -- traversal ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
