"""Functions: named, typed containers of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Call, Instruction
from repro.ir.types import FunctionType, Type
from repro.ir.values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Module


class Function(Value):
    """An IR function.

    A function with no blocks is a *declaration* (used for the few runtime
    intrinsics such as ``print_int``); everything else is a definition.
    """

    def __init__(
        self,
        name: str,
        type: FunctionType,
        param_names: Optional[List[str]] = None,
        parent: Optional["Module"] = None,
    ):
        super().__init__(type, name=name)
        self.function_type = type
        self.parent = parent
        self.blocks: List[BasicBlock] = []
        names = param_names or [f"arg{i}" for i in range(len(type.param_types))]
        if len(names) != len(type.param_types):
            raise IRError(
                f"function {name}: {len(names)} parameter names for "
                f"{len(type.param_types)} parameter types"
            )
        self.args: List[Argument] = [
            Argument(t, n, i, parent=self) for i, (t, n) in enumerate(zip(type.param_types, names))
        ]
        self._name_counter = 0
        self._block_counter = 0

    # -- basic properties -------------------------------------------------------

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def entry_block(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    def is_declaration(self) -> bool:
        return not self.blocks

    def short_name(self) -> str:
        return f"@{self.name}"

    # -- block management --------------------------------------------------------

    def append_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        self.blocks.append(block)
        return block

    def create_block(self, hint: str = "bb") -> BasicBlock:
        name = self.unique_block_name(hint)
        return self.append_block(BasicBlock(name, parent=self))

    def insert_block_after(self, existing: BasicBlock, block: BasicBlock) -> BasicBlock:
        block.parent = self
        idx = self.blocks.index(existing)
        self.blocks.insert(idx + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"function {self.name} has no block named {name}")

    def unique_block_name(self, hint: str = "bb") -> str:
        existing = {b.name for b in self.blocks}
        if hint not in existing:
            return hint
        while True:
            self._block_counter += 1
            candidate = f"{hint}.{self._block_counter}"
            if candidate not in existing:
                return candidate

    def unique_value_name(self, hint: str = "v") -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    # -- traversal ----------------------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def callees(self) -> List["Function"]:
        """Functions directly called from this function (with repetition removed)."""
        seen: List[Function] = []
        for inst in self.instructions():
            if isinstance(inst, Call) and inst.callee not in seen:
                seen.append(inst.callee)
        return seen

    def call_sites(self) -> List[Call]:
        return [i for i in self.instructions() if isinstance(i, Call)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration() else "define"
        return f"<Function {kind} @{self.name} ({len(self.blocks)} blocks)>"
