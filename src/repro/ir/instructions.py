"""Instruction set of the SSA intermediate representation.

The instruction set closely follows the LLVM subset that Twill's compiler
passes manipulate: integer arithmetic, comparisons, select, memory access
(alloca / load / store / getelementptr), casts, control flow (br / condbr /
switch / ret), phi nodes and calls.  Two extra instructions —
:class:`Produce` and :class:`Consume` — model the DSWP enqueue/dequeue
primitives that Twill's thread extraction inserts.

Operand management:  every instruction stores its operands in
``self._operands`` and keeps each operand's use list in sync through
:meth:`Instruction.set_operand`, which is what makes
``Value.replace_all_uses_with`` work.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.types import VOID, I1, IntType, PointerType, Type
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function


class Opcode(str, Enum):
    """Every IR opcode.  The string value is used by the printer and the cost tables."""

    # arithmetic / bitwise
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # comparisons and select
    ICMP = "icmp"
    SELECT = "select"
    # memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # casts
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    BITCAST = "bitcast"
    # control flow
    BR = "br"
    CONDBR = "condbr"
    SWITCH = "switch"
    RET = "ret"
    # SSA / calls
    PHI = "phi"
    CALL = "call"
    # DSWP communication primitives
    PRODUCE = "produce"
    CONSUME = "consume"


BINARY_OPCODES = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.SDIV,
    Opcode.UDIV,
    Opcode.SREM,
    Opcode.UREM,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.LSHR,
    Opcode.ASHR,
}

CAST_OPCODES = {Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT, Opcode.BITCAST}

TERMINATOR_OPCODES = {Opcode.BR, Opcode.CONDBR, Opcode.SWITCH, Opcode.RET}


class CmpPredicate(str, Enum):
    """Integer comparison predicates (signed and unsigned)."""

    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    def is_signed(self) -> bool:
        return self in (CmpPredicate.SLT, CmpPredicate.SLE, CmpPredicate.SGT, CmpPredicate.SGE)

    def swapped(self) -> "CmpPredicate":
        """Predicate with operands swapped (a pred b  ==  b swapped(pred) a)."""
        table = {
            CmpPredicate.EQ: CmpPredicate.EQ,
            CmpPredicate.NE: CmpPredicate.NE,
            CmpPredicate.SLT: CmpPredicate.SGT,
            CmpPredicate.SLE: CmpPredicate.SGE,
            CmpPredicate.SGT: CmpPredicate.SLT,
            CmpPredicate.SGE: CmpPredicate.SLE,
            CmpPredicate.ULT: CmpPredicate.UGT,
            CmpPredicate.ULE: CmpPredicate.UGE,
            CmpPredicate.UGT: CmpPredicate.ULT,
            CmpPredicate.UGE: CmpPredicate.ULE,
        }
        return table[self]


class Instruction(Value):
    """Base class for all instructions.

    Instructions are values (their result can be used as an operand), belong
    to a basic block, and carry an ordered operand list.
    """

    opcode: Opcode

    def __init__(self, opcode: Opcode, type: Type, operands: Sequence[Value] = (), name: str = ""):
        super().__init__(type, name=name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        self._operands: List[Value] = []
        for op in operands:
            self.append_operand(op)

    # -- operand management --------------------------------------------------

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    def num_operands(self) -> int:
        return len(self._operands)

    def get_operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(self, index)

    def append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(self, index)

    def remove_operand(self, index: int) -> None:
        """Remove operand ``index``; later operand indices shift down by one."""
        self._operands[index]._remove_use(self, index)
        # Re-register the trailing operands under their new indices.
        for i in range(index + 1, len(self._operands)):
            self._operands[i]._remove_use(self, i)
        del self._operands[index]
        for i in range(index, len(self._operands)):
            self._operands[i]._add_use(self, i)

    def drop_all_operands(self) -> None:
        for i, op in enumerate(self._operands):
            op._remove_use(self, i)
        self._operands.clear()

    # -- structural queries ---------------------------------------------------

    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    def is_cast(self) -> bool:
        return self.opcode in CAST_OPCODES

    def is_phi(self) -> bool:
        return self.opcode is Opcode.PHI

    def has_side_effects(self) -> bool:
        """True for instructions that must not be removed even if unused."""
        return self.opcode in (
            Opcode.STORE,
            Opcode.CALL,
            Opcode.RET,
            Opcode.BR,
            Opcode.CONDBR,
            Opcode.SWITCH,
            Opcode.PRODUCE,
            Opcode.CONSUME,
        )

    def may_read_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.CALL, Opcode.CONSUME)

    def may_write_memory(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.CALL, Opcode.PRODUCE)

    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # -- mutation helpers ------------------------------------------------------

    def erase_from_parent(self) -> None:
        """Detach this instruction from its block and drop its operand uses."""
        if self.is_used():
            raise IRError(f"cannot erase {self}: it still has uses")
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_operands()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.opcode.value} {self.short_name()}>"


# ---------------------------------------------------------------------------
# Concrete instructions
# ---------------------------------------------------------------------------


class BinaryOp(Instruction):
    """Two-operand integer arithmetic / bitwise instruction."""

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise IRError(f"{opcode} is not a binary opcode")
        if not isinstance(lhs.type, IntType):
            raise IRError(f"binary op operand must be integer, got {lhs.type!r}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name=name)

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)


class ICmp(Instruction):
    """Integer comparison producing an i1."""

    def __init__(self, predicate: CmpPredicate, lhs: Value, rhs: Value, name: str = ""):
        super().__init__(Opcode.ICMP, I1, [lhs, rhs], name=name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)


class Select(Instruction):
    """``select cond, true_value, false_value`` — a data-flow conditional."""

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = ""):
        super().__init__(Opcode.SELECT, tval.type, [cond, tval, fval], name=name)

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def true_value(self) -> Value:
        return self.get_operand(1)

    @property
    def false_value(self) -> Value:
        return self.get_operand(2)


class Alloca(Instruction):
    """Stack allocation of one object of ``allocated_type``; yields a pointer."""

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(Opcode.ALLOCA, PointerType(allocated_type), [], name=name)
        self.allocated_type = allocated_type


class Load(Instruction):
    """Load a scalar from a pointer."""

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"load requires a pointer operand, got {ptr.type!r}")
        pointee = ptr.type.pointee
        super().__init__(Opcode.LOAD, pointee, [ptr], name=name)

    @property
    def pointer(self) -> Value:
        return self.get_operand(0)


class Store(Instruction):
    """Store a scalar through a pointer.  Produces no value."""

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store requires a pointer operand, got {ptr.type!r}")
        super().__init__(Opcode.STORE, VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def pointer(self) -> Value:
        return self.get_operand(1)


class GetElementPtr(Instruction):
    """Pointer arithmetic over arrays: ``gep base, idx0[, idx1...]``.

    ``result_type`` must be supplied by the builder because element
    navigation through nested arrays depends on the base's value type.
    """

    def __init__(self, base: Value, indices: Sequence[Value], result_type: PointerType, name: str = ""):
        super().__init__(Opcode.GEP, result_type, [base, *indices], name=name)

    @property
    def base(self) -> Value:
        return self.get_operand(0)

    @property
    def indices(self) -> List[Value]:
        return self._operands[1:]


class Cast(Instruction):
    """Integer width/signedness conversion (trunc / zext / sext / bitcast)."""

    def __init__(self, opcode: Opcode, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise IRError(f"{opcode} is not a cast opcode")
        super().__init__(opcode, to_type, [value], name=name)

    @property
    def value(self) -> Value:
        return self.get_operand(0)


class Branch(Instruction):
    """Unconditional branch.  The target block is stored as ``target`` (not an operand)."""

    def __init__(self, target: "BasicBlock"):
        super().__init__(Opcode.BR, VOID, [])
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class CondBranch(Instruction):
    """Conditional branch on an i1 condition."""

    def __init__(self, cond: Value, true_target: "BasicBlock", false_target: "BasicBlock"):
        super().__init__(Opcode.CONDBR, VOID, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    def successors(self) -> List["BasicBlock"]:
        return [self.true_target, self.false_target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_target is old:
            self.true_target = new
        if self.false_target is old:
            self.false_target = new


class Switch(Instruction):
    """Multi-way branch; lowered to a chain of CondBranches by the lower-switch pass."""

    def __init__(self, value: Value, default: "BasicBlock", cases: Sequence[Tuple[int, "BasicBlock"]] = ()):
        super().__init__(Opcode.SWITCH, VOID, [value])
        self.default = default
        self.cases: List[Tuple[int, "BasicBlock"]] = list(cases)

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    def add_case(self, const: int, block: "BasicBlock") -> None:
        self.cases.append((const, block))

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [b for _, b in self.cases]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]


class Return(Instruction):
    """Return from the current function, optionally with a value."""

    def __init__(self, value: Optional[Value] = None):
        super().__init__(Opcode.RET, VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.get_operand(0) if self.num_operands() else None

    def successors(self) -> List["BasicBlock"]:
        return []

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:  # pragma: no cover
        pass


class Phi(Instruction):
    """SSA phi node.  Incoming blocks are kept parallel to the operand list."""

    def __init__(self, type: Type, name: str = ""):
        super().__init__(Opcode.PHI, type, [], name=name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise IRError(f"phi {self.short_name()} has no incoming value for block {block.name}")

    def set_incoming_value_for(self, block: "BasicBlock", value: Value) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.set_operand(i, value)
                return
        raise IRError(f"phi {self.short_name()} has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.remove_operand(i)
                del self.incoming_blocks[i]
                return
        raise IRError(f"phi {self.short_name()} has no incoming edge from {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming_blocks = [new if b is old else b for b in self.incoming_blocks]


class Call(Instruction):
    """Direct call.  ``callee`` is a Function (function pointers are unsupported,
    matching Twill's documented restriction)."""

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        super().__init__(Opcode.CALL, callee.return_type, list(args), name=name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return list(self._operands)


class Produce(Instruction):
    """DSWP enqueue: send ``value`` into hardware queue ``queue_id``."""

    def __init__(self, queue_id: int, value: Value):
        super().__init__(Opcode.PRODUCE, VOID, [value])
        self.queue_id = queue_id

    @property
    def value(self) -> Value:
        return self.get_operand(0)


class Consume(Instruction):
    """DSWP dequeue: receive a value of ``type`` from hardware queue ``queue_id``."""

    def __init__(self, queue_id: int, type: Type, name: str = ""):
        super().__init__(Opcode.CONSUME, type, [], name=name)
        self.queue_id = queue_id


# ---------------------------------------------------------------------------
# Constant folding helper (shared by constprop and the interpreter)
# ---------------------------------------------------------------------------


def evaluate_binary(opcode: Opcode, type: IntType, a: int, b: int) -> int:
    """Evaluate a binary opcode on Python ints, with C semantics for the given type.

    Division and remainder follow C's truncation-toward-zero semantics.
    Raises ZeroDivisionError for division by zero (the interpreter converts
    that into a trap).
    """
    if opcode is Opcode.ADD:
        r = a + b
    elif opcode is Opcode.SUB:
        r = a - b
    elif opcode is Opcode.MUL:
        r = a * b
    elif opcode in (Opcode.SDIV, Opcode.UDIV):
        if b == 0:
            raise ZeroDivisionError("division by zero")
        if opcode is Opcode.UDIV:
            ua = a & ((1 << type.bits) - 1)
            ub = b & ((1 << type.bits) - 1)
            r = ua // ub
        else:
            q = abs(a) // abs(b)
            r = q if (a >= 0) == (b >= 0) else -q
    elif opcode in (Opcode.SREM, Opcode.UREM):
        if b == 0:
            raise ZeroDivisionError("remainder by zero")
        if opcode is Opcode.UREM:
            ua = a & ((1 << type.bits) - 1)
            ub = b & ((1 << type.bits) - 1)
            r = ua % ub
        else:
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            r = a - q * b
    elif opcode is Opcode.AND:
        r = a & b
    elif opcode is Opcode.OR:
        r = a | b
    elif opcode is Opcode.XOR:
        r = a ^ b
    elif opcode is Opcode.SHL:
        r = a << (b & (type.bits - 1))
    elif opcode is Opcode.LSHR:
        ua = a & ((1 << type.bits) - 1)
        r = ua >> (b & (type.bits - 1))
    elif opcode is Opcode.ASHR:
        r = type.wrap(a) >> (b & (type.bits - 1))
    else:
        raise IRError(f"not a binary opcode: {opcode}")
    return type.wrap(r)


def evaluate_icmp(predicate: CmpPredicate, type: IntType, a: int, b: int) -> int:
    """Evaluate an integer comparison with C semantics; returns 0 or 1."""
    if predicate.is_signed() or predicate in (CmpPredicate.EQ, CmpPredicate.NE):
        sa, sb = type.wrap(a), type.wrap(b)
    else:
        mask = (1 << type.bits) - 1
        sa, sb = a & mask, b & mask
    table = {
        CmpPredicate.EQ: sa == sb,
        CmpPredicate.NE: sa != sb,
        CmpPredicate.SLT: sa < sb,
        CmpPredicate.SLE: sa <= sb,
        CmpPredicate.SGT: sa > sb,
        CmpPredicate.SGE: sa >= sb,
        CmpPredicate.ULT: sa < sb,
        CmpPredicate.ULE: sa <= sb,
        CmpPredicate.UGT: sa > sb,
        CmpPredicate.UGE: sa >= sb,
    }
    return 1 if table[predicate] else 0
