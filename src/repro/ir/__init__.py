"""SSA intermediate representation (the LLVM analogue used by every pass)."""

from repro.ir.types import (
    VOID,
    I1,
    I8,
    U8,
    I16,
    U16,
    I32,
    U32,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    common_int_type,
    pointer_to,
)
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CmpPredicate,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
    evaluate_binary,
    evaluate_icmp,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.verifier import VerifierReport, verify_function, verify_module

__all__ = [
    # types
    "VOID", "I1", "I8", "U8", "I16", "U16", "I32", "U32",
    "ArrayType", "FunctionType", "IntType", "PointerType", "Type", "VoidType",
    "common_int_type", "pointer_to",
    # values
    "Argument", "Constant", "GlobalVariable", "UndefValue", "Value",
    # instructions
    "Alloca", "BinaryOp", "Branch", "Call", "Cast", "CmpPredicate", "CondBranch",
    "Consume", "GetElementPtr", "ICmp", "Instruction", "Load", "Opcode", "Phi",
    "Produce", "Return", "Select", "Store", "Switch",
    "evaluate_binary", "evaluate_icmp",
    # containers
    "BasicBlock", "Function", "Module", "IRBuilder",
    # printing / verification
    "print_function", "print_instruction", "print_module",
    "VerifierReport", "verify_function", "verify_module",
]
