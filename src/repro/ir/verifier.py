"""IR verifier: structural invariant checks run after the front end and
after every transform pass (when the pass manager is configured to do so).

The checks mirror the subset of LLVM's verifier that matters for this
project: every block ends in exactly one terminator, phi nodes agree with the
block's predecessors, operands belong to the same function, and call
signatures match.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import VerificationError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    CondBranch,
    Instruction,
    Phi,
    Return,
    Switch,
)
from repro.ir.module import Module
from repro.ir.printer import print_instruction
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerifierReport:
    """Collects verification failures so callers can see all of them at once."""

    def __init__(self) -> None:
        self.errors: List[str] = []

    def fail(self, message: str) -> None:
        self.errors.append(message)

    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise VerificationError("IR verification failed:\n  " + "\n  ".join(self.errors))


def _verify_block(fn: Function, block: BasicBlock, report: VerifierReport) -> None:
    ctx = f"{fn.name}/{block.name}"
    if not block.instructions:
        report.fail(f"{ctx}: block is empty")
        return
    term = block.terminator
    if term is None:
        report.fail(f"{ctx}: block does not end with a terminator")
    for i, inst in enumerate(block.instructions):
        if inst.parent is not block:
            report.fail(f"{ctx}: instruction '{print_instruction(inst)}' has wrong parent")
        if inst.is_terminator() and inst is not block.instructions[-1]:
            report.fail(f"{ctx}: terminator '{print_instruction(inst)}' is not last")
        if isinstance(inst, Phi) and i >= block.first_non_phi_index() and not isinstance(
            block.instructions[i], Phi
        ):  # pragma: no cover - defensive
            report.fail(f"{ctx}: phi '{print_instruction(inst)}' appears after non-phi")

    # Phi nodes must appear before any non-phi instruction.
    seen_non_phi = False
    for inst in block.instructions:
        if isinstance(inst, Phi):
            if seen_non_phi:
                report.fail(f"{ctx}: phi '{print_instruction(inst)}' after non-phi instruction")
        else:
            seen_non_phi = True


def _verify_phis(fn: Function, block: BasicBlock, report: VerifierReport) -> None:
    ctx = f"{fn.name}/{block.name}"
    preds = block.predecessors()
    pred_set = set(id(p) for p in preds)
    for phi in block.phis():
        incoming_ids = [id(b) for b in phi.incoming_blocks]
        if len(set(incoming_ids)) != len(incoming_ids):
            report.fail(f"{ctx}: phi '{print_instruction(phi)}' has duplicate incoming blocks")
        for b in phi.incoming_blocks:
            if id(b) not in pred_set:
                report.fail(
                    f"{ctx}: phi '{print_instruction(phi)}' references non-predecessor {b.name}"
                )
        for p in preds:
            if id(p) not in set(incoming_ids):
                report.fail(
                    f"{ctx}: phi '{print_instruction(phi)}' missing incoming value for "
                    f"predecessor {p.name}"
                )


def _verify_operands(fn: Function, inst: Instruction, known_blocks: Set[int], report: VerifierReport) -> None:
    ctx = f"{fn.name}"
    for op in inst.operands:
        if isinstance(op, (Constant, GlobalVariable, UndefValue, Function)):
            continue
        if isinstance(op, Argument):
            if op.parent is not fn:
                report.fail(
                    f"{ctx}: '{print_instruction(inst)}' uses argument of another function"
                )
            continue
        if isinstance(op, Instruction):
            if op.parent is None or op.parent.parent is not fn:
                report.fail(
                    f"{ctx}: '{print_instruction(inst)}' uses instruction outside this function"
                )
            continue
        report.fail(f"{ctx}: '{print_instruction(inst)}' has unexpected operand {op!r}")

    # Branch targets must be blocks of this function.
    if isinstance(inst, Branch):
        targets = [inst.target]
    elif isinstance(inst, CondBranch):
        targets = [inst.true_target, inst.false_target]
    elif isinstance(inst, Switch):
        targets = inst.successors()
    else:
        targets = []
    for t in targets:
        if id(t) not in known_blocks:
            report.fail(f"{ctx}: branch '{print_instruction(inst)}' targets foreign block {t.name}")


def _verify_calls(fn: Function, inst: Call, report: VerifierReport) -> None:
    callee = inst.callee
    expected = len(callee.function_type.param_types)
    if len(inst.args) != expected:
        report.fail(
            f"{fn.name}: call to @{callee.name} passes {len(inst.args)} args, expected {expected}"
        )


def _verify_returns(fn: Function, report: VerifierReport) -> None:
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Return):
            if fn.return_type.is_void() and term.value is not None:
                report.fail(f"{fn.name}: void function returns a value")
            if not fn.return_type.is_void() and term.value is None:
                report.fail(f"{fn.name}: non-void function returns without a value")


def verify_function(fn: Function, report: VerifierReport | None = None) -> VerifierReport:
    """Verify one function; returns the report (raises only if caller asks)."""
    own = report is None
    report = report or VerifierReport()
    if fn.is_declaration():
        return report
    known_blocks = {id(b) for b in fn.blocks}
    for block in fn.blocks:
        _verify_block(fn, block, report)
        _verify_phis(fn, block, report)
        for inst in block.instructions:
            _verify_operands(fn, inst, known_blocks, report)
            if isinstance(inst, Call):
                _verify_calls(fn, inst, report)
    _verify_returns(fn, report)
    if own:
        report.raise_if_failed()
    return report


def verify_module(module: Module, raise_on_error: bool = True) -> VerifierReport:
    """Verify every function in ``module``.

    Returns the report; raises :class:`VerificationError` when
    ``raise_on_error`` is true and any check failed.
    """
    report = VerifierReport()
    for fn in module.functions.values():
        verify_function(fn, report)
    if raise_on_error:
        report.raise_if_failed()
    return report
