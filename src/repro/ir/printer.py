"""Textual printer for IR modules, functions and instructions.

The format is intentionally close to LLVM assembly so dumps are easy to read
next to the thesis text.  The printer is deterministic: values are numbered
in program order, which makes golden-file tests stable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class IRPrinter:
    """Prints IR entities.  A fresh printer should be used per module/function."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._counter = 0

    # -- value naming ----------------------------------------------------------

    def _value_name(self, value: Value) -> str:
        if isinstance(value, Constant):
            return str(value.value)
        if isinstance(value, UndefValue):
            return "undef"
        if isinstance(value, GlobalVariable):
            return f"@{value.name}"
        if isinstance(value, Function):
            return f"@{value.name}"
        if isinstance(value, Argument):
            return f"%{value.name}"
        key = id(value)
        if key not in self._names:
            base = value.name or "t"
            self._names[key] = f"%{base}"
        return self._names[key]

    def _typed(self, value: Value) -> str:
        return f"{value.type!r} {self._value_name(value)}"

    # -- instruction printing -----------------------------------------------------

    def format_instruction(self, inst: Instruction) -> str:
        name = self._value_name(inst)
        if isinstance(inst, BinaryOp):
            return f"{name} = {inst.opcode.value} {self._typed(inst.lhs)}, {self._value_name(inst.rhs)}"
        if isinstance(inst, ICmp):
            return (
                f"{name} = icmp {inst.predicate.value} "
                f"{self._typed(inst.lhs)}, {self._value_name(inst.rhs)}"
            )
        if isinstance(inst, Select):
            return (
                f"{name} = select {self._typed(inst.condition)}, "
                f"{self._typed(inst.true_value)}, {self._typed(inst.false_value)}"
            )
        if isinstance(inst, Alloca):
            return f"{name} = alloca {inst.allocated_type!r}"
        if isinstance(inst, Load):
            return f"{name} = load {self._typed(inst.pointer)}"
        if isinstance(inst, Store):
            return f"store {self._typed(inst.value)}, {self._typed(inst.pointer)}"
        if isinstance(inst, GetElementPtr):
            idx = ", ".join(self._value_name(i) for i in inst.indices)
            return f"{name} = getelementptr {self._typed(inst.base)}, [{idx}]"
        if isinstance(inst, Cast):
            return f"{name} = {inst.opcode.value} {self._typed(inst.value)} to {inst.type!r}"
        if isinstance(inst, Branch):
            return f"br label %{inst.target.name}"
        if isinstance(inst, CondBranch):
            return (
                f"br {self._typed(inst.condition)}, "
                f"label %{inst.true_target.name}, label %{inst.false_target.name}"
            )
        if isinstance(inst, Switch):
            cases = ", ".join(f"{c}: %{b.name}" for c, b in inst.cases)
            return f"switch {self._typed(inst.value)}, default %{inst.default.name} [{cases}]"
        if isinstance(inst, Return):
            if inst.value is None:
                return "ret void"
            return f"ret {self._typed(inst.value)}"
        if isinstance(inst, Phi):
            pairs = ", ".join(
                f"[ {self._value_name(v)}, %{b.name} ]" for v, b in inst.incoming()
            )
            return f"{name} = phi {inst.type!r} {pairs}"
        if isinstance(inst, Call):
            args = ", ".join(self._typed(a) for a in inst.args)
            if inst.type.is_void():
                return f"call void @{inst.callee.name}({args})"
            return f"{name} = call {inst.type!r} @{inst.callee.name}({args})"
        if isinstance(inst, Produce):
            return f"produce q{inst.queue_id}, {self._typed(inst.value)}"
        if isinstance(inst, Consume):
            return f"{name} = consume q{inst.queue_id} : {inst.type!r}"
        return f"{name} = {inst.opcode.value} <unknown format>"  # pragma: no cover

    # -- block / function / module printing -------------------------------------------

    def format_block(self, block: BasicBlock) -> str:
        lines = [f"{block.name}:"]
        for inst in block.instructions:
            lines.append(f"  {self.format_instruction(inst)}")
        return "\n".join(lines)

    def format_function(self, fn: Function) -> str:
        params = ", ".join(f"{a.type!r} %{a.name}" for a in fn.args)
        header = f"define {fn.return_type!r} @{fn.name}({params})"
        if fn.is_declaration():
            return f"declare {fn.return_type!r} @{fn.name}({params})"
        body = "\n\n".join(self.format_block(b) for b in fn.blocks)
        return f"{header} {{\n{body}\n}}"

    def format_module(self, module: Module) -> str:
        parts = [f"; module {module.name}"]
        for g in module.globals.values():
            const = "constant" if g.is_const else "global"
            parts.append(f"@{g.name} = {const} {g.value_type!r} {g.initializer!r}")
        for fn in module.functions.values():
            parts.append(self.format_function(fn))
        return "\n\n".join(parts) + "\n"


def print_module(module: Module) -> str:
    """Return a full textual dump of ``module``."""
    return IRPrinter().format_module(module)


def print_function(fn: Function) -> str:
    """Return a textual dump of a single function."""
    return IRPrinter().format_function(fn)


def print_instruction(inst: Instruction) -> str:
    """Return a one-line textual rendering of ``inst``."""
    return IRPrinter().format_instruction(inst)
