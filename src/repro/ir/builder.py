"""IRBuilder: convenience layer for constructing instructions.

The builder tracks an insertion point (a basic block) and provides one
method per instruction kind, handling implicit integer conversions, GEP
result-type computation and value naming.  The front end's lowering pass and
the DSWP thread extraction both construct IR exclusively through this class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CmpPredicate,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
)
from repro.ir.types import (
    I1,
    I32,
    ArrayType,
    IntType,
    PointerType,
    Type,
    common_int_type,
)
from repro.ir.values import Constant, Value


IntLike = Union[Value, int]


class IRBuilder:
    """Builds instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    # -- insertion point -------------------------------------------------------

    def set_insert_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRError("builder has no insertion block / parent function")
        return self.block.parent

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if self.block.has_terminator() and inst.is_terminator():
            raise IRError(f"block {self.block.name} already has a terminator")
        self.block.append(inst)
        return inst

    def _name(self, hint: str) -> str:
        return self.function.unique_value_name(hint)

    # -- operand coercion --------------------------------------------------------

    def as_value(self, v: IntLike, type: Optional[IntType] = None) -> Value:
        """Turn a Python int into a Constant of ``type`` (default i32)."""
        if isinstance(v, Value):
            return v
        return Constant(type or I32, int(v))

    def coerce(self, value: IntLike, to_type: Type) -> Value:
        """Insert whatever cast is needed to convert ``value`` to ``to_type``."""
        value = self.as_value(value, to_type if isinstance(to_type, IntType) else None)
        if value.type == to_type:
            return value
        if isinstance(value.type, IntType) and isinstance(to_type, IntType):
            if isinstance(value, Constant):
                return Constant(to_type, value.value)
            if value.type.bits > to_type.bits:
                return self.trunc(value, to_type)
            if value.type.bits < to_type.bits:
                if value.type.signed:
                    return self.sext(value, to_type)
                return self.zext(value, to_type)
            # same width, different signedness: bitcast (no-op at runtime)
            return self.bitcast(value, to_type)
        if isinstance(value.type, PointerType) and isinstance(to_type, PointerType):
            return self.bitcast(value, to_type)
        raise IRError(f"cannot coerce {value.type!r} to {to_type!r}")

    def _binary_operands(self, lhs: IntLike, rhs: IntLike) -> tuple[Value, Value, IntType]:
        lhs_v = self.as_value(lhs)
        rhs_v = self.as_value(rhs)
        if not isinstance(lhs_v.type, IntType) or not isinstance(rhs_v.type, IntType):
            raise IRError(f"binary operands must be integers: {lhs_v.type!r}, {rhs_v.type!r}")
        result = common_int_type(lhs_v.type, rhs_v.type)
        return self.coerce(lhs_v, result), self.coerce(rhs_v, result), result

    # -- arithmetic ---------------------------------------------------------------

    def binary(self, opcode: Opcode, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        lhs_v, rhs_v, _ = self._binary_operands(lhs, rhs)
        inst = BinaryOp(opcode, lhs_v, rhs_v, name=name or self._name(opcode.value))
        return self._insert(inst)

    def add(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.ADD, lhs, rhs, name)

    def sub(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.SUB, lhs, rhs, name)

    def mul(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.MUL, lhs, rhs, name)

    def div(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        lhs_v, rhs_v, ty = self._binary_operands(lhs, rhs)
        opcode = Opcode.SDIV if ty.signed else Opcode.UDIV
        return self._insert(BinaryOp(opcode, lhs_v, rhs_v, name=name or self._name("div")))

    def rem(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        lhs_v, rhs_v, ty = self._binary_operands(lhs, rhs)
        opcode = Opcode.SREM if ty.signed else Opcode.UREM
        return self._insert(BinaryOp(opcode, lhs_v, rhs_v, name=name or self._name("rem")))

    def and_(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.XOR, lhs, rhs, name)

    def shl(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        return self.binary(Opcode.SHL, lhs, rhs, name)

    def shr(self, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        """Arithmetic or logical right shift depending on the lhs signedness."""
        lhs_v = self.as_value(lhs)
        if isinstance(lhs_v.type, IntType) and not lhs_v.type.signed:
            return self.binary(Opcode.LSHR, lhs_v, rhs, name)
        return self.binary(Opcode.ASHR, lhs_v, rhs, name)

    def neg(self, value: IntLike, name: str = "") -> Value:
        return self.sub(0, value, name or "neg")

    def not_(self, value: IntLike, name: str = "") -> Value:
        """Bitwise complement."""
        return self.xor(value, -1, name or "not")

    # -- comparisons / select ------------------------------------------------------

    def icmp(self, predicate: CmpPredicate, lhs: IntLike, rhs: IntLike, name: str = "") -> Value:
        lhs_v, rhs_v, ty = self._binary_operands(lhs, rhs)
        # Adjust predicate signedness to the promoted type.
        if not ty.signed:
            remap = {
                CmpPredicate.SLT: CmpPredicate.ULT,
                CmpPredicate.SLE: CmpPredicate.ULE,
                CmpPredicate.SGT: CmpPredicate.UGT,
                CmpPredicate.SGE: CmpPredicate.UGE,
            }
            predicate = remap.get(predicate, predicate)
        return self._insert(ICmp(predicate, lhs_v, rhs_v, name=name or self._name("cmp")))

    def to_bool(self, value: IntLike, name: str = "") -> Value:
        """Compare against zero to produce an i1 (C truthiness)."""
        value = self.as_value(value)
        if value.type == I1:
            return value
        return self.icmp(CmpPredicate.NE, value, Constant(value.type, 0) if isinstance(value.type, IntType) else 0, name or "tobool")

    def select(self, cond: Value, tval: IntLike, fval: IntLike, name: str = "") -> Value:
        tval_v = self.as_value(tval)
        fval_v = self.coerce(fval, tval_v.type)
        return self._insert(Select(cond, tval_v, fval_v, name=name or self._name("sel")))

    # -- memory ----------------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> Value:
        return self._insert(Alloca(allocated_type, name=name or self._name("addr")))

    def load(self, ptr: Value, name: str = "") -> Value:
        return self._insert(Load(ptr, name=name or self._name("ld")))

    def store(self, value: IntLike, ptr: Value) -> Value:
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store target must be a pointer, got {ptr.type!r}")
        value_v = self.coerce(value, ptr.type.pointee) if isinstance(ptr.type.pointee, IntType) else self.as_value(value)
        return self._insert(Store(value_v, ptr))

    def gep(self, base: Value, indices: Sequence[IntLike], name: str = "") -> Value:
        """Index into an array object, producing a pointer to the element.

        The base must have pointer type.  Each index steps into one array
        dimension; the result points at the ultimately selected element type.
        """
        if not isinstance(base.type, PointerType):
            raise IRError(f"gep base must be a pointer, got {base.type!r}")
        element: Type = base.type.pointee
        index_values: List[Value] = []
        for idx in indices:
            index_values.append(self.coerce(idx, I32))
            if isinstance(element, ArrayType):
                element = element.element
            # Indexing a scalar pointer (pointer arithmetic on an array
            # parameter) keeps the element type unchanged.
        result_type = PointerType(element)
        return self._insert(GetElementPtr(base, index_values, result_type, name=name or self._name("gep")))

    # -- casts --------------------------------------------------------------------------

    def trunc(self, value: Value, to_type: IntType, name: str = "") -> Value:
        return self._insert(Cast(Opcode.TRUNC, value, to_type, name=name or self._name("trunc")))

    def zext(self, value: Value, to_type: IntType, name: str = "") -> Value:
        return self._insert(Cast(Opcode.ZEXT, value, to_type, name=name or self._name("zext")))

    def sext(self, value: Value, to_type: IntType, name: str = "") -> Value:
        return self._insert(Cast(Opcode.SEXT, value, to_type, name=name or self._name("sext")))

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(Cast(Opcode.BITCAST, value, to_type, name=name or self._name("cast")))

    # -- control flow ---------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Value:
        return self._insert(Branch(target))

    def cond_br(self, cond: Value, true_target: BasicBlock, false_target: BasicBlock) -> Value:
        cond = self.to_bool(cond) if cond.type != I1 else cond
        return self._insert(CondBranch(cond, true_target, false_target))

    def switch(self, value: Value, default: BasicBlock) -> Switch:
        inst = Switch(value, default)
        self._insert(inst)
        return inst

    def ret(self, value: Optional[IntLike] = None) -> Value:
        fn = self.function
        if value is None:
            return self._insert(Return(None))
        value_v = self.coerce(value, fn.return_type) if isinstance(fn.return_type, IntType) else self.as_value(value)
        return self._insert(Return(value_v))

    # -- phi / call / DSWP ------------------------------------------------------------------

    def phi(self, type: Type, name: str = "") -> Phi:
        """Create a phi node at the start of the current block."""
        inst = Phi(type, name=name or self._name("phi"))
        if self.block is None:
            raise IRError("builder has no insertion block")
        self.block.insert(self.block.first_non_phi_index(), inst)
        return inst

    def call(self, callee: Function, args: Sequence[IntLike], name: str = "") -> Value:
        coerced: List[Value] = []
        for arg, ty in zip(args, callee.function_type.param_types):
            if isinstance(ty, IntType):
                coerced.append(self.coerce(arg, ty))
            else:
                coerced.append(self.as_value(arg))
        if len(coerced) != len(callee.function_type.param_types):
            raise IRError(
                f"call to {callee.name}: expected {len(callee.function_type.param_types)} "
                f"arguments, got {len(args)}"
            )
        return self._insert(Call(callee, coerced, name=name or self._name("call")))

    def produce(self, queue_id: int, value: IntLike) -> Value:
        return self._insert(Produce(queue_id, self.as_value(value)))

    def consume(self, queue_id: int, type: Type, name: str = "") -> Value:
        return self._insert(Consume(queue_id, type, name=name or self._name("cons")))
