"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A labelled list of instructions.

    The block does not maintain explicit predecessor lists — predecessors are
    recomputed on demand from terminator successor references, which keeps
    CFG edits (splitting, merging, simplify-cfg) simple and always
    consistent.
    """

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- instruction list management ------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, existing: Instruction, inst: Instruction) -> Instruction:
        idx = self.instructions.index(existing)
        return self.insert(idx, inst)

    def insert_after(self, existing: Instruction, inst: Instruction) -> Instruction:
        idx = self.instructions.index(existing)
        return self.insert(idx + 1, inst)

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        return self.insert_before(term, inst)

    def remove_instruction(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def index_of(self, inst: Instruction) -> int:
        return self.instructions.index(inst)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __bool__(self) -> bool:
        # A block is always truthy, even when empty — guards against the
        # classic ``block or other_block`` pitfall with ``__len__`` defined.
        return True

    # -- structure queries ------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def has_terminator(self) -> bool:
        return self.terminator is not None

    def phis(self) -> List[Phi]:
        out: List[Phi] = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                out.append(inst)
            else:
                break
        return out

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds: List["BasicBlock"] = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def is_entry(self) -> bool:
        return self.parent is not None and self.parent.entry_block is self

    # -- edits ------------------------------------------------------------------

    def replace_phi_uses_of_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """In every phi of this block rewrite references to predecessor ``old``."""
        for phi in self.phis():
            phi.replace_incoming_block(old, new)

    def erase(self) -> None:
        """Remove this block from its function, dropping all its instructions."""
        if self.parent is None:
            raise IRError(f"block {self.name} has no parent to erase from")
        for inst in list(self.instructions):
            inst.drop_all_operands()
            inst.parent = None
        self.instructions.clear()
        self.parent.remove_block(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
