"""Type system for the SSA intermediate representation.

The type lattice is intentionally small — it mirrors the subset of C that
Twill (and the CHStone kernels the thesis evaluates) actually needs:

* fixed-width integers up to 32 bits (the thesis explicitly excludes the
  64-bit CHStone kernels, and so do we);
* `void` for functions without a return value;
* pointers, used for array parameters and the address of globals;
* one- and two-dimensional arrays of integers;
* function types.

Types are immutable value objects: two structurally identical types compare
equal and hash equally, so they can be freely shared between instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import IRError


class Type:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    # Size in bytes when laid out in the simulated unified memory.
    def size_bytes(self) -> int:
        raise IRError(f"type {self!r} has no memory size")


@dataclass(frozen=True)
class VoidType(Type):
    """The type of functions that return nothing and of store/branch results."""

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width integer type.

    ``bits`` is the width (8, 16 or 32) and ``signed`` records the C-level
    signedness used for comparisons, division and right shifts.
    """

    bits: int = 32
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32):
            raise IRError(f"unsupported integer width: {self.bits}")

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python integer into this type's range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __repr__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer to ``pointee``.  Pointers occupy 4 bytes in simulated memory."""

    pointee: Type

    def size_bytes(self) -> int:
        return 4

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-length array.  Multi-dimensional arrays nest ArrayTypes."""

    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise IRError(f"negative array length: {self.count}")

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def flat_element(self) -> Type:
        """Return the innermost (non-array) element type."""
        ty: Type = self
        while isinstance(ty, ArrayType):
            ty = ty.element
        return ty

    def flat_count(self) -> int:
        """Return the total number of scalar elements."""
        n = 1
        ty: Type = self
        while isinstance(ty, ArrayType):
            n *= ty.count
            ty = ty.element
        return n

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"


@dataclass(frozen=True)
class FunctionType(Type):
    """The type of a function: return type and parameter types."""

    return_type: Type
    param_types: Tuple[Type, ...] = field(default_factory=tuple)

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.param_types)
        return f"{self.return_type!r}({params})"


# Commonly used singletons -------------------------------------------------

VOID = VoidType()
I1 = IntType(1, signed=False)
I8 = IntType(8, signed=True)
U8 = IntType(8, signed=False)
I16 = IntType(16, signed=True)
U16 = IntType(16, signed=False)
I32 = IntType(32, signed=True)
U32 = IntType(32, signed=False)


def common_int_type(a: Type, b: Type) -> IntType:
    """Return the C "usual arithmetic conversion" result of two integer types.

    Both operands are promoted to at least 32 bits; the result is unsigned if
    either 32-bit operand is unsigned (matching the C integer promotion rules
    for the subset we support).
    """
    if not isinstance(a, IntType) or not isinstance(b, IntType):
        raise IRError(f"common_int_type on non-integers: {a!r}, {b!r}")
    bits = max(32, a.bits, b.bits)
    signed = True
    if (a.bits >= 32 and not a.signed) or (b.bits >= 32 and not b.signed):
        signed = False
    return IntType(bits, signed)


def pointer_to(ty: Type) -> PointerType:
    """Convenience constructor mirroring LLVM's ``Type::getPointerTo``."""
    return PointerType(ty)
