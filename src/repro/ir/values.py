"""Value hierarchy of the SSA IR: constants, globals, arguments.

Everything that can appear as an instruction operand derives from
:class:`Value`.  A value records its *uses* (the instructions that consume
it) so transforms can rewrite def-use chains with
:meth:`Value.replace_all_uses_with` — the same mechanism LLVM provides and
that Twill's passes rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.types import ArrayType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.instructions import Instruction
    from repro.ir.function import Function


class Value:
    """Base class of everything that can be used as an operand."""

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        # Each use is (user instruction, operand index).
        self._uses: List[Tuple["Instruction", int]] = []

    # -- use list maintenance (called by Instruction operand setters) -------

    def _add_use(self, user: "Instruction", index: int) -> None:
        self._uses.append((user, index))

    def _remove_use(self, user: "Instruction", index: int) -> None:
        try:
            self._uses.remove((user, index))
        except ValueError as exc:  # pragma: no cover - indicates an internal bug
            raise IRError(f"use ({user}, {index}) not registered on {self}") from exc

    @property
    def uses(self) -> List[Tuple["Instruction", int]]:
        """Snapshot of (user, operand-index) pairs currently consuming this value."""
        return list(self._uses)

    @property
    def users(self) -> List["Instruction"]:
        """The distinct instructions that use this value, in first-use order."""
        seen: List["Instruction"] = []
        for user, _ in self._uses:
            if user not in seen:
                seen.append(user)
        return seen

    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to use ``other`` instead."""
        if other is self:
            return
        for user, index in list(self._uses):
            user.set_operand(index, other)

    # -- display -------------------------------------------------------------

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short_name()}: {self.type!r}>"


class Constant(Value):
    """An integer constant.  The stored value is always wrapped to its type."""

    def __init__(self, type: Type, value: int):
        if not isinstance(type, IntType):
            raise IRError(f"constants must have integer type, got {type!r}")
        super().__init__(type, name=str(value))
        self.value = type.wrap(int(value))

    def short_name(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))

    def __repr__(self) -> str:
        return f"<Constant {self.value}: {self.type!r}>"


class UndefValue(Value):
    """A value with no defined contents (used for uninitialised locals)."""

    def short_name(self) -> str:
        return "undef"


class GlobalVariable(Value):
    """A module-level variable.

    The *value type* (``value_type``) is what is stored in memory; the value
    itself has pointer type (taking the address of a global yields the
    global), mirroring LLVM.  ``initializer`` is either ``None``, an int, or
    a flat list of ints for arrays.
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[object] = None,
        is_const: bool = False,
    ):
        super().__init__(PointerType(value_type), name=name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_const = is_const

    def short_name(self) -> str:
        return f"@{self.name}"

    def flat_initializer(self) -> List[int]:
        """Return the initializer as a flat list of scalar ints, zero-filled."""
        if isinstance(self.value_type, ArrayType):
            count = self.value_type.flat_count()
        else:
            count = 1
        out = [0] * count

        def flatten(obj: object) -> Iterable[int]:
            if obj is None:
                return []
            if isinstance(obj, (list, tuple)):
                items: List[int] = []
                for element in obj:
                    items.extend(flatten(element))
                return items
            return [int(obj)]  # type: ignore[list-item]

        flat = list(flatten(self.initializer))
        for i, v in enumerate(flat[:count]):
            out[i] = v
        return out

    def __repr__(self) -> str:
        return f"<GlobalVariable @{self.name}: {self.value_type!r}>"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type: Type, name: str, index: int, parent: Optional["Function"] = None):
        super().__init__(type, name=name)
        self.index = index
        self.parent = parent

    def __repr__(self) -> str:
        return f"<Argument %{self.name} #{self.index}: {self.type!r}>"
