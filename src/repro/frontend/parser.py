"""Parsers for the supported C subset.

Grammar highlights (everything the CHStone-style kernels need):

* top level: global variable definitions (with brace initializers) and
  function definitions/prototypes;
* statements: compound, if/else, while, do-while, for, switch/case, return,
  break, continue, declarations, expression statements;
* expressions: full C operator precedence for the integer operators,
  assignment (simple and compound), ternary conditional, calls, array
  subscripts, casts, prefix/postfix increment, address-of.

Deliberately unsupported (raises :class:`UnsupportedFeatureError`, mirroring
the restrictions Twill documents): structs/unions/typedefs, floating point,
function pointers, variadic functions, ``goto``.

Two implementations produce identical ASTs and identical diagnostics:

* :class:`~repro.frontend.tableparser.TableParser` (the default) dispatches
  on the LL(1) predict table built at import by :mod:`repro.frontend.ll1`
  and folds binary operators iteratively with an explicit operator stack;
* :class:`RecursiveDescentParser` (this module) is the original
  recursive-descent implementation, kept as the differential-testing
  reference and selectable with ``REPRO_PARSER=rd``.

:func:`Parser` is a factory that picks the implementation per call, so all
existing ``Parser(tokens, ...)`` call sites keep working unchanged.

Two error modes: the default raises on the first problem (what the compile
pipeline wants — a bad workload must not half-compile), while
``Parser(tokens, recover=True)`` collects every error as a
:class:`~repro.frontend.diagnostics.Diagnostic` and re-synchronises on
``;``/``}`` (panic mode), which is what ``repro ingest`` uses to report all
of a file's problems in one pass.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple, Union

from repro import perf
from repro.errors import FrontendError, ParseError, UnsupportedFeatureError
from repro.frontend.diagnostics import MAX_DIAGNOSTICS, Diagnostic
from repro.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    Param,
    PostfixOp,
    ReturnStmt,
    Stmt,
    SwitchCase,
    SwitchStmt,
    TranslationUnit,
    UnaryOp,
    WhileStmt,
)
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.ll1 import _ASSIGN_OPS, _BINARY_PRECEDENCE, _TYPE_KEYWORDS

#: Environment variable selecting the parser implementation ("rd" = legacy
#: recursive descent; anything else = the table-driven default).
PARSER_ENV = "REPRO_PARSER"


class _ParserBase:
    """Token stream, panic-mode recovery and type-specifier scanning shared
    by both parser implementations."""

    def __init__(self, tokens: List[Token], recover: bool = False, filename: str = "<string>"):
        self.tokens = tokens
        self.pos = 0
        self.recover = recover
        self.filename = filename
        #: Collected :class:`Diagnostic` records (recover mode only).
        self.diagnostics: List[Diagnostic] = []

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _check_punct(self, *texts: str) -> bool:
        return self._peek().is_punct(*texts)

    def _accept_punct(self, *texts: str) -> Optional[Token]:
        if self._check_punct(*texts):
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", line=tok.line, col=tok.col)
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", line=tok.line, col=tok.col)
        return self._advance()

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message, line=tok.line, col=tok.col)

    # -- panic-mode recovery ------------------------------------------------------

    def _record_error(self, exc: FrontendError) -> None:
        if len(self.diagnostics) < MAX_DIAGNOSTICS:
            self.diagnostics.append(Diagnostic.from_error(exc, self.filename))

    def _too_many_errors(self) -> bool:
        return len(self.diagnostics) >= MAX_DIAGNOSTICS

    def _sync_statement(self) -> None:
        """Skip to just past the next ``;`` at the current nesting level, or
        stop before the enclosing ``}`` (so the compound can close normally).
        Nested braces are skipped whole."""
        depth = 0
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                return
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                if depth == 0:
                    return
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                self._advance()
                return
            self._advance()

    def _sync_top_level(self) -> None:
        """Skip to a plausible start of the next external declaration: past a
        top-level ``;`` or past the ``}`` that closes the broken definition."""
        depth = 0
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                return
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                self._advance()
                if depth <= 1:
                    return
                depth -= 1
                continue
            elif tok.is_punct(";") and depth == 0:
                self._advance()
                return
            self._advance()

    # -- type parsing --------------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    def _parse_type_specifier(self) -> CType:
        """Parse declaration specifiers: const/static/volatile + base type + signedness."""
        signed = True
        signed_explicit = False
        base: Optional[str] = None
        is_const = False
        saw_any = False
        while True:
            tok = self._peek()
            if tok.is_keyword("const"):
                is_const = True
                self._advance()
            elif tok.is_keyword("static", "volatile"):
                self._advance()
            elif tok.is_keyword("unsigned"):
                signed = False
                signed_explicit = True
                self._advance()
            elif tok.is_keyword("signed"):
                signed = True
                signed_explicit = True
                self._advance()
            elif tok.is_keyword("void", "char", "short", "int", "long"):
                if tok.text == "long" and base == "long":
                    raise UnsupportedFeatureError(
                        "64-bit integers (long long) are not supported, matching Twill", line=tok.line, col=tok.col
                    )
                if base in (None, "long") or (base == "short" and tok.text == "int") or (
                    base == "int" and tok.text == "int"
                ):
                    base = tok.text if base is None or base == "int" else base
                self._advance()
            elif tok.is_keyword("float", "double"):
                raise UnsupportedFeatureError("floating point is not supported", line=tok.line, col=tok.col)
            elif tok.is_keyword("struct", "typedef"):
                raise UnsupportedFeatureError(f"'{tok.text}' is not supported", line=tok.line, col=tok.col)
            else:
                break
            saw_any = True
        if not saw_any:
            raise self._error("expected a type specifier")
        if base is None:
            base = "int"  # bare 'unsigned' / 'signed'
        ty = CType(base=base, signed=signed, is_const=is_const)
        # pointer declarators
        while self._accept_punct("*"):
            ty.pointer += 1
        return ty

    def _parse_array_suffix(self, ty: CType) -> CType:
        """Parse trailing ``[N][M]...`` dimensions onto a copy of ``ty``."""
        dims: List[int] = []
        while self._accept_punct("["):
            if self._check_punct("]"):
                # unsized dimension (array parameter): decay to pointer
                self._expect_punct("]")
                ty.pointer += 1
                continue
            dim = self._parse_constant_expression()
            dims.append(dim)
            self._expect_punct("]")
        ty.array_dims = dims
        return ty

    def _parse_constant_expression(self) -> int:
        expr = self._parse_conditional()
        value = evaluate_constant_expr(expr)
        if value is None:
            raise self._error("expected a constant expression")
        return value

    def _parse_conditional(self) -> Expr:  # pragma: no cover - overridden
        raise NotImplementedError


class RecursiveDescentParser(_ParserBase):
    """The original recursive-descent implementation (``REPRO_PARSER=rd``)."""

    # -- top level -------------------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self._peek().kind is not TokenKind.EOF:
            if not self.recover:
                self._parse_external_declaration(unit)
                continue
            if self._too_many_errors():
                break
            before = self.pos
            try:
                self._parse_external_declaration(unit)
            except FrontendError as exc:
                self._record_error(exc)
                self._sync_top_level()
                if self.pos == before:
                    self._advance()
        return unit

    def _parse_external_declaration(self, unit: TranslationUnit) -> None:
        tok = self._peek()
        if tok.is_keyword("struct", "typedef"):
            raise UnsupportedFeatureError(f"'{tok.text}' is not supported", line=tok.line, col=tok.col)
        if tok.is_keyword("float", "double"):
            raise UnsupportedFeatureError("floating point is not supported", line=tok.line, col=tok.col)
        if not self._at_type():
            raise self._error(f"expected a declaration, found {self._peek().text!r}")
        base_type = self._parse_type_specifier()
        # `void foo(void);` etc.
        name_tok = self._expect_ident()
        if self._check_punct("("):
            unit.functions.append(self._parse_function(base_type, name_tok))
            return
        # global variable declarator list
        while True:
            ty = CType(base_type.base, base_type.signed, base_type.is_const, base_type.pointer, [])
            ty = self._parse_array_suffix(ty)
            init: Optional[Union[Expr, list]] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            unit.globals.append(
                GlobalDecl(name=name_tok.text, type=ty, init=init, line=name_tok.line)
            )
            if self._accept_punct(","):
                name_tok = self._expect_ident()
                continue
            self._expect_punct(";")
            break

    def _parse_function(self, return_type: CType, name_tok: Token) -> FunctionDef:
        self._expect_punct("(")
        params: List[Param] = []
        if not self._check_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    ptype = self._parse_type_specifier()
                    pname = self._expect_ident()
                    ptype = self._parse_array_suffix(ptype)
                    if ptype.array_dims:
                        # array parameters decay to pointers (drop first dim)
                        ptype.pointer += 1
                        ptype.array_dims = ptype.array_dims[1:]
                    params.append(Param(name=pname.text, type=ptype, line=pname.line))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return FunctionDef(name=name_tok.text, return_type=return_type, params=params, body=None, line=name_tok.line)
        body = self._parse_compound()
        return FunctionDef(
            name=name_tok.text, return_type=return_type, params=params, body=body, line=name_tok.line
        )

    # -- initializers ------------------------------------------------------------------

    def _parse_initializer(self) -> Union[Expr, list]:
        if self._accept_punct("{"):
            items: List[Union[Expr, list]] = []
            if not self._check_punct("}"):
                while True:
                    items.append(self._parse_initializer())
                    if not self._accept_punct(","):
                        break
                    if self._check_punct("}"):
                        break  # trailing comma
            self._expect_punct("}")
            return items
        return self._parse_assignment_expr()

    # -- statements -----------------------------------------------------------------------

    def _parse_compound(self) -> CompoundStmt:
        open_tok = self._expect_punct("{")
        body: List[Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError(
                    "unterminated compound statement", line=open_tok.line, col=open_tok.col
                )
            if not self.recover:
                body.append(self._parse_statement())
                continue
            if self._too_many_errors():
                break
            before = self.pos
            try:
                body.append(self._parse_statement())
            except FrontendError as exc:
                self._record_error(exc)
                self._sync_statement()
                if self.pos == before:
                    self._advance()
        self._expect_punct("}")
        return CompoundStmt(body=body, line=open_tok.line)

    def _parse_statement(self) -> Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("switch"):
            return self._parse_switch()
        if tok.is_keyword("return"):
            self._advance()
            value = None if self._check_punct(";") else self._parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value=value, line=tok.line)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return BreakStmt(line=tok.line)
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ContinueStmt(line=tok.line)
        if self._at_type():
            return self._parse_declaration_statement()
        if tok.is_punct(";"):
            self._advance()
            return ExprStmt(expr=None, line=tok.line)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ExprStmt(expr=expr, line=tok.line)

    def _parse_declaration_statement(self) -> Stmt:
        """Parse a local declaration; multiple declarators become a compound."""
        base_type = self._parse_type_specifier()
        decls: List[Stmt] = []
        while True:
            name_tok = self._expect_ident()
            ty = CType(base_type.base, base_type.signed, base_type.is_const, base_type.pointer, [])
            ty = self._parse_array_suffix(ty)
            init: Optional[Union[Expr, list]] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(DeclStmt(name=name_tok.text, type=ty, init=init, line=name_tok.line))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return CompoundStmt(body=decls, line=decls[0].line)

    def _parse_if(self) -> IfStmt:
        tok = self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise: Optional[Stmt] = None
        if self._peek().is_keyword("else"):
            self._advance()
            otherwise = self._parse_statement()
        return IfStmt(cond=cond, then=then, otherwise=otherwise, line=tok.line)

    def _parse_while(self) -> WhileStmt:
        tok = self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body, line=tok.line)

    def _parse_do_while(self) -> DoWhileStmt:
        tok = self._advance()
        body = self._parse_statement()
        if not self._peek().is_keyword("while"):
            raise self._error("expected 'while' after do-body")
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoWhileStmt(cond=cond, body=body, line=tok.line)

    def _parse_for(self) -> ForStmt:
        tok = self._advance()
        self._expect_punct("(")
        init: Optional[Stmt] = None
        if not self._check_punct(";"):
            if self._at_type():
                init = self._parse_declaration_statement()
            else:
                expr = self._parse_expression()
                self._expect_punct(";")
                init = ExprStmt(expr=expr, line=tok.line)
        else:
            self._expect_punct(";")
        cond: Optional[Expr] = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: Optional[Expr] = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ForStmt(init=init, cond=cond, step=step, body=body, line=tok.line)

    def _parse_switch(self) -> SwitchStmt:
        tok = self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[SwitchCase] = []
        current: Optional[SwitchCase] = None
        while not self._check_punct("}"):
            t = self._peek()
            if t.is_keyword("case"):
                self._advance()
                value = self._parse_constant_expression()
                self._expect_punct(":")
                current = SwitchCase(value=value, body=[], line=t.line)
                cases.append(current)
            elif t.is_keyword("default"):
                self._advance()
                self._expect_punct(":")
                current = SwitchCase(value=None, body=[], line=t.line)
                cases.append(current)
            else:
                if current is None:
                    raise self._error("statement before first case label in switch")
                current.body.append(self._parse_statement())
        self._expect_punct("}")
        return SwitchStmt(cond=cond, cases=cases, line=tok.line)

    # -- expressions ------------------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        """Full expression including the comma operator (evaluates left to right)."""
        expr = self._parse_assignment_expr()
        while self._check_punct(","):
            self._advance()
            rhs = self._parse_assignment_expr()
            expr = BinaryExpr(op=",", lhs=expr, rhs=rhs, line=expr.line)
        return expr

    def _parse_assignment_expr(self) -> Expr:
        lhs = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment_expr()
            return Assignment(op=tok.text, target=lhs, value=value, line=tok.line)
        return lhs

    def _parse_conditional(self) -> Expr:
        cond = self._parse_binary(1)
        if self._accept_punct("?"):
            then = self._parse_assignment_expr()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return Conditional(cond=cond, then=then, otherwise=otherwise, line=cond.line)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                break
            prec = _BINARY_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                break
            self._advance()
            rhs = self._parse_binary(prec + 1)
            lhs = BinaryExpr(op=tok.text, lhs=lhs, rhs=rhs, line=tok.line)
        return lhs

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.is_punct("-", "+", "!", "~", "&", "*"):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(op=tok.text, operand=operand, line=tok.line)
        if tok.is_punct("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(op=tok.text, operand=operand, line=tok.line)
        if tok.is_punct("(") and self._peek(1).kind is TokenKind.KEYWORD and self._peek(1).text in _TYPE_KEYWORDS:
            # cast expression
            self._advance()
            ty = self._parse_type_specifier()
            self._expect_punct(")")
            operand = self._parse_unary()
            return CastExpr(target_type=ty, operand=operand, line=tok.line)
        if tok.is_keyword("sizeof"):
            raise UnsupportedFeatureError("sizeof is not supported", line=tok.line, col=tok.col)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = IndexExpr(base=expr, index=index, line=tok.line)
            elif tok.is_punct("(") and isinstance(expr, Identifier):
                self._advance()
                args: List[Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = CallExpr(name=expr.name, args=args, line=tok.line)
            elif tok.is_punct("++", "--"):
                self._advance()
                expr = PostfixOp(op=tok.text, operand=expr, line=tok.line)
            elif tok.is_punct(".", "->"):
                raise UnsupportedFeatureError("struct member access is not supported", line=tok.line, col=tok.col)
            else:
                break
        return expr

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind in (TokenKind.INT_LITERAL, TokenKind.CHAR_LITERAL):
            self._advance()
            return IntLiteral(value=tok.value or 0, line=tok.line)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return Identifier(name=tok.text, line=tok.line)
        if tok.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if tok.kind is TokenKind.STRING_LITERAL:
            raise UnsupportedFeatureError("string literals are not supported", line=tok.line, col=tok.col)
        raise self._error(f"unexpected token {tok.text!r} in expression")


def active_parser_class() -> type:
    """The parser implementation selected by ``REPRO_PARSER`` (read per call
    so tests can flip implementations without re-importing)."""
    if os.environ.get(PARSER_ENV, "").strip().lower() in ("rd", "recursive", "legacy"):
        return RecursiveDescentParser
    from repro.frontend.tableparser import TableParser

    return TableParser


def Parser(tokens: List[Token], recover: bool = False, filename: str = "<string>"):
    """Factory: build the active parser implementation over ``tokens``."""
    return active_parser_class()(tokens, recover=recover, filename=filename)


def evaluate_constant_expr(expr: Expr) -> Optional[int]:
    """Fold a constant expression at parse time; returns None if not constant."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.operand is not None:
        v = evaluate_constant_expr(expr.operand)
        if v is None:
            return None
        return {"-": -v, "+": v, "~": ~v, "!": int(not v)}.get(expr.op)
    if isinstance(expr, BinaryExpr) and expr.lhs is not None and expr.rhs is not None:
        a = evaluate_constant_expr(expr.lhs)
        b = evaluate_constant_expr(expr.rhs)
        if a is None or b is None:
            return None
        try:
            return {
                "+": a + b, "-": a - b, "*": a * b,
                "/": a // b if b else None, "%": a % b if b else None,
                "<<": a << b, ">>": a >> b,
                "&": a & b, "|": a | b, "^": a ^ b,
                "==": int(a == b), "!=": int(a != b),
                "<": int(a < b), ">": int(a > b), "<=": int(a <= b), ">=": int(a >= b),
                "&&": int(bool(a) and bool(b)), "||": int(bool(a) or bool(b)),
            }.get(expr.op)
        except (ZeroDivisionError, TypeError):
            return None
    if isinstance(expr, Conditional):
        c = evaluate_constant_expr(expr.cond) if expr.cond else None
        if c is None:
            return None
        branch = expr.then if c else expr.otherwise
        return evaluate_constant_expr(branch) if branch else None
    return None


def parse(source: str) -> TranslationUnit:
    """Tokenize and parse a C source string into a TranslationUnit."""
    with perf.stage("lex"):
        tokens = tokenize(source)
    with perf.stage("parse"):
        return Parser(tokens).parse_translation_unit()
