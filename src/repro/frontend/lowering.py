"""Lowering of the C AST into SSA IR (pre-mem2reg form).

Every local variable and scalar parameter gets an ``alloca`` in the entry
block; the mem2reg pass later promotes the scalar ones into SSA registers —
exactly the pipeline Twill runs (``clang -O2`` followed by ``mem2reg`` and
friends, thesis §5.1).

The lowering produces one IR function per C function plus one IR global per
C global.  Two intrinsic declarations are created on demand:

* ``print_int(i32) -> void`` — the only observable output channel.  The
  functional interpreter records its arguments, and tests compare them
  against pure-Python reference implementations of each workload.
* ``twill_checksum(i32) -> i32`` — identity at run time, but never folded;
  used by workloads to keep values alive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro import perf
from repro.errors import SemanticError, UnsupportedFeatureError
from repro.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    PostfixOp,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    TranslationUnit,
    UnaryOp,
    WhileStmt,
)
from repro.frontend.parser import evaluate_constant_expr, parse
from repro.ir import (
    I1,
    I32,
    VOID,
    ArrayType,
    BasicBlock,
    CmpPredicate,
    Constant,
    Function,
    FunctionType,
    GlobalVariable,
    IntType,
    IRBuilder,
    Module,
    Opcode,
    PointerType,
    Type,
    Value,
    verify_module,
)

# Map from C binary operator text to (opcode name used by IRBuilder, is_comparison).
_CMP_PREDICATES = {
    "==": CmpPredicate.EQ,
    "!=": CmpPredicate.NE,
    "<": CmpPredicate.SLT,
    "<=": CmpPredicate.SLE,
    ">": CmpPredicate.SGT,
    ">=": CmpPredicate.SGE,
}

INTRINSIC_NAMES = ("print_int", "twill_checksum")


def ctype_to_ir(ctype: CType) -> Type:
    """Convert a source-level type to an IR type."""
    if ctype.is_void():
        return VOID
    base_bits = ctype.bit_width()
    scalar: Type = IntType(base_bits, ctype.signed)
    ty: Type = scalar
    for dim in reversed(ctype.array_dims):
        ty = ArrayType(ty, dim)
    for _ in range(ctype.pointer):
        ty = PointerType(ty)
    return ty


class Scope:
    """One lexical scope mapping names to (storage pointer, source type)."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Tuple[Value, CType]] = {}

    def define(self, name: str, storage: Value, ctype: CType, line: int = 0) -> None:
        if name in self.symbols:
            raise SemanticError(f"redefinition of '{name}'", line=line)
        self.symbols[name] = (storage, ctype)

    def lookup(self, name: str) -> Optional[Tuple[Value, CType]]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class FunctionLowering:
    """Lowers the body of one C function into an IR function."""

    def __init__(self, module: Module, unit_types: Dict[str, CType], fn_def: FunctionDef, ir_fn: Function):
        self.module = module
        self.fn_def = fn_def
        self.ir_fn = ir_fn
        self.builder = IRBuilder()
        self.global_types = unit_types
        self.scope = Scope()
        # (break target, continue target) stack for loops / switches.
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    # -- plumbing ---------------------------------------------------------------

    def _new_block(self, hint: str) -> BasicBlock:
        return self.ir_fn.create_block(hint)

    def _ensure_open_block(self) -> None:
        """After a terminator, open a fresh (dead) block so lowering can continue."""
        if self.builder.block is not None and self.builder.block.has_terminator():
            self.builder.set_insert_block(self._new_block("dead"))

    def _int_type(self, ctype: CType) -> IntType:
        ty = ctype_to_ir(ctype)
        if not isinstance(ty, IntType):
            raise SemanticError(f"expected an integer type, got {ctype}")
        return ty

    # -- entry ------------------------------------------------------------------

    def lower(self) -> None:
        entry = self._new_block("entry")
        self.builder.set_insert_block(entry)
        # Parameters: spill each one to an alloca so the body can take its
        # address / reassign it; mem2reg promotes the scalar ones back.
        for param, arg in zip(self.fn_def.params, self.ir_fn.args):
            assert param.type is not None
            slot = self.builder.alloca(arg.type, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(param.name, slot, param.type, line=param.line)
        assert self.fn_def.body is not None
        self.lower_statement(self.fn_def.body)
        # Implicit return for functions that fall off the end.
        if self.builder.block is not None and not self.builder.block.has_terminator():
            if self.ir_fn.return_type.is_void():
                self.builder.ret(None)
            else:
                self.builder.ret(0)
        # Terminate any dead blocks created after returns.
        for block in self.ir_fn.blocks:
            if not block.has_terminator():
                saved = self.builder.block
                self.builder.set_insert_block(block)
                if self.ir_fn.return_type.is_void():
                    self.builder.ret(None)
                else:
                    self.builder.ret(0)
                self.builder.set_insert_block(saved)

    # ------------------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------------------

    def lower_statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, CompoundStmt):
            outer = self.scope
            self.scope = Scope(parent=outer)
            for s in stmt.body:
                self.lower_statement(s)
            self.scope = outer
        elif isinstance(stmt, DeclStmt):
            self.lower_declaration(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self.lower_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, SwitchStmt):
            self.lower_switch(stmt)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                self.builder.ret(None)
            else:
                value, _ = self.lower_expr(stmt.value)
                self.builder.ret(value)
            self._ensure_open_block()
        elif isinstance(stmt, BreakStmt):
            if not self.break_targets:
                raise SemanticError("'break' outside of a loop or switch", line=stmt.line)
            self.builder.br(self.break_targets[-1])
            self._ensure_open_block()
        elif isinstance(stmt, ContinueStmt):
            if not self.continue_targets:
                raise SemanticError("'continue' outside of a loop", line=stmt.line)
            self.builder.br(self.continue_targets[-1])
            self._ensure_open_block()
        else:  # pragma: no cover - parser only produces the kinds above
            raise SemanticError(f"unsupported statement {type(stmt).__name__}", line=stmt.line)

    def lower_declaration(self, stmt: DeclStmt) -> None:
        assert stmt.type is not None
        ir_type = ctype_to_ir(stmt.type)
        slot = self.builder.alloca(ir_type, name=stmt.name)
        self.scope.define(stmt.name, slot, stmt.type, line=stmt.line)
        if stmt.init is None:
            return
        if isinstance(stmt.init, list):
            if not isinstance(ir_type, ArrayType):
                raise SemanticError(f"brace initializer on non-array '{stmt.name}'", line=stmt.line)
            self._lower_array_initializer(slot, ir_type, stmt.init, stmt.line)
        else:
            value, _ = self.lower_expr(stmt.init)
            if isinstance(ir_type, ArrayType):
                raise SemanticError(f"scalar initializer on array '{stmt.name}'", line=stmt.line)
            self.builder.store(value, slot)

    def _lower_array_initializer(self, slot: Value, array_type: ArrayType, init: list, line: int) -> None:
        """Store a (possibly nested) brace initializer element by element."""
        flat_exprs: List[Expr] = []

        def flatten(items: Union[list, Expr]) -> None:
            if isinstance(items, list):
                for it in items:
                    flatten(it)
            else:
                flat_exprs.append(items)

        flatten(init)
        element = array_type.flat_element()
        total = array_type.flat_count()
        if len(flat_exprs) > total:
            raise SemanticError(f"too many initializer values ({len(flat_exprs)} > {total})", line=line)
        # Index through the flattened array using successive dimension strides.
        dims: List[int] = []
        ty: Type = array_type
        while isinstance(ty, ArrayType):
            dims.append(ty.count)
            ty = ty.element
        for flat_index, expr in enumerate(flat_exprs):
            indices: List[int] = []
            rem = flat_index
            for d in reversed(dims):
                indices.append(rem % d)
                rem //= d
            indices.reverse()
            ptr = self.builder.gep(slot, indices)
            value, _ = self.lower_expr(expr)
            self.builder.store(value, ptr)

    def lower_if(self, stmt: IfStmt) -> None:
        assert stmt.cond is not None and stmt.then is not None
        cond = self.lower_condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = self._new_block("if.else") if stmt.otherwise is not None else merge_block
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_insert_block(then_block)
        self.lower_statement(stmt.then)
        if not self.builder.block.has_terminator():
            self.builder.br(merge_block)

        if stmt.otherwise is not None:
            self.builder.set_insert_block(else_block)
            self.lower_statement(stmt.otherwise)
            if not self.builder.block.has_terminator():
                self.builder.br(merge_block)

        self.builder.set_insert_block(merge_block)

    def lower_while(self, stmt: WhileStmt) -> None:
        assert stmt.cond is not None and stmt.body is not None
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        exit_block = self._new_block("while.end")
        self.builder.br(cond_block)

        self.builder.set_insert_block(cond_block)
        cond = self.lower_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, exit_block)

        self.builder.set_insert_block(body_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(cond_block)
        self.lower_statement(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if not self.builder.block.has_terminator():
            self.builder.br(cond_block)

        self.builder.set_insert_block(exit_block)

    def lower_do_while(self, stmt: DoWhileStmt) -> None:
        assert stmt.cond is not None and stmt.body is not None
        body_block = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        exit_block = self._new_block("do.end")
        self.builder.br(body_block)

        self.builder.set_insert_block(body_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(cond_block)
        self.lower_statement(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if not self.builder.block.has_terminator():
            self.builder.br(cond_block)

        self.builder.set_insert_block(cond_block)
        cond = self.lower_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, exit_block)

        self.builder.set_insert_block(exit_block)

    def lower_for(self, stmt: ForStmt) -> None:
        assert stmt.body is not None
        outer = self.scope
        self.scope = Scope(parent=outer)
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        exit_block = self._new_block("for.end")
        self.builder.br(cond_block)

        self.builder.set_insert_block(cond_block)
        if stmt.cond is not None:
            cond = self.lower_condition(stmt.cond)
            self.builder.cond_br(cond, body_block, exit_block)
        else:
            self.builder.br(body_block)

        self.builder.set_insert_block(body_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        self.lower_statement(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if not self.builder.block.has_terminator():
            self.builder.br(step_block)

        self.builder.set_insert_block(step_block)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.builder.br(cond_block)

        self.builder.set_insert_block(exit_block)
        self.scope = outer

    def lower_switch(self, stmt: SwitchStmt) -> None:
        assert stmt.cond is not None
        cond_value, cond_type = self.lower_expr(stmt.cond)
        exit_block = self._new_block("switch.end")
        case_blocks: List[BasicBlock] = []
        default_block: Optional[BasicBlock] = None
        for i, case in enumerate(stmt.cases):
            block = self._new_block(f"switch.case{i}" if case.value is not None else "switch.default")
            case_blocks.append(block)
            if case.value is None:
                default_block = block
        switch_inst = self.builder.switch(
            cond_value, default_block if default_block is not None else exit_block
        )
        for case, block in zip(stmt.cases, case_blocks):
            if case.value is not None:
                switch_inst.add_case(case.value, block)

        self.break_targets.append(exit_block)
        for i, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.set_insert_block(block)
            for s in case.body:
                self.lower_statement(s)
            if not self.builder.block.has_terminator():
                # C fallthrough: continue into the next case block (or exit).
                next_block = case_blocks[i + 1] if i + 1 < len(case_blocks) else exit_block
                self.builder.br(next_block)
        self.break_targets.pop()
        self.builder.set_insert_block(exit_block)

    # ------------------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------------------

    def lower_condition(self, expr: Expr) -> Value:
        """Lower an expression used as a branch condition to an i1."""
        value, _ = self.lower_expr(expr)
        return self.builder.to_bool(value)

    def lower_expr(self, expr: Expr) -> Tuple[Value, CType]:
        """Lower an expression as an rvalue; returns (IR value, source type)."""
        if isinstance(expr, IntLiteral):
            return Constant(I32, expr.value), CType("int", signed=True)
        if isinstance(expr, Identifier):
            return self._lower_identifier_rvalue(expr)
        if isinstance(expr, IndexExpr):
            ptr, elem_type = self.lower_lvalue(expr)
            if elem_type.is_array():
                # Indexing a 2-D array yields a row, which decays to a pointer
                # to its first element when used as an rvalue.
                decayed = self.builder.gep(ptr, [0] * len(elem_type.array_dims))
                decayed_type = CType(elem_type.base, elem_type.signed, elem_type.is_const, elem_type.pointer + 1, [])
                return decayed, decayed_type
            return self.builder.load(ptr), elem_type
        if isinstance(expr, UnaryOp):
            return self.lower_unary(expr)
        if isinstance(expr, PostfixOp):
            return self.lower_postfix(expr)
        if isinstance(expr, BinaryExpr):
            return self.lower_binary(expr)
        if isinstance(expr, Assignment):
            return self.lower_assignment(expr)
        if isinstance(expr, Conditional):
            return self.lower_conditional(expr)
        if isinstance(expr, CallExpr):
            return self.lower_call(expr)
        if isinstance(expr, CastExpr):
            assert expr.target_type is not None and expr.operand is not None
            value, _ = self.lower_expr(expr.operand)
            target_ir = ctype_to_ir(expr.target_type)
            if not isinstance(target_ir, IntType):
                raise SemanticError("only integer casts are supported", line=expr.line)
            return self.builder.coerce(value, target_ir), expr.target_type
        raise SemanticError(f"unsupported expression {type(expr).__name__}", line=expr.line)

    def _lower_identifier_rvalue(self, expr: Identifier) -> Tuple[Value, CType]:
        binding = self._lookup(expr)
        storage, ctype = binding
        if ctype.is_array():
            # Arrays decay to a pointer to their first element.
            indices = [0] * len(ctype.array_dims)
            decayed = self.builder.gep(storage, indices)
            decayed_type = CType(ctype.base, ctype.signed, ctype.is_const, ctype.pointer + 1, [])
            return decayed, decayed_type
        return self.builder.load(storage), ctype

    def _lookup(self, expr: Identifier) -> Tuple[Value, CType]:
        binding = self.scope.lookup(expr.name)
        if binding is not None:
            return binding
        if self.module.has_global(expr.name):
            g = self.module.get_global(expr.name)
            ctype = self.global_types[expr.name]
            return g, ctype
        raise SemanticError(f"use of undeclared identifier '{expr.name}'", line=expr.line)

    def lower_lvalue(self, expr: Expr) -> Tuple[Value, CType]:
        """Lower an expression in lvalue position; returns (pointer, pointee source type)."""
        if isinstance(expr, Identifier):
            storage, ctype = self._lookup(expr)
            return storage, ctype
        if isinstance(expr, IndexExpr):
            assert expr.base is not None and expr.index is not None
            base_ptr, base_type = self.lower_lvalue(expr.base)
            index_value, _ = self.lower_expr(expr.index)
            if base_type.is_array():
                ptr = self.builder.gep(base_ptr, [index_value])
                return ptr, base_type.element_type()
            if base_type.is_pointer():
                loaded = self.builder.load(base_ptr)
                ptr = self.builder.gep(loaded, [index_value])
                return ptr, base_type.element_type()
            raise SemanticError("subscripted value is neither array nor pointer", line=expr.line)
        if isinstance(expr, UnaryOp) and expr.op == "*":
            assert expr.operand is not None
            value, ctype = self.lower_expr(expr.operand)
            if not ctype.is_pointer():
                raise SemanticError("cannot dereference a non-pointer", line=expr.line)
            return value, ctype.element_type()
        raise SemanticError(f"expression is not assignable ({type(expr).__name__})", line=expr.line)

    def lower_unary(self, expr: UnaryOp) -> Tuple[Value, CType]:
        assert expr.operand is not None
        if expr.op == "&":
            ptr, ctype = self.lower_lvalue(expr.operand)
            ref_type = CType(ctype.base, ctype.signed, ctype.is_const, ctype.pointer + 1, list(ctype.array_dims))
            if ctype.is_array():
                # &array yields a pointer to the first element in our model
                ptr = self.builder.gep(ptr, [0] * len(ctype.array_dims))
                ref_type = CType(ctype.base, ctype.signed, ctype.is_const, ctype.pointer + 1, [])
            return ptr, ref_type
        if expr.op == "*":
            ptr, pointee = self.lower_lvalue(expr)
            return self.builder.load(ptr), pointee
        if expr.op in ("++", "--"):
            ptr, ctype = self.lower_lvalue(expr.operand)
            old = self.builder.load(ptr)
            delta = 1 if expr.op == "++" else -1
            new = self.builder.add(old, delta) if delta == 1 else self.builder.sub(old, 1)
            self.builder.store(new, ptr)
            return new, ctype
        value, ctype = self.lower_expr(expr.operand)
        if expr.op == "-":
            return self.builder.neg(value), ctype
        if expr.op == "+":
            return value, ctype
        if expr.op == "~":
            return self.builder.not_(value), ctype
        if expr.op == "!":
            as_bool = self.builder.to_bool(value)
            flipped = self.builder.icmp(CmpPredicate.EQ, as_bool, 0)
            return self.builder.coerce(flipped, I32), CType("int")
        raise SemanticError(f"unsupported unary operator '{expr.op}'", line=expr.line)

    def lower_postfix(self, expr: PostfixOp) -> Tuple[Value, CType]:
        assert expr.operand is not None
        ptr, ctype = self.lower_lvalue(expr.operand)
        old = self.builder.load(ptr)
        new = self.builder.add(old, 1) if expr.op == "++" else self.builder.sub(old, 1)
        self.builder.store(new, ptr)
        return old, ctype

    def lower_binary(self, expr: BinaryExpr) -> Tuple[Value, CType]:
        assert expr.lhs is not None and expr.rhs is not None
        op = expr.op
        if op == ",":
            self.lower_expr(expr.lhs)
            return self.lower_expr(expr.rhs)
        if op in ("&&", "||"):
            return self.lower_logical(expr)
        lhs, lhs_type = self.lower_expr(expr.lhs)
        rhs, rhs_type = self.lower_expr(expr.rhs)
        result_type = CType("int", signed=lhs_type.signed and rhs_type.signed)
        if op in _CMP_PREDICATES:
            pred = _CMP_PREDICATES[op]
            cmp = self.builder.icmp(pred, lhs, rhs)
            return self.builder.coerce(cmp, I32), CType("int")
        table = {
            "+": self.builder.add,
            "-": self.builder.sub,
            "*": self.builder.mul,
            "/": self.builder.div,
            "%": self.builder.rem,
            "&": self.builder.and_,
            "|": self.builder.or_,
            "^": self.builder.xor,
            "<<": self.builder.shl,
            ">>": self.builder.shr,
        }
        if op not in table:
            raise SemanticError(f"unsupported binary operator '{op}'", line=expr.line)
        return table[op](lhs, rhs), result_type

    def lower_logical(self, expr: BinaryExpr) -> Tuple[Value, CType]:
        """Short-circuit && / || with control flow and a phi merge."""
        assert expr.lhs is not None and expr.rhs is not None
        rhs_block = self._new_block("land.rhs" if expr.op == "&&" else "lor.rhs")
        merge_block = self._new_block("land.end" if expr.op == "&&" else "lor.end")

        lhs_bool = self.lower_condition(expr.lhs)
        lhs_end = self.builder.block
        if expr.op == "&&":
            self.builder.cond_br(lhs_bool, rhs_block, merge_block)
            short_value = 0
        else:
            self.builder.cond_br(lhs_bool, merge_block, rhs_block)
            short_value = 1

        self.builder.set_insert_block(rhs_block)
        rhs_bool = self.lower_condition(expr.rhs)
        rhs_value = self.builder.coerce(rhs_bool, I32)
        rhs_end = self.builder.block
        self.builder.br(merge_block)

        self.builder.set_insert_block(merge_block)
        phi = self.builder.phi(I32, name="logical")
        phi.add_incoming(Constant(I32, short_value), lhs_end)
        phi.add_incoming(rhs_value, rhs_end)
        return phi, CType("int")

    def lower_conditional(self, expr: Conditional) -> Tuple[Value, CType]:
        assert expr.cond is not None and expr.then is not None and expr.otherwise is not None
        cond = self.lower_condition(expr.cond)
        then_block = self._new_block("cond.true")
        else_block = self._new_block("cond.false")
        merge_block = self._new_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_insert_block(then_block)
        then_value, then_type = self.lower_expr(expr.then)
        then_value = self.builder.coerce(then_value, I32) if isinstance(then_value.type, IntType) else then_value
        then_end = self.builder.block
        self.builder.br(merge_block)

        self.builder.set_insert_block(else_block)
        else_value, _ = self.lower_expr(expr.otherwise)
        else_value = self.builder.coerce(else_value, I32) if isinstance(else_value.type, IntType) else else_value
        else_end = self.builder.block
        self.builder.br(merge_block)

        self.builder.set_insert_block(merge_block)
        phi = self.builder.phi(then_value.type, name="cond")
        phi.add_incoming(then_value, then_end)
        phi.add_incoming(else_value, else_end)
        return phi, then_type

    def lower_assignment(self, expr: Assignment) -> Tuple[Value, CType]:
        assert expr.target is not None and expr.value is not None
        ptr, target_type = self.lower_lvalue(expr.target)
        rhs, _ = self.lower_expr(expr.value)
        if expr.op == "=":
            value = rhs
        else:
            current = self.builder.load(ptr)
            op = expr.op[:-1]
            table = {
                "+": self.builder.add,
                "-": self.builder.sub,
                "*": self.builder.mul,
                "/": self.builder.div,
                "%": self.builder.rem,
                "&": self.builder.and_,
                "|": self.builder.or_,
                "^": self.builder.xor,
                "<<": self.builder.shl,
                ">>": self.builder.shr,
            }
            value = table[op](current, rhs)
        self.builder.store(value, ptr)
        return value, target_type

    def lower_call(self, expr: CallExpr) -> Tuple[Value, CType]:
        callee = _resolve_callee(self.module, expr.name, expr.line)
        args: List[Value] = []
        for arg in expr.args:
            value, _ = self.lower_expr(arg)
            args.append(value)
        result = self.builder.call(callee, args)
        ret_type = CType("void") if callee.return_type.is_void() else CType("int", signed=getattr(callee.return_type, "signed", True))
        return result, ret_type


def _resolve_callee(module: Module, name: str, line: int) -> Function:
    if module.has_function(name):
        return module.get_function(name)
    if name in INTRINSIC_NAMES:
        if name == "print_int":
            return module.create_function(name, FunctionType(VOID, (I32,)), ["value"])
        return module.create_function(name, FunctionType(I32, (I32,)), ["value"])
    raise SemanticError(f"call to undeclared function '{name}'", line=line)


def _fold_global_initializer(init: Union[Expr, list, None], line: int) -> Union[int, list, None]:
    """Evaluate a global initializer to constants (nested lists for arrays)."""
    if init is None:
        return None
    if isinstance(init, list):
        return [_fold_global_initializer(item, line) for item in init]
    value = evaluate_constant_expr(init)
    if value is None:
        raise SemanticError("global initializer must be a constant expression", line=line)
    return value


def lower_to_ir(unit: TranslationUnit, module_name: str = "module") -> Module:
    """Lower a parsed translation unit to an IR module (and verify it)."""
    module = Module(module_name)
    global_types: Dict[str, CType] = {}

    for g in unit.globals:
        assert g.type is not None
        ir_type = ctype_to_ir(g.type)
        init = _fold_global_initializer(g.init, g.line)
        module.create_global(g.name, ir_type, init, is_const=g.type.is_const)
        global_types[g.name] = g.type

    # Create all function declarations first so calls resolve in any order.
    for fn_def in unit.functions:
        assert fn_def.return_type is not None
        param_types = tuple(ctype_to_ir(p.type) for p in fn_def.params)  # type: ignore[arg-type]
        fn_type = FunctionType(ctype_to_ir(fn_def.return_type), param_types)
        if module.has_function(fn_def.name):
            continue  # prototype seen earlier
        module.create_function(fn_def.name, fn_type, [p.name for p in fn_def.params])

    for fn_def in unit.functions:
        if fn_def.body is None:
            continue
        ir_fn = module.get_function(fn_def.name)
        if not ir_fn.is_declaration():
            raise SemanticError(f"redefinition of function '{fn_def.name}'", line=fn_def.line)
        FunctionLowering(module, global_types, fn_def, ir_fn).lower()

    verify_module(module)
    return module


def compile_c(source: str, module_name: str = "module") -> Module:
    """Parse and lower a C source string to a verified IR module."""
    unit = parse(source)
    with perf.stage("lower"):
        return lower_to_ir(unit, module_name)
