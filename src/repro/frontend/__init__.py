"""C front end: lexer, parser, AST and lowering to the SSA IR.

The supported language is the C subset Twill itself supports (no recursion,
no function pointers, no values wider than 32 bits) restricted further to the
constructs the CHStone-style kernels use: integer scalars and arrays,
functions, globals with initializers, the usual operators and control-flow
statements.
"""

from repro.frontend.lexer import Lexer, Token, TokenKind, tokenize
from repro.frontend.diagnostics import Diagnostic, parse_with_diagnostics
from repro.frontend.parser import Parser, parse
from repro.frontend.lowering import lower_to_ir, compile_c

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Diagnostic",
    "parse_with_diagnostics",
    "Parser",
    "parse",
    "lower_to_ir",
    "compile_c",
]
