"""Abstract syntax tree node definitions for the C subset.

The AST is deliberately plain: dataclasses with a ``line`` field for
diagnostics.  Types at the AST level are represented by :class:`CType`
(base name + signedness + array dimensions + pointer flag); the lowering
pass converts these into IR types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Types as written in source
# ---------------------------------------------------------------------------


@dataclass
class CType:
    """A source-level type: base integer kind, array dims and pointer depth."""

    base: str = "int"            # one of: void, char, short, int, long
    signed: bool = True
    is_const: bool = False
    pointer: int = 0             # levels of pointer indirection
    array_dims: List[int] = field(default_factory=list)

    def is_void(self) -> bool:
        return self.base == "void" and self.pointer == 0 and not self.array_dims

    def is_array(self) -> bool:
        return bool(self.array_dims)

    def is_pointer(self) -> bool:
        return self.pointer > 0

    def element_type(self) -> "CType":
        """Type after one level of array indexing or pointer dereference."""
        if self.array_dims:
            return CType(self.base, self.signed, self.is_const, self.pointer, self.array_dims[1:])
        if self.pointer:
            return CType(self.base, self.signed, self.is_const, self.pointer - 1, [])
        return CType(self.base, self.signed, self.is_const, 0, [])

    def bit_width(self) -> int:
        return {"char": 8, "short": 16, "int": 32, "long": 32, "void": 0}.get(self.base, 32)

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        s = ("unsigned " if not self.signed else "") + self.base
        s += "*" * self.pointer
        for d in self.array_dims:
            s += f"[{d}]"
        return s


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    """Prefix unary operator: one of - + ! ~ & * ++ --."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class PostfixOp(Expr):
    """Postfix ++ / -- (value is the pre-mutation value, as in C)."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assignment(Expr):
    """Simple or compound assignment: op is '=', '+=', '<<=', ..."""

    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? then : otherwise``."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    """Array subscript ``base[index]`` (possibly chained for 2-D arrays)."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class CastExpr(Expr):
    """C-style cast to an integer type: ``(unsigned char) x``."""

    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration (one declarator; the parser splits lists)."""

    name: str = ""
    type: Optional[CType] = None
    init: Optional[Union[Expr, List]] = None    # scalar expr or nested list for arrays


@dataclass
class CompoundStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None          # ExprStmt, DeclStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class SwitchCase:
    """One ``case`` (value is None for ``default``)."""

    value: Optional[int] = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class SwitchStmt(Stmt):
    cond: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter.  Array parameters decay to pointers."""

    name: str = ""
    type: Optional[CType] = None
    line: int = 0


@dataclass
class FunctionDef:
    name: str = ""
    return_type: Optional[CType] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[CompoundStmt] = None     # None for prototypes
    line: int = 0


@dataclass
class GlobalDecl:
    name: str = ""
    type: Optional[CType] = None
    init: Optional[Union[Expr, List]] = None
    line: int = 0


@dataclass
class TranslationUnit:
    """A parsed source file: ordered globals and functions."""

    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
