"""Table-driven LL(1) parser for the supported C subset (the default).

Where :class:`~repro.frontend.parser.RecursiveDescentParser` decides what to
parse next with cascaded ``if tok.is_keyword(...)`` chains, this parser looks
the decision up in the LL(1) predict table that :mod:`repro.frontend.ll1`
builds from FIRST/FOLLOW sets at import time: each dispatch-heavy nonterminal
(statement, external declaration, unary, postfix tail, primary) becomes one
dict lookup from the current token's terminal key to a bound handler.  The
binary-operator ladder is folded iteratively with an explicit operator stack
driven by the same precedence table the grammar's ladder productions are
generated from, replacing ten levels of recursion per operand.

The two registered non-LL(1) cells are resolved exactly like the reference
parser: at ``(`` in unary position one token of lookahead picks cast vs
parenthesised expression, and a dangling ``else`` always binds to the
nearest ``if``.

Byte-for-byte compatibility with the recursive-descent reference — identical
ASTs, identical diagnostics (messages, ``line:col`` positions, panic-mode
recovery points, MAX_DIAGNOSTICS cap) — is enforced by the differential
suite in ``tests/test_parser_differential.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.errors import FrontendError, ParseError, UnsupportedFeatureError
from repro.frontend import ll1
from repro.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    Param,
    PostfixOp,
    ReturnStmt,
    Stmt,
    SwitchCase,
    SwitchStmt,
    TranslationUnit,
    UnaryOp,
    WhileStmt,
)
from repro.frontend.lexer import Token, TokenKind
from repro.frontend.ll1 import _ASSIGN_OPS, _BINARY_PRECEDENCE, _TYPE_KEYWORDS, terminal_keys
from repro.frontend.parser import _ParserBase


def _lookup(row: Dict[str, Callable], tok: Token) -> Optional[Callable]:
    """Predict-table row lookup: try the token's terminal keys in order."""
    for key in terminal_keys(tok):
        handler = row.get(key)
        if handler is not None:
            return handler
    return None


class TableParser(_ParserBase):
    """LL(1) predict-table parser producing the reference parser's exact AST."""

    # Dispatch rows (terminal key -> unbound method), derived from
    # ll1.PREDICT after the class body below.
    _STMT: Dict[str, Callable] = {}
    _EXT: Dict[str, Callable] = {}
    _UNARY: Dict[str, Callable] = {}
    _POSTFIX: Dict[str, Callable] = {}
    _PRIMARY: Dict[str, Callable] = {}

    # -- top level -------------------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self._peek().kind is not TokenKind.EOF:
            if not self.recover:
                self._parse_external_declaration(unit)
                continue
            if self._too_many_errors():
                break
            before = self.pos
            try:
                self._parse_external_declaration(unit)
            except FrontendError as exc:
                self._record_error(exc)
                self._sync_top_level()
                if self.pos == before:
                    self._advance()
        return unit

    def _parse_external_declaration(self, unit: TranslationUnit) -> None:
        tok = self._peek()
        handler = _lookup(self._EXT, tok)
        if handler is None:
            raise self._error(f"expected a declaration, found {tok.text!r}")
        handler(self, unit, tok)

    def _ext_unsupported_kind(self, unit: TranslationUnit, tok: Token) -> None:
        raise UnsupportedFeatureError(f"'{tok.text}' is not supported", line=tok.line, col=tok.col)

    def _ext_float(self, unit: TranslationUnit, tok: Token) -> None:
        raise UnsupportedFeatureError("floating point is not supported", line=tok.line, col=tok.col)

    def _ext_decl(self, unit: TranslationUnit, tok: Token) -> None:
        base_type = self._parse_type_specifier()
        # `void foo(void);` etc.
        name_tok = self._expect_ident()
        if self._check_punct("("):
            unit.functions.append(self._parse_function(base_type, name_tok))
            return
        # global variable declarator list
        while True:
            ty = CType(base_type.base, base_type.signed, base_type.is_const, base_type.pointer, [])
            ty = self._parse_array_suffix(ty)
            init: Optional[Union[Expr, list]] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            unit.globals.append(
                GlobalDecl(name=name_tok.text, type=ty, init=init, line=name_tok.line)
            )
            if self._accept_punct(","):
                name_tok = self._expect_ident()
                continue
            self._expect_punct(";")
            break

    def _parse_function(self, return_type: CType, name_tok: Token) -> FunctionDef:
        self._expect_punct("(")
        params: List[Param] = []
        if not self._check_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    ptype = self._parse_type_specifier()
                    pname = self._expect_ident()
                    ptype = self._parse_array_suffix(ptype)
                    if ptype.array_dims:
                        # array parameters decay to pointers (drop first dim)
                        ptype.pointer += 1
                        ptype.array_dims = ptype.array_dims[1:]
                    params.append(Param(name=pname.text, type=ptype, line=pname.line))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return FunctionDef(name=name_tok.text, return_type=return_type, params=params, body=None, line=name_tok.line)
        body = self._parse_compound()
        return FunctionDef(
            name=name_tok.text, return_type=return_type, params=params, body=body, line=name_tok.line
        )

    # -- initializers ------------------------------------------------------------------

    def _parse_initializer(self) -> Union[Expr, list]:
        if self._accept_punct("{"):
            items: List[Union[Expr, list]] = []
            if not self._check_punct("}"):
                while True:
                    items.append(self._parse_initializer())
                    if not self._accept_punct(","):
                        break
                    if self._check_punct("}"):
                        break  # trailing comma
            self._expect_punct("}")
            return items
        return self._parse_assignment_expr()

    # -- statements -----------------------------------------------------------------------

    def _parse_compound(self) -> CompoundStmt:
        open_tok = self._expect_punct("{")
        body: List[Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError(
                    "unterminated compound statement", line=open_tok.line, col=open_tok.col
                )
            if not self.recover:
                body.append(self._parse_statement())
                continue
            if self._too_many_errors():
                break
            before = self.pos
            try:
                body.append(self._parse_statement())
            except FrontendError as exc:
                self._record_error(exc)
                self._sync_statement()
                if self.pos == before:
                    self._advance()
        self._expect_punct("}")
        return CompoundStmt(body=body, line=open_tok.line)

    def _parse_statement(self) -> Stmt:
        tok = self._peek()
        handler = _lookup(self._STMT, tok) or TableParser._stmt_expr
        return handler(self, tok)

    def _stmt_compound(self, tok: Token) -> Stmt:
        return self._parse_compound()

    def _stmt_if(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise: Optional[Stmt] = None
        # Dangling else: the resolved (else_tail, kw:else) cell always shifts.
        if self._peek().is_keyword("else"):
            self._advance()
            otherwise = self._parse_statement()
        return IfStmt(cond=cond, then=then, otherwise=otherwise, line=tok.line)

    def _stmt_while(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body, line=tok.line)

    def _stmt_do(self, tok: Token) -> Stmt:
        self._advance()
        body = self._parse_statement()
        if not self._peek().is_keyword("while"):
            raise self._error("expected 'while' after do-body")
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoWhileStmt(cond=cond, body=body, line=tok.line)

    def _stmt_for(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct("(")
        init: Optional[Stmt] = None
        if not self._check_punct(";"):
            if self._at_type():
                init = self._parse_declaration_statement()
            else:
                expr = self._parse_expression()
                self._expect_punct(";")
                init = ExprStmt(expr=expr, line=tok.line)
        else:
            self._expect_punct(";")
        cond: Optional[Expr] = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: Optional[Expr] = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ForStmt(init=init, cond=cond, step=step, body=body, line=tok.line)

    def _stmt_switch(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[SwitchCase] = []
        current: Optional[SwitchCase] = None
        while not self._check_punct("}"):
            t = self._peek()
            if t.is_keyword("case"):
                self._advance()
                value = self._parse_constant_expression()
                self._expect_punct(":")
                current = SwitchCase(value=value, body=[], line=t.line)
                cases.append(current)
            elif t.is_keyword("default"):
                self._advance()
                self._expect_punct(":")
                current = SwitchCase(value=None, body=[], line=t.line)
                cases.append(current)
            else:
                if current is None:
                    raise self._error("statement before first case label in switch")
                current.body.append(self._parse_statement())
        self._expect_punct("}")
        return SwitchStmt(cond=cond, cases=cases, line=tok.line)

    def _stmt_return(self, tok: Token) -> Stmt:
        self._advance()
        value = None if self._check_punct(";") else self._parse_expression()
        self._expect_punct(";")
        return ReturnStmt(value=value, line=tok.line)

    def _stmt_break(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct(";")
        return BreakStmt(line=tok.line)

    def _stmt_continue(self, tok: Token) -> Stmt:
        self._advance()
        self._expect_punct(";")
        return ContinueStmt(line=tok.line)

    def _stmt_decl(self, tok: Token) -> Stmt:
        return self._parse_declaration_statement()

    def _stmt_empty(self, tok: Token) -> Stmt:
        self._advance()
        return ExprStmt(expr=None, line=tok.line)

    def _stmt_expr(self, tok: Token) -> Stmt:
        expr = self._parse_expression()
        self._expect_punct(";")
        return ExprStmt(expr=expr, line=tok.line)

    def _parse_declaration_statement(self) -> Stmt:
        """Parse a local declaration; multiple declarators become a compound."""
        base_type = self._parse_type_specifier()
        decls: List[Stmt] = []
        while True:
            name_tok = self._expect_ident()
            ty = CType(base_type.base, base_type.signed, base_type.is_const, base_type.pointer, [])
            ty = self._parse_array_suffix(ty)
            init: Optional[Union[Expr, list]] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(DeclStmt(name=name_tok.text, type=ty, init=init, line=name_tok.line))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return CompoundStmt(body=decls, line=decls[0].line)

    # -- expressions ------------------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        """Full expression including the comma operator (evaluates left to right)."""
        expr = self._parse_assignment_expr()
        while self._check_punct(","):
            self._advance()
            rhs = self._parse_assignment_expr()
            expr = BinaryExpr(op=",", lhs=expr, rhs=rhs, line=expr.line)
        return expr

    def _parse_assignment_expr(self) -> Expr:
        lhs = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment_expr()
            return Assignment(op=tok.text, target=lhs, value=value, line=tok.line)
        return lhs

    def _parse_conditional(self) -> Expr:
        cond = self._parse_binary()
        if self._accept_punct("?"):
            then = self._parse_assignment_expr()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return Conditional(cond=cond, then=then, otherwise=otherwise, line=cond.line)
        return cond

    def _parse_binary(self) -> Expr:
        """Iterative precedence folding with an explicit operator stack.

        Produces exactly the recursive ladder's left-associative tree: an
        operator of precedence p reduces every stacked operator with
        precedence >= p before being pushed."""
        parse_unary = self._parse_unary
        punct = TokenKind.PUNCT
        prec_of = _BINARY_PRECEDENCE
        lhs = parse_unary()
        stack: List = []
        push = stack.append
        pop = stack.pop
        while True:
            tok = self._peek()
            if tok.kind is not punct:
                break
            prec = prec_of.get(tok.text)
            if prec is None:
                break
            while stack and stack[-1][0] >= prec:
                _p, op_tok, left = pop()
                lhs = BinaryExpr(op=op_tok.text, lhs=left, rhs=lhs, line=op_tok.line)
            push((prec, tok, lhs))
            self._advance()
            lhs = parse_unary()
        while stack:
            _p, op_tok, left = pop()
            lhs = BinaryExpr(op=op_tok.text, lhs=left, rhs=lhs, line=op_tok.line)
        return lhs

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        handler = _lookup(self._UNARY, tok)
        if handler is None:
            return self._parse_postfix()
        return handler(self, tok)

    def _unary_prefix(self, tok: Token) -> Expr:
        self._advance()
        operand = self._parse_unary()
        return UnaryOp(op=tok.text, operand=operand, line=tok.line)

    def _unary_paren(self, tok: Token) -> Expr:
        # The registered (unary, "(") conflict cell: one token of lookahead
        # separates a cast from a parenthesised expression.
        nxt = self._peek(1)
        if nxt.kind is TokenKind.KEYWORD and nxt.text in _TYPE_KEYWORDS:
            self._advance()
            ty = self._parse_type_specifier()
            self._expect_punct(")")
            operand = self._parse_unary()
            return CastExpr(target_type=ty, operand=operand, line=tok.line)
        return self._parse_postfix()

    def _unary_sizeof(self, tok: Token) -> Expr:
        raise UnsupportedFeatureError("sizeof is not supported", line=tok.line, col=tok.col)

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        row = self._POSTFIX
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                break
            handler = row.get(tok.text)
            if handler is None:
                break
            result = handler(self, expr, tok)
            if result is None:
                break
            expr = result
        return expr

    def _post_index(self, expr: Expr, tok: Token) -> Expr:
        self._advance()
        index = self._parse_expression()
        self._expect_punct("]")
        return IndexExpr(base=expr, index=index, line=tok.line)

    def _post_call(self, expr: Expr, tok: Token) -> Optional[Expr]:
        # Only a bare identifier is callable (no function pointers); for any
        # other base the '(' is not part of this postfix expression.
        if not isinstance(expr, Identifier):
            return None
        self._advance()
        args: List[Expr] = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_assignment_expr())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return CallExpr(name=expr.name, args=args, line=tok.line)

    def _post_incdec(self, expr: Expr, tok: Token) -> Expr:
        self._advance()
        return PostfixOp(op=tok.text, operand=expr, line=tok.line)

    def _post_member(self, expr: Expr, tok: Token) -> Expr:
        raise UnsupportedFeatureError("struct member access is not supported", line=tok.line, col=tok.col)

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        handler = _lookup(self._PRIMARY, tok)
        if handler is None:
            raise self._error(f"unexpected token {tok.text!r} in expression")
        return handler(self, tok)

    def _prim_literal(self, tok: Token) -> Expr:
        self._advance()
        return IntLiteral(value=tok.value or 0, line=tok.line)

    def _prim_ident(self, tok: Token) -> Expr:
        self._advance()
        return Identifier(name=tok.text, line=tok.line)

    def _prim_paren(self, tok: Token) -> Expr:
        self._advance()
        expr = self._parse_expression()
        self._expect_punct(")")
        return expr

    def _prim_string(self, tok: Token) -> Expr:
        raise UnsupportedFeatureError("string literals are not supported", line=tok.line, col=tok.col)


def _bind_dispatch_rows() -> None:
    """Materialise predict-table rows as (terminal key -> method) dicts."""
    stmt_methods = {
        "stmt_compound": TableParser._stmt_compound,
        "stmt_if": TableParser._stmt_if,
        "stmt_while": TableParser._stmt_while,
        "stmt_do": TableParser._stmt_do,
        "stmt_for": TableParser._stmt_for,
        "stmt_switch": TableParser._stmt_switch,
        "stmt_return": TableParser._stmt_return,
        "stmt_break": TableParser._stmt_break,
        "stmt_continue": TableParser._stmt_continue,
        "stmt_decl": TableParser._stmt_decl,
        "stmt_empty": TableParser._stmt_empty,
        "stmt_expr": TableParser._stmt_expr,
    }
    TableParser._STMT = {
        key: stmt_methods[cell] for key, cell in ll1.PREDICT["statement"].items()
    }

    ext_methods = {
        "ext_struct": TableParser._ext_unsupported_kind,
        "ext_typedef": TableParser._ext_unsupported_kind,
        "ext_float": TableParser._ext_float,
        "ext_double": TableParser._ext_float,
        "ext_decl": TableParser._ext_decl,
    }
    TableParser._EXT = {
        key: ext_methods[cell] for key, cell in ll1.PREDICT["external_declaration"].items()
    }

    unary_row: Dict[str, Callable] = {}
    for key, cell in ll1.PREDICT["unary"].items():
        if isinstance(cell, tuple):  # the resolved cast/paren cell
            unary_row[key] = TableParser._unary_paren
        elif cell == "unary_prefix":
            unary_row[key] = TableParser._unary_prefix
        elif cell == "unary_sizeof":
            unary_row[key] = TableParser._unary_sizeof
        # unary_postfix cells fall through to _parse_postfix via the miss path
    TableParser._UNARY = unary_row

    postfix_methods = {
        "post_index": TableParser._post_index,
        "post_call": TableParser._post_call,
        "post_incr": TableParser._post_incdec,
        "post_decr": TableParser._post_incdec,
        "post_member": TableParser._post_member,
        "post_arrow": TableParser._post_member,
    }
    TableParser._POSTFIX = {
        key: postfix_methods[cell]
        for key, cell in ll1.PREDICT["postfix_tail"].items()
        if cell != "post_end"
    }

    primary_methods = {
        "prim_int": TableParser._prim_literal,
        "prim_char": TableParser._prim_literal,
        "prim_ident": TableParser._prim_ident,
        "prim_paren": TableParser._prim_paren,
        "prim_string": TableParser._prim_string,
    }
    TableParser._PRIMARY = {
        key: primary_methods[cell] for key, cell in ll1.PREDICT["primary"].items()
    }


_bind_dispatch_rows()
