"""Lexer for the supported C subset.

Produces a flat list of :class:`Token` objects with line/column information
used by the parser for error reporting.  Comments (both styles) and
preprocessor-style line directives are skipped; ``#define NAME value`` object
macros with integer values are expanded (CHStone-style kernels use them for
table sizes), every other preprocessor line is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, List, Optional

from repro.errors import LexerError


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = {
    "int",
    "unsigned",
    "signed",
    "char",
    "short",
    "long",
    "void",
    "const",
    "static",
    "volatile",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "switch",
    "case",
    "default",
    "struct",
    "typedef",
    "sizeof",
    "float",
    "double",
}

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    text: str
    value: Optional[int] = None
    line: int = 0
    col: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, line={self.line})"


class Lexer:
    """Converts C source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.defines: Dict[str, int] = {}

    # -- character helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _error(self, message: str) -> LexerError:
        return LexerError(message, line=self.line, col=self.col)

    # -- whitespace / comments / preprocessor ------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif ch == "#" and self.col == 1 or (ch == "#" and self._at_line_start()):
                self._lex_preprocessor_line()
            else:
                return

    def _at_line_start(self) -> bool:
        i = self.pos - 1
        while i >= 0 and self.source[i] in " \t":
            i -= 1
        return i < 0 or self.source[i] == "\n"

    def _lex_preprocessor_line(self) -> None:
        start_line = self.line
        text = ""
        while self.pos < len(self.source) and self._peek() != "\n":
            text += self._advance()
        parts = text[1:].strip().split(None, 2)
        if not parts:
            return
        directive = parts[0]
        if directive == "define" and len(parts) >= 3:
            name = parts[1]
            value_text = parts[2].strip()
            try:
                self.defines[name] = int(value_text, 0)
            except ValueError as exc:
                raise LexerError(
                    f"only integer object macros are supported: #define {name} {value_text}",
                    line=start_line,
                ) from exc
        elif directive in ("include", "ifdef", "ifndef", "endif", "pragma", "undef", "if", "else", "elif", "define"):
            # Includes and conditional compilation are ignored: workloads are
            # self-contained single translation units.
            return
        else:
            raise LexerError(f"unsupported preprocessor directive: #{directive}", line=start_line)

    # -- token scanners --------------------------------------------------------------

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        text = ""
        if self._peek() == "0" and self._peek(1) in "xX":
            text += self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._advance()
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                text += self._advance()
            value = int(text)
        # Integer suffixes are accepted and ignored (u, U, l, L combinations).
        while self._peek() in "uUlL" and self._peek():
            text += self._advance()
        return Token(TokenKind.INT_LITERAL, text, value=value, line=line, col=col)

    def _lex_ident(self) -> Token:
        line, col = self.line, self.col
        text = ""
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            text += self._advance()
        if text in self.defines:
            return Token(TokenKind.INT_LITERAL, text, value=self.defines[text], line=line, col=col)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line=line, col=col)

    _ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}

    def _lex_char(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._advance()
            if esc not in self._ESCAPES:
                raise self._error(f"unsupported escape sequence: \\{esc}")
            value = self._ESCAPES[esc]
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, chr(value), value=value, line=line, col=col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        text = ""
        while self._peek() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
                esc = self._advance()
                text += chr(self._ESCAPES.get(esc, ord(esc)))
            else:
                text += self._advance()
        if self._peek() != '"':
            raise self._error("unterminated string literal")
        self._advance()
        return Token(TokenKind.STRING_LITERAL, text, line=line, col=col)

    def _lex_punct(self) -> Token:
        line, col = self.line, self.col
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line=line, col=col)
        raise self._error(f"unexpected character {self._peek()!r}")

    # -- main loop ----------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Return the full token stream, terminated by a single EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                break
            ch = self._peek()
            if ch.isdigit():
                tokens.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                tokens.append(self._lex_ident())
            elif ch == "'":
                tokens.append(self._lex_char())
            elif ch == '"':
                tokens.append(self._lex_string())
            else:
                tokens.append(self._lex_punct())
        tokens.append(Token(TokenKind.EOF, "", line=self.line, col=self.col))
        return tokens


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the token list (convenience wrapper)."""
    return Lexer(source).tokenize()
