"""Lexer for the supported C subset.

Produces a flat list of :class:`Token` objects with line/column information
used by the parser for error reporting.  Comments (both styles) and
preprocessor-style line directives are skipped; ``#define NAME value`` object
macros with integer values are expanded (CHStone-style kernels use them for
table sizes), every other preprocessor line is rejected.

The scanner is a single batched master regex: one compiled alternation
matches a whole lexeme (or a whole run of whitespace/comments) per step
instead of advancing character by character, which makes lexing ~5-10x
faster on the CHStone-style kernels.  Rare shapes the master regex cannot
classify (malformed character/string literals) fall back to the original
character-at-a-time scanners so error messages and positions are unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Dict, List, Optional

from repro.errors import LexerError


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = {
    "int",
    "unsigned",
    "signed",
    "char",
    "short",
    "long",
    "void",
    "const",
    "static",
    "volatile",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "switch",
    "case",
    "default",
    "struct",
    "typedef",
    "sizeof",
    "float",
    "double",
}

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    text: str
    value: Optional[int] = None
    line: int = 0
    col: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, line={self.line})"


# The master scanner: one alternation, ordered so that trivia (whitespace and
# comments, batched into a single run) wins first and punctuation last.
# Number/identifier/char/string alternatives mirror the per-character
# dispatch of the original scanner exactly; the `badcomment` arm catches an
# unterminated /* after the trivia arm failed to close it.
_TRIVIA_PATTERN = r"(?:[ \t\r\n]+|//[^\n]*|/\*.*?\*/)+"
_PUNCT_PATTERN = "|".join(re.escape(p) for p in PUNCTUATORS)
_MASTER_RE = re.compile(
    rf"(?P<trivia>{_TRIVIA_PATTERN})"
    r"|(?P<badcomment>/\*)"
    r"|(?P<num>0[xX][0-9a-fA-F]*[uUlL]*|[0-9]+[uUlL]*)"
    r"|(?P<ident>[^\W\d]\w*)"
    r"|(?P<char>'(?:\\.|.)')"
    r'|(?P<string>"(?:\\.|[^"\\])*")'
    r"|(?P<hash>\#)"
    rf"|(?P<punct>{_PUNCT_PATTERN})",
    re.DOTALL,
)

_INT_SUFFIX_CHARS = "uUlL"


class Lexer:
    """Converts C source text into a token list via the master regex."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.defines: Dict[str, int] = {}

    # -- character helpers (slow paths and error positions) ----------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _consume(self, text: str) -> None:
        """Advance position/line/col over an already-matched lexeme."""
        self.pos += len(text)
        newlines = text.count("\n")
        if newlines:
            self.line += newlines
            self.col = len(text) - text.rfind("\n")
        else:
            self.col += len(text)

    def _error(self, message: str) -> LexerError:
        return LexerError(message, line=self.line, col=self.col)

    # -- preprocessor ------------------------------------------------------------

    def _at_line_start(self) -> bool:
        i = self.pos - 1
        while i >= 0 and self.source[i] in " \t":
            i -= 1
        return i < 0 or self.source[i] == "\n"

    def _lex_preprocessor_line(self) -> None:
        start_line = self.line
        end = self.source.find("\n", self.pos)
        if end < 0:
            end = len(self.source)
        text = self.source[self.pos : end]
        self._consume(text)
        parts = text[1:].strip().split(None, 2)
        if not parts:
            return
        directive = parts[0]
        if directive == "define" and len(parts) >= 3:
            name = parts[1]
            value_text = parts[2].strip()
            try:
                self.defines[name] = int(value_text, 0)
            except ValueError as exc:
                raise LexerError(
                    f"only integer object macros are supported: #define {name} {value_text}",
                    line=start_line,
                ) from exc
        elif directive in ("include", "ifdef", "ifndef", "endif", "pragma", "undef", "if", "else", "elif", "define"):
            # Includes and conditional compilation are ignored: workloads are
            # self-contained single translation units.
            return
        else:
            raise LexerError(f"unsupported preprocessor directive: #{directive}", line=start_line)

    # -- literal decoding --------------------------------------------------------

    _ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}

    def _decode_char(self, text: str) -> Token:
        line, col = self.line, self.col
        body = text[1:-1]
        if body[0] == "\\":
            esc = body[1]
            if esc not in self._ESCAPES:
                # Position the error just past the escape character, exactly
                # where the character-at-a-time scanner would raise it.
                self._consume(text[:3])
                raise self._error(f"unsupported escape sequence: \\{esc}")
            value = self._ESCAPES[esc]
        else:
            value = ord(body)
        self._consume(text)
        return Token(TokenKind.CHAR_LITERAL, chr(value), value=value, line=line, col=col)

    def _decode_string(self, text: str) -> Token:
        line, col = self.line, self.col
        body = text[1:-1]
        chars: List[str] = []
        i = 0
        n = len(body)
        while i < n:
            ch = body[i]
            if ch == "\\":
                esc = body[i + 1]
                chars.append(chr(self._ESCAPES.get(esc, ord(esc))))
                i += 2
            else:
                chars.append(ch)
                i += 1
        self._consume(text)
        return Token(TokenKind.STRING_LITERAL, "".join(chars), line=line, col=col)

    # -- slow-path scanners (only reached when the master regex fails, i.e. on
    #    malformed literals; these preserve the original error positions) -------

    def _lex_char_slow(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._advance()
            if esc not in self._ESCAPES:
                raise self._error(f"unsupported escape sequence: \\{esc}")
            value = self._ESCAPES[esc]
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, chr(value), value=value, line=line, col=col)

    def _lex_string_slow(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        text = ""
        while self._peek() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
                esc = self._advance()
                text += chr(self._ESCAPES.get(esc, ord(esc)))
            else:
                text += self._advance()
        if self._peek() != '"':
            raise self._error("unterminated string literal")
        self._advance()
        return Token(TokenKind.STRING_LITERAL, text, line=line, col=col)

    # -- main loop ---------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Return the full token stream, terminated by a single EOF token."""
        tokens: List[Token] = []
        append = tokens.append
        source = self.source
        length = len(source)
        match = _MASTER_RE.match
        defines = self.defines
        keyword = TokenKind.KEYWORD
        ident = TokenKind.IDENT
        int_literal = TokenKind.INT_LITERAL
        punct = TokenKind.PUNCT
        while self.pos < length:
            m = match(source, self.pos)
            if m is None:
                ch = source[self.pos]
                if ch == "'":
                    append(self._lex_char_slow())
                elif ch == '"':
                    append(self._lex_string_slow())
                else:
                    raise self._error(f"unexpected character {ch!r}")
                continue
            group = m.lastgroup
            text = m.group()
            line, col = self.line, self.col
            if group == "trivia":
                self._consume(text)
            elif group == "ident":
                self._consume(text)
                if text in defines:
                    append(Token(int_literal, text, value=defines[text], line=line, col=col))
                elif text in KEYWORDS:
                    append(Token(keyword, text, line=line, col=col))
                else:
                    append(Token(ident, text, line=line, col=col))
            elif group == "punct":
                self._consume(text)
                append(Token(punct, text, line=line, col=col))
            elif group == "num":
                self._consume(text)
                digits = text.rstrip(_INT_SUFFIX_CHARS)
                value = int(digits, 16) if digits[:2] in ("0x", "0X") else int(digits)
                append(Token(int_literal, text, value=value, line=line, col=col))
            elif group == "char":
                append(self._decode_char(text))
            elif group == "string":
                append(self._decode_string(text))
            elif group == "hash":
                if self._at_line_start():
                    self._lex_preprocessor_line()
                else:
                    raise self._error(f"unexpected character {'#'!r}")
            else:  # badcomment: a /* the trivia arm could not close
                self._consume(source[self.pos :])
                raise self._error("unterminated block comment")
        append(Token(TokenKind.EOF, "", line=self.line, col=self.col))
        return tokens


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the token list (convenience wrapper)."""
    return Lexer(source).tokenize()
