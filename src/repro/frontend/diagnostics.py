"""Structured frontend diagnostics with ``file:line:col`` positions.

Every lexer/parser problem becomes one :class:`Diagnostic` — a plain,
JSON-serialisable record of *where* (file, 1-based line and column) and
*what* went wrong — rendered in the conventional compiler format::

    tests/corpus/broken.c:4:12: error: expected ';', found '}'

:func:`parse_with_diagnostics` is the error-recovering counterpart of
:func:`repro.frontend.parser.parse`: instead of raising on the first
problem it collects diagnostics while the parser re-synchronises on ``;``
and ``}`` (panic mode), so a malformed file reports several independent
errors in one pass — the contract ``repro ingest`` builds its
:class:`~repro.ingest.report.IngestReport` on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FrontendError

#: Error cascades after a bad sync point help nobody; recovery stops here.
MAX_DIAGNOSTICS = 25


@dataclass(frozen=True)
class Diagnostic:
    """One frontend problem at a source position."""

    file: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The conventional ``file:line:col: severity: message`` rendering."""
        return f"{self.file}:{self.line}:{self.col}: {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(**{k: data[k] for k in ("file", "line", "col", "message", "severity")})

    @classmethod
    def from_error(cls, exc: FrontendError, filename: str) -> "Diagnostic":
        """Wrap a raised frontend error, preserving its token position."""
        return cls(
            file=filename,
            line=exc.line or 0,
            col=exc.col or 0,
            message=exc.raw_message,
        )


def parse_with_diagnostics(
    source: str, filename: str = "<string>"
) -> Tuple[Optional[Any], List[Diagnostic]]:
    """Parse *source*, recovering from errors; returns ``(unit, diagnostics)``.

    The translation unit is the (possibly partial) AST built around the
    errors, or ``None`` when lexing itself failed.  An empty diagnostics
    list means the file is clean.
    """
    from repro.frontend.lexer import tokenize
    from repro.frontend.parser import Parser

    try:
        tokens = tokenize(source)
    except FrontendError as exc:
        return None, [Diagnostic.from_error(exc, filename)]
    parser = Parser(tokens, recover=True, filename=filename)
    unit = parser.parse_translation_unit()
    return unit, parser.diagnostics
