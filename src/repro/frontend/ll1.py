"""LL(1) grammar machinery for the table-driven C-subset parser.

This module declares the C-subset grammar as data (productions over terminal
categories), computes FIRST and FOLLOW sets with the standard fixpoint
algorithms, and builds the LL(1) predict table **once at import time**.  The
:class:`~repro.frontend.tableparser.TableParser` dispatches on the predict
table's rows instead of cascaded ``if tok.is_keyword(...)`` chains, and the
binary-operator ladder productions are generated from the same precedence
table the parser folds with, so grammar and parser cannot drift apart.

Terminals are spelled three ways:

* punctuation by its literal text (``";"``, ``"++"``, ...);
* keywords as ``"kw:<word>"`` (``"kw:if"``);
* token classes in caps: ``IDENT``, ``INT``, ``CHAR``, ``STRING``, ``EOF``,
  plus two *cover* classes — ``TYPE`` (any declaration-specifier keyword,
  consumed as a unit by the parser's type-specifier scanner) and
  ``ASSIGN_OP`` (the eleven assignment operators).

:func:`terminal_keys` maps a token to its candidate terminal names, most
specific first, so a row lookup tries ``kw:void`` before falling back to
``TYPE``.

The grammar is LL(1) except for one classic C ambiguity: at ``(`` a unary
expression may open either a cast or a parenthesised expression.  That cell
is registered in :data:`RESOLVED_CONFLICTS` and stored as a tuple of both
productions; the parser disambiguates with one token of lookahead (a type
keyword after ``(`` means cast).  Any *other* conflict is a programming
error and raises :class:`GrammarError` at import.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.frontend.lexer import Token, TokenKind

# Binary operator precedence (C precedence, higher binds tighter).  Shared
# with both parsers; the ladder nonterminals below are generated from it.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "unsigned", "signed", "const", "static", "volatile"}


class GrammarError(Exception):
    """Raised at import when the declared grammar is not LL(1)."""


# A production is (name, [symbols]); an empty symbol list is epsilon.
Production = Tuple[str, List[str]]
Grammar = Dict[str, List[Production]]

START_SYMBOL = "translation_unit"

#: (nonterminal, terminal) cells where two productions legitimately collide.
#: ("unary", "(") is cast-vs-parenthesised-expression, resolved with one
#: extra token of lookahead; ("else_tail", "kw:else") is the dangling else,
#: resolved by always shifting (an else binds to the nearest if).
RESOLVED_CONFLICTS: FrozenSet[Tuple[str, str]] = frozenset(
    {("unary", "("), ("else_tail", "kw:else")}
)


def _build_grammar() -> Grammar:
    """The C-subset grammar mirrored from the recursive-descent parser."""
    prefix_ops = ["-", "+", "!", "~", "&", "*", "++", "--"]
    grammar: Grammar = {
        "translation_unit": [
            ("tu_decl", ["external_declaration", "translation_unit"]),
            ("tu_end", []),
        ],
        "external_declaration": [
            ("ext_struct", ["kw:struct"]),
            ("ext_typedef", ["kw:typedef"]),
            ("ext_float", ["kw:float"]),
            ("ext_double", ["kw:double"]),
            ("ext_decl", ["TYPE", "IDENT", "ext_tail"]),
        ],
        "ext_tail": [
            ("ext_function", ["(", "param_list", ")", "func_body"]),
            ("ext_globals", ["global_declarator", "global_more", ";"]),
        ],
        "func_body": [
            ("func_proto", [";"]),
            ("func_definition", ["compound"]),
        ],
        "param_list": [
            ("params_some", ["param", "param_more"]),
            ("params_empty", []),
        ],
        "param_more": [
            ("param_more_comma", [",", "param", "param_more"]),
            ("param_more_end", []),
        ],
        "param": [("param_decl", ["TYPE", "IDENT", "array_suffix"])],
        "global_declarator": [("global_one", ["array_suffix", "init_opt"])],
        "global_more": [
            ("global_more_comma", [",", "IDENT", "global_declarator", "global_more"]),
            ("global_more_end", []),
        ],
        "init_opt": [
            ("init_eq", ["=", "initializer"]),
            ("init_none", []),
        ],
        "initializer": [
            ("init_list", ["{", "init_items", "}"]),
            ("init_expr", ["assignment"]),
        ],
        "init_items": [
            ("init_items_some", ["initializer", "init_items_more"]),
            ("init_items_empty", []),
        ],
        "init_items_more": [
            ("init_more_comma", [",", "init_item_after_comma"]),
            ("init_more_end", []),
        ],
        "init_item_after_comma": [
            ("init_after_comma_item", ["initializer", "init_items_more"]),
            ("init_after_comma_end", []),
        ],
        "array_suffix": [
            ("array_dim", ["[", "array_dim_rest"]),
            ("array_end", []),
        ],
        "array_dim_rest": [
            ("array_unsized", ["]", "array_suffix"]),
            ("array_sized", ["const_expr", "]", "array_suffix"]),
        ],
        "const_expr": [("const_cond", ["conditional"])],
        "compound": [("compound_block", ["{", "stmt_list", "}"])],
        "stmt_list": [
            ("stmt_list_more", ["statement", "stmt_list"]),
            ("stmt_list_end", []),
        ],
        "statement": [
            ("stmt_compound", ["compound"]),
            ("stmt_if", ["kw:if", "(", "expression", ")", "statement", "else_tail"]),
            ("stmt_while", ["kw:while", "(", "expression", ")", "statement"]),
            ("stmt_do", ["kw:do", "statement", "kw:while", "(", "expression", ")", ";"]),
            ("stmt_for", ["kw:for", "(", "for_init", "for_cond", ";", "for_step", ")", "statement"]),
            ("stmt_switch", ["kw:switch", "(", "expression", ")", "{", "switch_body", "}"]),
            ("stmt_return", ["kw:return", "return_value", ";"]),
            ("stmt_break", ["kw:break", ";"]),
            ("stmt_continue", ["kw:continue", ";"]),
            ("stmt_decl", ["TYPE", "declarator_list", ";"]),
            ("stmt_empty", [";"]),
            ("stmt_expr", ["expression", ";"]),
        ],
        "else_tail": [
            ("else_some", ["kw:else", "statement"]),
            ("else_end", []),
        ],
        "for_init": [
            ("for_init_decl", ["TYPE", "declarator_list", ";"]),
            ("for_init_empty", [";"]),
            ("for_init_expr", ["expression", ";"]),
        ],
        "for_cond": [
            ("for_cond_some", ["expression"]),
            ("for_cond_empty", []),
        ],
        "for_step": [
            ("for_step_some", ["expression"]),
            ("for_step_empty", []),
        ],
        "return_value": [
            ("return_some", ["expression"]),
            ("return_none", []),
        ],
        "switch_body": [
            ("switch_case", ["kw:case", "const_expr", ":", "switch_body"]),
            ("switch_default", ["kw:default", ":", "switch_body"]),
            ("switch_stmt", ["statement", "switch_body"]),
            ("switch_end", []),
        ],
        "declarator_list": [
            ("declarator_first", ["IDENT", "array_suffix", "init_opt", "declarator_more"]),
        ],
        "declarator_more": [
            ("declarator_comma", [",", "IDENT", "array_suffix", "init_opt", "declarator_more"]),
            ("declarator_end", []),
        ],
        "expression": [("expr_full", ["assignment", "expr_tail"])],
        "expr_tail": [
            ("expr_comma", [",", "assignment", "expr_tail"]),
            ("expr_end", []),
        ],
        "assignment": [("assign_full", ["conditional", "assign_tail"])],
        "assign_tail": [
            ("assign_op", ["ASSIGN_OP", "assignment"]),
            ("assign_end", []),
        ],
        "conditional": [("cond_full", ["binary_1", "cond_tail"])],
        "cond_tail": [
            ("cond_ternary", ["?", "assignment", ":", "conditional"]),
            ("cond_end", []),
        ],
        "unary": [
            ("unary_prefix", ["prefix_op", "unary"]),
            ("unary_cast", ["(", "TYPE", ")", "unary"]),
            ("unary_sizeof", ["kw:sizeof"]),
            ("unary_postfix", ["postfix"]),
        ],
        "prefix_op": [(f"pre_{op}", [op]) for op in prefix_ops],
        "postfix": [("postfix_primary", ["primary", "postfix_tail"])],
        "postfix_tail": [
            ("post_index", ["[", "expression", "]", "postfix_tail"]),
            ("post_call", ["(", "arg_list", ")", "postfix_tail"]),
            ("post_incr", ["++", "postfix_tail"]),
            ("post_decr", ["--", "postfix_tail"]),
            ("post_member", ["."]),
            ("post_arrow", ["->"]),
            ("post_end", []),
        ],
        "arg_list": [
            ("args_some", ["assignment", "arg_more"]),
            ("args_empty", []),
        ],
        "arg_more": [
            ("arg_more_comma", [",", "assignment", "arg_more"]),
            ("arg_more_end", []),
        ],
        "primary": [
            ("prim_int", ["INT"]),
            ("prim_char", ["CHAR"]),
            ("prim_ident", ["IDENT"]),
            ("prim_paren", ["(", "expression", ")"]),
            ("prim_string", ["STRING"]),
        ],
    }
    # Generate the binary-operator ladder from the precedence table:
    #   binary_p      -> binary_{p+1} binary_p_tail
    #   binary_p_tail -> <op at p> binary_{p+1} binary_p_tail | epsilon
    levels: Dict[int, List[str]] = {}
    for op, prec in _BINARY_PRECEDENCE.items():
        levels.setdefault(prec, []).append(op)
    top = max(levels)
    for prec in sorted(levels):
        ops = sorted(levels[prec])
        operand = f"binary_{prec + 1}" if prec < top else "unary"
        grammar[f"binary_{prec}"] = [
            (f"bin{prec}", [operand, f"binary_{prec}_tail"]),
        ]
        grammar[f"binary_{prec}_tail"] = [
            (f"bin{prec}_{op}", [op, operand, f"binary_{prec}_tail"]) for op in ops
        ] + [(f"bin{prec}_end", [])]
    return grammar


# ---------------------------------------------------------------------------
# FIRST / FOLLOW / predict-table construction (standard fixpoint algorithms)
# ---------------------------------------------------------------------------

#: Epsilon marker inside FIRST sets.
EPSILON = None


def first_sets(grammar: Grammar) -> Dict[str, Set[Optional[str]]]:
    """FIRST for every nonterminal; ``None`` in a set marks nullability."""
    first: Dict[str, Set[Optional[str]]] = {nt: set() for nt in grammar}
    changed = True
    while changed:
        changed = False
        for nt, prods in grammar.items():
            for _name, rhs in prods:
                before = len(first[nt])
                first[nt] |= sequence_first(rhs, grammar, first)
                if len(first[nt]) != before:
                    changed = True
    return first


def sequence_first(
    rhs: Sequence[str], grammar: Grammar, first: Dict[str, Set[Optional[str]]]
) -> Set[Optional[str]]:
    """FIRST of a symbol sequence (used for both productions and suffixes)."""
    out: Set[Optional[str]] = set()
    for sym in rhs:
        if sym in grammar:
            out |= first[sym] - {EPSILON}
            if EPSILON not in first[sym]:
                return out
        else:
            out.add(sym)
            return out
    out.add(EPSILON)
    return out


def follow_sets(
    grammar: Grammar, first: Dict[str, Set[Optional[str]]], start: str
) -> Dict[str, Set[str]]:
    """FOLLOW for every nonterminal; the start symbol is followed by EOF."""
    follow: Dict[str, Set[str]] = {nt: set() for nt in grammar}
    follow[start].add("EOF")
    changed = True
    while changed:
        changed = False
        for nt, prods in grammar.items():
            for _name, rhs in prods:
                for i, sym in enumerate(rhs):
                    if sym not in grammar:
                        continue
                    tail = rhs[i + 1 :]
                    tail_first = sequence_first(tail, grammar, first)
                    before = len(follow[sym])
                    follow[sym] |= tail_first - {EPSILON}
                    if EPSILON in tail_first:
                        follow[sym] |= follow[nt]
                    if len(follow[sym]) != before:
                        changed = True
    return follow


#: A predict-table cell: one production name, or a tuple of candidates for a
#: cell listed in RESOLVED_CONFLICTS (the parser disambiguates by lookahead).
Cell = Union[str, Tuple[str, ...]]


def predict_table(
    grammar: Grammar,
    first: Dict[str, Set[Optional[str]]],
    follow: Dict[str, Set[str]],
    resolved: FrozenSet[Tuple[str, str]] = RESOLVED_CONFLICTS,
) -> Dict[str, Dict[str, Cell]]:
    """The LL(1) predict table; unresolved conflicts raise GrammarError."""
    table: Dict[str, Dict[str, Cell]] = {nt: {} for nt in grammar}
    for nt, prods in grammar.items():
        for name, rhs in prods:
            keys = sequence_first(rhs, grammar, first)
            if EPSILON in keys:
                keys = (keys - {EPSILON}) | follow[nt]
            for term in keys:
                row = table[nt]
                existing = row.get(term)
                if existing is None:
                    row[term] = name
                elif existing != name:
                    if (nt, term) not in resolved:
                        raise GrammarError(
                            f"LL(1) conflict at ({nt!r}, {term!r}): {existing!r} vs {name!r}"
                        )
                    merged = existing if isinstance(existing, tuple) else (existing,)
                    row[term] = tuple(sorted(set(merged) | {name}))
    return table


# ---------------------------------------------------------------------------
# Token -> terminal-key mapping
# ---------------------------------------------------------------------------

_KIND_CLASS = {
    TokenKind.IDENT: "IDENT",
    TokenKind.INT_LITERAL: "INT",
    TokenKind.CHAR_LITERAL: "CHAR",
    TokenKind.STRING_LITERAL: "STRING",
    TokenKind.EOF: "EOF",
}


def terminal_keys(tok: Token) -> Tuple[str, ...]:
    """Candidate terminal names for a token, most specific first."""
    kind = tok.kind
    if kind is TokenKind.PUNCT:
        text = tok.text
        if text in _ASSIGN_OPS:
            return (text, "ASSIGN_OP")
        return (text,)
    if kind is TokenKind.KEYWORD:
        text = tok.text
        if text in _TYPE_KEYWORDS:
            return ("kw:" + text, "TYPE")
        return ("kw:" + text,)
    return (_KIND_CLASS[kind],)


# Built once at import; importing this module therefore *proves* the grammar
# is LL(1) modulo the registered cast/paren cell.
GRAMMAR: Grammar = _build_grammar()
FIRST: Dict[str, Set[Optional[str]]] = first_sets(GRAMMAR)
FOLLOW: Dict[str, Set[str]] = follow_sets(GRAMMAR, FIRST, START_SYMBOL)
PREDICT: Dict[str, Dict[str, Cell]] = predict_table(GRAMMAR, FIRST, FOLLOW)
