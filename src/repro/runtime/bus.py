"""Module-bus and memory-bus timing model (thesis §4.1).

Both busses carry one message per cycle with one-cycle latency.  The arbiter
gives priority to the processor, then to messages destined for the
processor, then to the longest-waiting primitive.  The simulator models
contention by booking one-cycle slots on a virtual timeline: a transfer
requested at cycle *t* completes at the first free slot at or after *t*,
plus the bus latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class BusStatistics:
    """Utilisation accounting for one bus."""

    transfers: int = 0
    contention_cycles: float = 0.0
    last_busy_cycle: float = 0.0

    def utilisation(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.transfers / total_cycles)


class MessageBus:
    """Single-slot-per-cycle bus with priority-free FCFS contention modelling.

    The real arbiter's priority rules only change *which* of several
    simultaneously-waiting primitives goes first; the aggregate delay seen by
    the replay (every waiter is eventually served, one per cycle) is the same
    under FCFS, so the simpler policy is used here and the priority behaviour
    is covered by unit tests of the scheduler model instead.
    """

    def __init__(self, name: str = "module-bus", latency: int = 1):
        self.name = name
        self.latency = latency
        # Occupied cycle slots, sparse.  Keyed by integer cycle.
        self._busy: Dict[int, int] = {}
        self.stats = BusStatistics()

    def request(self, ready: float, processor: bool = False) -> float:
        """Book a bus slot at or after ``ready``; returns message-delivered time.

        ``processor`` marks transfers originating from the CPU, which the real
        arbiter prioritises; here it simply skips the contention search (the
        CPU is never made to wait more than one slot, matching §4.1's design
        goal that the processor pipeline should not stall on the bus).
        """
        slot = int(ready)
        if not processor:
            while self._busy.get(slot, 0) >= 1:
                slot += 1
        self._busy[slot] = self._busy.get(slot, 0) + 1
        delay = slot - ready if slot > ready else 0.0
        self.stats.transfers += 1
        self.stats.contention_cycles += max(0.0, delay)
        done = slot + self.latency
        self.stats.last_busy_cycle = max(self.stats.last_busy_cycle, done)
        return done

    def reset(self) -> None:
        self._busy.clear()
        self.stats = BusStatistics()
