"""Counting-semaphore timing model (thesis §4.2).

A raise costs one cycle, a lower a minimum of two; a lower blocks until the
counter is positive.  The simulator uses this to serialise re-used function
threads (the multi-caller case of §5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SemaphoreStatistics:
    raises: int = 0
    lowers: int = 0
    blocked_cycles: float = 0.0


class TimedSemaphore:
    """Counting semaphore on a virtual-time axis."""

    def __init__(
        self,
        semaphore_id: int,
        initial: int = 1,
        max_count: int = 1,
        raise_cost: int = 1,
        lower_cost: int = 2,
    ):
        if initial < 0 or max_count < 1:
            raise ValueError("invalid semaphore configuration")
        self.semaphore_id = semaphore_id
        self.max_count = max_count
        self.raise_cost = raise_cost
        self.lower_cost = lower_cost
        self._count = initial
        # Virtual times at which tokens become available (for blocking lowers).
        self._release_times: list[float] = [0.0] * initial
        self.stats = SemaphoreStatistics()

    def lower(self, ready: float) -> float:
        """Acquire one token at ``ready``; returns completion time (may block)."""
        self.stats.lowers += 1
        if self._release_times:
            available = self._release_times.pop(0)
        else:
            available = ready  # optimistic: a matching raise has not been seen yet
        start = max(ready, available)
        if start > ready:
            self.stats.blocked_cycles += start - ready
        self._count = max(0, self._count - 1)
        return start + self.lower_cost

    def raise_(self, ready: float) -> float:
        """Release one token at ``ready``; returns completion time."""
        self.stats.raises += 1
        done = ready + self.raise_cost
        if self._count < self.max_count:
            self._count += 1
            self._release_times.append(done)
        return done

    @property
    def count(self) -> int:
        return self._count
