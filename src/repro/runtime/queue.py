"""Hardware FIFO queue timing model (thesis §4.3).

The real queue is a circular buffer with one extra slot; enqueue and dequeue
each take a minimum of two cycles over the module bus, the producer stalls
when the queue is full, and the consumer stalls when it is empty.  This
class reproduces those semantics on a virtual-time axis: callers pass the
cycle at which the producer/consumer is ready and get back the cycle at
which the operation completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class QueueStatistics:
    """Occupancy and stall accounting for one queue."""

    enqueues: int = 0
    dequeues: int = 0
    producer_stall_cycles: float = 0.0
    consumer_stall_cycles: float = 0.0
    max_occupancy: int = 0


class TimedQueue:
    """FIFO with bounded capacity, transfer latency and per-op cost, in virtual time."""

    def __init__(
        self,
        queue_id: int,
        depth: int = 8,
        latency: int = 2,
        enqueue_cost: int = 2,
        dequeue_cost: int = 2,
    ):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.queue_id = queue_id
        self.depth = depth
        self.latency = latency
        self.enqueue_cost = enqueue_cost
        self.dequeue_cost = dequeue_cost
        # Completion time of the i-th enqueue / dequeue.
        self._enqueue_done: List[float] = []
        self._dequeue_done: List[float] = []
        self.stats = QueueStatistics()

    # -- producer side ---------------------------------------------------------------

    def can_enqueue(self) -> bool:
        """Is there a slot for the next enqueue, given the dequeues seen so far?

        The replay engine uses this to *block* a producer thread on a full
        queue until the consumer thread has been given a chance to dequeue —
        which is how the real runtime creates back-pressure (§4.3).
        """
        index = len(self._enqueue_done)
        return index < self.depth or (index - self.depth) < len(self._dequeue_done)

    def enqueue(self, producer_ready: float) -> float:
        """Producer offers a value at ``producer_ready``; returns completion time.

        The i-th enqueue cannot complete until the (i - depth)-th entry has
        been dequeued (circular buffer with ``depth`` usable slots).
        """
        index = len(self._enqueue_done)
        start = producer_ready
        if index >= self.depth:
            # Must wait for space: the entry `depth` positions earlier must be gone.
            space_free = self._dequeue_free_time(index - self.depth)
            if space_free > start:
                self.stats.producer_stall_cycles += space_free - start
                start = space_free
        done = start + self.enqueue_cost
        if self._enqueue_done:
            # The enqueue port is serial: completions are monotone.
            done = max(done, self._enqueue_done[-1])
        self._enqueue_done.append(done)
        self.stats.enqueues += 1
        occupancy = len(self._enqueue_done) - len(self._dequeue_done)
        self.stats.max_occupancy = max(self.stats.max_occupancy, occupancy)
        return done

    def _dequeue_free_time(self, index: int) -> float:
        """Time at which the ``index``-th dequeue will have freed its slot.

        When that dequeue has not been recorded yet the caller chose to run
        ahead of the consumer (the replay engine normally prevents this via
        :meth:`can_enqueue`; the forced-progress fallback does not) — the
        producer's own time is returned, i.e. no extra stall is charged.
        """
        if index < len(self._dequeue_done):
            return self._dequeue_done[index]
        return 0.0

    # -- consumer side ------------------------------------------------------------------

    def value_available(self, index: int) -> float:
        """Cycle at which the ``index``-th value is visible to the consumer."""
        if index >= len(self._enqueue_done):
            return float("inf")
        return self._enqueue_done[index] + self.latency

    def dequeue(self, consumer_ready: float) -> float:
        """Consumer requests the next value at ``consumer_ready``; returns completion."""
        index = len(self._dequeue_done)
        available = self.value_available(index)
        start = consumer_ready
        if available > start:
            self.stats.consumer_stall_cycles += available - start
            start = available
        done = start + self.dequeue_cost
        if self._dequeue_done:
            # The dequeue port is serial too.
            done = max(done, self._dequeue_done[-1])
        self._dequeue_done.append(done)
        self.stats.dequeues += 1
        return done

    # -- queries ----------------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._enqueue_done) - len(self._dequeue_done)

    def total_transfers(self) -> int:
        return self.stats.enqueues
