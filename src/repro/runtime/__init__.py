"""Twill runtime-architecture models (thesis Chapter 4).

These classes model the timing and occupancy behaviour of the runtime
primitives that the generated threads communicate through: the message bus
and its arbiter, the hardware FIFO queues, the counting semaphores, the
round-robin hardware scheduler and the processor stream interface.  The
hybrid timing simulator (``repro.sim``) instantiates them with the
parameters from :class:`repro.config.RuntimeConfig`.
"""

from repro.runtime.queue import TimedQueue
from repro.runtime.semaphore import TimedSemaphore
from repro.runtime.bus import MessageBus, BusStatistics
from repro.runtime.scheduler import RoundRobinScheduler
from repro.runtime.interface import ProcessorInterface, HWThreadInterface

__all__ = [
    "TimedQueue",
    "TimedSemaphore",
    "MessageBus",
    "BusStatistics",
    "RoundRobinScheduler",
    "ProcessorInterface",
    "HWThreadInterface",
]
