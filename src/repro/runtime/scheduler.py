"""Hardware round-robin scheduler model (thesis §4.4).

The scheduler is implemented in FPGA logic; the only processor-visible cost
is a single context switch when the active software thread changes (versus
two switches plus the scheduling algorithm for a conventional software
scheduler — the comparison the thesis makes).  The simulator uses this model
to charge context-switch overhead when several software partitions share
one MicroBlaze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# A MicroBlaze context switch (register save/restore + pipeline refill).
CONTEXT_SWITCH_CYCLES = 60


@dataclass
class ScheduleDecision:
    """One scheduling event."""

    cycle: float
    previous_thread: Optional[int]
    next_thread: int
    switch_cost: int


class RoundRobinScheduler:
    """Round-robin selection among ready software threads with HW-assisted switching."""

    def __init__(self, period_cycles: int = 1000, switch_cost: int = CONTEXT_SWITCH_CYCLES):
        self.period_cycles = period_cycles
        self.switch_cost = switch_cost
        self.current: Optional[int] = None
        self.decisions: List[ScheduleDecision] = []
        self.total_switch_cycles = 0.0
        self._threads: List[int] = []
        self._rr_index = 0

    def register_thread(self, thread_id: int) -> None:
        if thread_id not in self._threads:
            self._threads.append(thread_id)

    def activate(self, thread_id: int, cycle: float) -> float:
        """Make ``thread_id`` the running SW thread; returns the switch penalty."""
        self.register_thread(thread_id)
        if self.current == thread_id:
            return 0.0
        cost = self.switch_cost if self.current is not None else 0
        self.decisions.append(
            ScheduleDecision(cycle=cycle, previous_thread=self.current, next_thread=thread_id, switch_cost=cost)
        )
        self.current = thread_id
        self.total_switch_cycles += cost
        return float(cost)

    def next_round_robin(self) -> Optional[int]:
        """Pick the next thread in round-robin order (None if none registered)."""
        if not self._threads:
            return None
        thread = self._threads[self._rr_index % len(self._threads)]
        self._rr_index += 1
        return thread

    @property
    def switch_count(self) -> int:
        return sum(1 for d in self.decisions if d.switch_cost > 0)
