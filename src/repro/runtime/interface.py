"""Processor and hardware-thread interface cost models (thesis §4.4/§4.5).

* Every runtime operation initiated by the processor costs five cycles of
  processor time (two ``put``/``get`` stream instruction pairs through the
  MicroBlaze stream link); the worst case under contention is ``4 + n``
  cycles for ``n`` attached processors.
* A hardware thread reaches the runtime through its HWInterface with no
  added latency: it pays only the primitive's own minimum cycles (one for a
  store/raise, two for loads/queue operations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RuntimeConfig
from repro.ir.instructions import Opcode


@dataclass
class ProcessorInterface:
    """Cost of software-side runtime operations through the stream link."""

    config: RuntimeConfig

    def operation_cycles(self, opcode: Opcode) -> int:
        """Processor cycles consumed by one runtime operation."""
        base = self.config.processor_op_cycles
        if opcode in (Opcode.PRODUCE, Opcode.CONSUME):
            return base
        if opcode in (Opcode.LOAD, Opcode.STORE):
            # Normal loads/stores hit the processor's own data memory, not the
            # runtime: the SW cost model already charges those.
            return 0
        return base

    def worst_case_latency(self) -> int:
        """Worst-case message latency: 4 + n cycles for n processors (§4.5)."""
        return 4 + self.config.num_processors


@dataclass
class HWThreadInterface:
    """Cost of hardware-side runtime operations through the HWInterface module."""

    config: RuntimeConfig

    def operation_cycles(self, opcode: Opcode) -> int:
        if opcode is Opcode.PRODUCE:
            return 2
        if opcode is Opcode.CONSUME:
            return 2
        if opcode is Opcode.LOAD:
            return self.config.memory_read_cycles
        if opcode is Opcode.STORE:
            return self.config.memory_write_cycles
        return 1

    def memory_visibility_delay(self) -> int:
        """Cycles before a write in one domain is visible in the other (§4.1)."""
        return self.config.coherency_delay
