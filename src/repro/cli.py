"""``repro`` — the unified command-line interface of the Twill reproduction.

Every experiment of thesis Chapter 6 is reachable from one executable, backed
by the same :mod:`repro.eval` code path the examples and the pytest-benchmark
suite use, so numbers never diverge between entry points:

* ``repro list`` — the registered workloads;
* ``repro run <workload>`` — compile + simulate one workload and print its
  report (``--json`` for machine-readable output);
* ``repro sweep {latency,depth,split}`` — the sensitivity sweeps behind
  Figures 6.3-6.6;
* ``repro table {6.1,6.2}`` / ``repro figure {6.1..6.6}`` — one thesis
  artefact; ``repro figure 6.x --svg FILE`` renders it as a standalone SVG
  chart (``-`` for stdout) through :mod:`repro.viz`;
* ``repro report`` — every table and figure plus the §6.7 headline summary
  and the embedded design-space-exploration section (``--json`` /
  ``--markdown`` for machine- or doc-friendly output), computed as one task
  graph; ``--html DIR`` writes a single self-contained ``report.html`` with
  every figure as inline SVG (see docs/REPORTING.md); ``--compare
  BASELINE.json`` diffs the run figure-by-figure against a saved ``--json``
  payload; ``--workers HOST:PORT`` runs it distributed (an embedded
  coordinator that ``repro worker serve`` daemons poll) and ``--trace
  trace.json`` records a chrome://tracing timeline (embedded in the HTML
  report when combined with ``--html``);
* ``repro explore <workload|all> --strategy S --budget N --seed K`` — the
  full design-space exploration engine: budgeted search (exhaustive,
  random, greedy, annealing) over split/pipeline/queue/HLS candidates with
  exact Pareto frontiers, journaled and resumable (docs/EXPLORATION.md);
* ``repro ingest FILE.c [--run|--sweep|--explore]`` — register a raw C file
  as a first-class workload: preprocess, parse with error recovery
  (``file:line:col`` diagnostics), capture reference outputs, register —
  then optionally compile/sweep/explore it like a builtin
  (docs/INGESTION.md);
* ``repro difftest <workload|all>`` — differential testing: the interpreter
  and the timing simulator must agree on the program's output stream under
  the software-only, hybrid and hardware-heavy configurations; ``all``
  auto-ingests the ``tests/corpus/`` regression programs first;
* ``repro graph`` — print that task graph (every compile, sweep-point and
  aggregate node with its dependencies) without executing it;
* ``repro cache {stats,clear,prune}`` — inspect, empty, or LRU-bound the
  on-disk artifact cache (``prune --max-bytes``);
* ``repro cache serve`` — share one artifact store over HTTP so workers on
  other hosts publish through it;
* ``repro worker serve`` — a worker daemon: long-polls a coordinator for
  ready tasks and executes them; ``--pool N`` drives N executor processes
  from one daemon (see ``docs/DISTRIBUTED.md``);
* ``repro trace TRACE.jsonl`` — render the structured span trace captured
  by running any command with ``REPRO_TRACE=TRACE.jsonl`` set: a
  parent/child span tree per trace id, ``--gantt`` for a per-worker
  timeline, ``--summary`` for per-kind statistics with scheduler-overhead
  accounting, or ``--critical-path`` for the longest dependency chain
  (see ``docs/OBSERVABILITY.md``);
* ``repro profile <workload>`` — per-stage wall-clock times; with
  ``--flame FILE.svg`` / ``--collapsed FILE.txt`` also attaches a sampling
  profiler and renders the call stacks; ``repro profile --from
  PROFILE.jsonl`` analyses profiles captured from any command via
  ``REPRO_PROFILE=PROFILE.jsonl`` (pool and remote workers write one
  record per process, merged on load);
* ``repro history {show,trend,check}`` — the persistent run ledger
  (``.repro_history/runs.jsonl``, appended by report/explore/bench runs):
  recent records, per-metric trends (``--svg-dir`` renders line charts),
  and rolling-median regression detection (``check`` exits non-zero when
  the latest run is slower than ``--threshold`` times baseline);
* ``repro cluster status --coordinator URL [--cache URL]`` — one live
  summary of a distributed run (workers, heartbeat ages, queue depth,
  throughput, cache hit rate), scraped from the services' ``/metrics``
  endpoints;
* ``repro collect serve --sink TRACE.jsonl`` — a standalone span
  collector: processes started with ``REPRO_TRACE=http://HOST:PORT`` ship
  their spans here in batches, yielding one merged trace for a multi-host
  run;
* ``repro dash --coordinator URL [--cache URL]`` — a live auto-refreshing
  ops dashboard over a running cluster (worker liveness, queue/lease
  sparklines, cache hit rate, run history, event feed); ``--snapshot
  FILE.html`` writes one page and exits;
* ``repro alerts check --coordinator URL`` — evaluate the declarative
  alert rules the dashboard colours by, headlessly; exits non-zero when
  anything fires (see docs/OBSERVABILITY.md "Live ops").

The cache, coordinator, collector and dashboard services optionally
require a shared secret on every request (set ``REPRO_SERVICE_TOKEN`` or
``RuntimeConfig.service_token`` on both ends) and optionally serve TLS
(``REPRO_SERVICE_TLS_CERT``/``REPRO_SERVICE_TLS_KEY``, clients trusting a
private CA via ``REPRO_SERVICE_TLS_CA``) — see docs/DISTRIBUTED.md
"Trust model".

All experiment commands accept ``--benchmarks`` (restrict the workload set),
``--parallel N`` / ``--jobs N`` (execute ready task-graph nodes over N
worker processes), ``--cache-dir`` (a directory, or the ``http://`` URL of a
``repro cache serve`` service) and ``--no-cache``.  Results are disk-cached
under ``.repro_cache/`` (see ``docs/CACHING.md``), so a second invocation of
any command is near-instant.

Installed as a ``console_scripts`` entry point by ``setup.py``; also runnable
as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.config import CompilerConfig
from repro.errors import ReproError
from repro.eval import experiments
from repro.eval.cache import ArtifactCache, default_cache_dir
from repro.eval.compare import compare_reports
from repro.eval.experiments import SPLIT_FIGURE_WORKLOADS
from repro.eval.harness import EvaluationHarness
from repro.eval.taskgraph import TaskGraph
from repro.eval.trace import TraceRecorder
from repro.explore.driver import ExplorationDriver
from repro.explore.strategies import STRATEGIES
from repro.obs import history as obs_history
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.workloads import all_workloads, get_workload

#: Experiment generators by artefact id, in thesis order.
TABLES = {"6.1": experiments.table_6_1, "6.2": experiments.table_6_2}
FIGURES = {
    "6.1": experiments.figure_6_1,
    "6.2": experiments.figure_6_2,
    "6.3": experiments.figure_6_3,
    "6.4": experiments.figure_6_4,
    "6.5": experiments.figure_6_5,
    "6.6": experiments.figure_6_6,
}


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _make_harness(args: argparse.Namespace, benchmarks: Optional[List[str]] = None) -> EvaluationHarness:
    """Build the harness described by the common CLI options."""
    names = benchmarks if benchmarks is not None else _requested_benchmarks(args)
    return EvaluationHarness(
        config=CompilerConfig(),
        benchmarks=names,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (e.g. ``512M``)."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3}
    raw = text.strip().lower().rstrip("b")
    factor = 1
    if raw and raw[-1] in units:
        factor = units[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise ReproError(f"invalid size '{text}' (expected e.g. 104857600, 100M, 1.5G)") from None
    if value < 0:
        raise ReproError(f"size must be non-negative, got '{text}'")
    return value


def _parse_bind(address: str) -> Tuple[str, int]:
    """Parse a coordinator bind address: ``PORT``, ``:PORT``, ``HOST:PORT``
    or ``http://HOST:PORT``; the host defaults to 127.0.0.1."""
    raw = address.strip()
    for prefix in ("http://", "https://"):
        if raw.startswith(prefix):
            raw = raw[len(prefix):]
    raw = raw.rstrip("/")
    host, sep, port_text = raw.rpartition(":")
    if not sep:
        host, port_text = "", raw
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"invalid --workers address '{address}' (expected PORT, HOST:PORT or http://HOST:PORT)"
        ) from None
    if not 0 <= port <= 65535:
        raise ReproError(f"invalid port {port} in --workers address '{address}'")
    return host, port


def _apply_service_token(harness: EvaluationHarness) -> None:
    """Honour a library-style ``RuntimeConfig.service_token`` (the CLI itself
    sources the shared secret from ``$REPRO_SERVICE_TOKEN``)."""
    if harness.config.runtime.service_token:
        from repro.eval.remote import protocol

        protocol.set_process_service_token(harness.config.runtime.service_token)


def _make_remote_executor(args: argparse.Namespace, persistent: bool = False):
    """Build the embedded coordinator behind ``--workers`` (shared by
    ``repro report`` and ``repro explore``)."""
    from repro.eval.remote.executor import RemoteExecutor

    host, port = _parse_bind(args.workers)
    try:
        executor = RemoteExecutor(
            host=host,
            port=port,
            lease_timeout=args.lease_timeout,
            worker_timeout=args.worker_timeout,
            persistent=persistent,
        )
    except OSError as exc:
        # Port in use / unresolvable host: an operational mistake, not a bug.
        raise ReproError(f"cannot bind coordinator at {host}:{port}: {exc}") from exc
    # Status on stderr so --json/--markdown stdout stays byte-identical
    # to the serial run.
    print(
        f"coordinator listening at {executor.url}; waiting for "
        f"'repro worker serve --coordinator {executor.url}' daemons",
        file=sys.stderr,
    )
    return executor


def _requested_benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    """The --benchmarks list, or None when unrestricted."""
    if args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        return names or None
    return None


def _check_split_workload(workload: str, args: argparse.Namespace) -> None:
    """Split artefacts are defined over one specific workload; reject a
    --benchmarks restriction that excludes it rather than silently ignoring it."""
    requested = _requested_benchmarks(args)
    if requested is not None and workload not in requested:
        raise ReproError(
            f"this split sweep is defined over workload '{workload}', which is "
            f"not in --benchmarks {','.join(requested)}"
        )


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """GitHub-flavoured markdown rendering of a rows list."""

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def _render_markdown(data: Dict) -> str:
    """One experiment result as markdown: its rows as a table, or the
    preformatted text fenced when there are no rows."""
    rows = data.get("rows")
    if rows:
        headers = list(rows[0].keys())
        return _markdown_table(headers, [[r[h] for h in headers] for r in rows])
    return "```\n" + data.get("table", "") + "\n```"


def _emit(data: Dict, args: argparse.Namespace) -> None:
    """Print one experiment result in the requested format."""
    if getattr(args, "json", False):
        payload = {k: v for k, v in data.items() if k != "table"}
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif getattr(args, "markdown", False):
        print(_render_markdown(data))
    else:
        print(data["table"])


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    for workload in all_workloads():
        chstone = f" (CHStone {workload.chstone_name})" if workload.chstone_name else ""
        print(f"{workload.name:10s} {workload.description}{chstone}")
    return 0


def _profile_views(args: argparse.Namespace, stacks: Dict[str, int]) -> None:
    """Write the ``--flame`` / ``--collapsed`` views of one stack set."""
    if args.flame:
        from repro.viz.flame import flamegraph

        markup = flamegraph(stacks)
        if args.flame == "-":
            print(markup, end="")
        else:
            path = Path(args.flame)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(markup, encoding="utf-8")
            print(f"wrote {path}", file=sys.stderr)
    if args.collapsed:
        text = obs_profile.collapsed_lines(stacks)
        if args.collapsed == "-":
            print(text)
        else:
            Path(args.collapsed).write_text(text + "\n", encoding="utf-8")
            print(f"wrote {args.collapsed}", file=sys.stderr)


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: per-stage timings, sampled flamegraphs, profile files.

    Two modes.  With a workload, compile it end to end fresh (no artifact
    cache: the point is to time the stages, and a cache hit times nothing)
    and print the per-stage wall-clock table — adding ``--flame``/
    ``--collapsed`` samples the compile while it runs.  With ``--from
    PROFILE.jsonl``, skip compiling and render the records a
    ``$REPRO_PROFILE`` run left behind, merged across its processes.
    """
    if args.from_file:
        try:
            records = obs_profile.load_profiles(Path(args.from_file))
        except OSError as exc:
            raise ReproError(f"cannot read profile file '{args.from_file}': {exc}") from exc
        if not records:
            raise ReproError(
                f"'{args.from_file}' contains no profile records — capture one with "
                "REPRO_PROFILE=profile.jsonl repro report ..."
            )
        stacks = obs_profile.merge_stacks(records)
        counters = obs_profile.merge_counters(records)
        samples = sum(int(r.get("samples", 0)) for r in records)
        if args.json:
            payload = {
                "source": str(args.from_file),
                "processes": len(records),
                "samples": samples,
                "counters": counters,
                "top": obs_profile.top_self(stacks),
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif not (args.flame or args.collapsed):
            print(f"{len(records)} profile records, {samples} samples")
            for entry in obs_profile.top_self(stacks):
                print(f"{entry['fraction'] * 100.0:5.1f}%  {entry['samples']:6d}  {entry['frame']}")
            if counters:
                print("counters:")
                for name, value in counters.items():
                    print(f"  {name} = {value:g}")
        _profile_views(args, stacks)
        return 0

    if not args.workload:
        raise ReproError("profile needs a workload (see 'repro list') or --from PROFILE.jsonl")
    from repro.core.compiler import TwillCompiler

    workload = get_workload(args.workload)
    compiler = TwillCompiler(CompilerConfig())
    sampler = None
    if args.flame or args.collapsed:
        sampler = obs_profile.SamplingProfiler(hz=args.hz, service="cli")
        sampler.start()
    with perf.collect() as timings:
        result = compiler.compile_and_simulate(workload.source, name=workload.name)
    record = None
    if sampler is not None:
        sampler.stop()
        record = sampler.snapshot()
    if args.json:
        payload = {
            "workload": workload.name,
            "total_seconds": round(timings.total(), 6),
            "stages": timings.as_dict(),
            "twill_cycles": result.system.twill.cycles,
        }
        if record is not None:
            payload["samples"] = record["samples"]
            payload["sample_hz"] = record["hz"]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"workload : {workload.name}")
        print(f"cycles   : {result.system.twill.cycles:,.0f}")
        print(timings.table())
    if record is not None:
        _profile_views(args, record["stacks"])
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    get_workload(args.workload)  # fail fast before building a harness
    harness = _make_harness(args, benchmarks=[args.workload])
    run = harness.run(args.workload)
    result = run.result
    if args.sw_fraction is not None:
        data = harness.twill_cycles_with_split(args.workload, args.sw_fraction)
        data = {"benchmark": args.workload, "sw_fraction": args.sw_fraction, **data}
        print(json.dumps(data, indent=2, sort_keys=True) if args.json else "\n".join(f"{k:14s}: {v}" for k, v in data.items()))
        return 0
    if args.json:
        payload = {"outputs_match": run.functional_outputs_match(), **result.summary_dict()}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.kind == "latency":
        harness = _make_harness(args)
        _emit(experiments.figure_6_5(harness, parallel=args.parallel), args)
    elif args.kind == "depth":
        harness = _make_harness(args)
        _emit(experiments.figure_6_6(harness, parallel=args.parallel), args)
    else:  # split
        workload = args.workload or "mips"
        _check_split_workload(workload, args)
        harness = _make_harness(args, benchmarks=[workload])
        _emit(experiments.split_sweep(workload, harness, parallel=args.parallel), args)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    harness = _make_harness(args)
    _emit(TABLES[args.id](harness, parallel=args.parallel), args)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    split_workload = SPLIT_FIGURE_WORKLOADS.get(args.id)
    if split_workload:
        _check_split_workload(split_workload, args)
    harness = _make_harness(args, benchmarks=[split_workload] if split_workload else None)
    if args.svg:
        markup = experiments.figure_svg(args.id, harness, parallel=args.parallel)
        if args.svg == "-":
            print(markup, end="")
        else:
            path = Path(args.svg)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(markup, encoding="utf-8")
            print(f"wrote {path}", file=sys.stderr)
        return 0
    _emit(FIGURES[args.id](harness, parallel=args.parallel), args)
    return 0


def _record_run_history(
    command: str,
    args: argparse.Namespace,
    harness,
    wall_seconds: float,
    stage_timings=None,
    extra_metrics: Optional[Dict[str, float]] = None,
    extra_attrs: Optional[Dict] = None,
) -> None:
    """Append one run record to the persistent history (observe-only).

    Never prints and never raises — stdout byte-identity and run success
    are pinned by the same tests that pin tracing.
    """
    metrics: Dict[str, float] = {"wall_seconds": round(wall_seconds, 6)}
    stats = getattr(harness, "last_stats", None) or {}
    if stats:
        total = int(stats.get("total", 0))
        hits = int(stats.get("cache_hits", 0))
        executed = sum((stats.get("executed") or {}).values())
        metrics["tasks_total"] = float(total)
        metrics["tasks_executed"] = float(executed)
        metrics["cache_hits"] = float(hits)
        if total:
            metrics["cache_hit_rate"] = round(hits / total, 4)
    if stage_timings is not None:
        for name, entry in stage_timings.as_dict().items():
            metrics[f"stage_{name}_seconds"] = entry["seconds"]
    if extra_metrics:
        metrics.update(extra_metrics)
    attrs = {
        "benchmarks": ",".join(getattr(harness, "benchmark_names", []) or []),
        "workers": args.parallel or 0,
    }
    # Link the ledger row to its telemetry: a regression flagged by
    # `repro history check` then points straight at the trace/profile that
    # explains it (`repro history show` surfaces these).
    trace_id = obs_tracing.last_trace_id()
    if trace_id:
        attrs["trace_id"] = trace_id
    trace_sink = obs_tracing.sink_spec()
    if trace_sink:
        attrs["trace_sink"] = trace_sink
    profile_path = (os.environ.get(obs_profile.PROFILE_ENV) or "").strip()
    if profile_path:
        attrs["profile"] = profile_path
    if extra_attrs:
        attrs.update(extra_attrs)
    obs_history.record_run(command, metrics, attrs=attrs)


def _write_report_html(
    args: argparse.Namespace, harness, artefacts, figures, trace, stage_timings=None
) -> int:
    """Assemble and write the self-contained ``report.html``."""
    from repro.viz.charts import Span
    from repro.viz.report_html import build_benchmark_page, build_report_html

    metadata = {
        "config_hash": harness.config.content_hash(),
        "benchmarks": harness.benchmark_names,
        "cache": harness.cache.spec if harness.cache is not None else "",
        "scheduler": harness.last_stats,
    }
    if stage_timings is not None and stage_timings.seconds:
        # Wall-clock per pipeline stage, as observed in this process (pool
        # workers time their own stages; cache hits time nothing).
        metadata["stage_timings"] = stage_timings.as_dict()
    spans = [Span(**span) for span in trace.spans] if trace is not None else None
    obs_spans = None
    analytics = None
    if obs_tracing.enabled():
        # Observe-only: the telemetry sections appear only when $REPRO_TRACE
        # was set, so an untraced report document stays byte-identical.
        records = obs_tracing.tracer().spans()
        obs_spans = [
            Span(
                name=record["name"],
                kind=record["kind"],
                worker=record.get("worker") or record.get("service") or "main",
                start=record["start"],
                end=record["end"],
            )
            for record in records
            if record["end"] > record["start"]
        ] or None
        if records:
            from repro.obs import analyze as obs_analyze

            analytics = {
                "summary": obs_analyze.summarize(records),
                "critical_path": obs_analyze.critical_path(records),
                "overhead": obs_analyze.scheduler_overhead(records),
            }
    profile_card = None
    active_profiler = obs_profile.profiler()
    if active_profiler is not None:
        # Same opt-in logic: only a $REPRO_PROFILE run gets the card.
        from repro.viz.flame import flamegraph

        record = active_profiler.snapshot()
        if record["stacks"]:
            profile_card = {
                "svg": flamegraph(record["stacks"]),
                "samples": record["samples"],
                "hz": record["hz"],
                "top": obs_profile.top_self(record["stacks"], limit=10),
            }
    trends = None
    history_file = obs_history.explicit_path()
    if history_file is not None and history_file.exists():
        # Trends render only with an explicit $REPRO_HISTORY: the default
        # history grows a record per run, which would break the warm-run
        # byte-identity guarantee the HTML report carries.
        from repro.viz.trend import sparkline_svg, trend_chart

        runs = obs_history.load_runs(history_file)
        series = obs_history.metric_series(runs, command="report")
        ordered = [m for m in ("wall_seconds", "cache_hit_rate") if m in series]
        ordered += sorted(m for m in series if m.startswith("stage_") and m.endswith("_seconds"))
        trend_rows = []
        for metric in ordered[:6]:
            values = series[metric]
            svg = (
                trend_chart(metric, values, command="report")
                if len(values) >= 2
                else sparkline_svg(values)
            )
            trend_rows.append({"metric": metric, "values": values, "svg": svg})
        trends = trend_rows or None
    document = build_report_html(
        artefacts,
        figures,
        metadata,
        trace_spans=spans,
        obs_spans=obs_spans,
        analytics=analytics,
        profile=profile_card,
        trends=trends,
        benchmark_pages=harness.benchmark_names,
    )
    out_dir = Path(args.html)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "report.html"
    path.write_text(document, encoding="utf-8")
    for benchmark in harness.benchmark_names:
        page = build_benchmark_page(benchmark, artefacts, metadata)
        (out_dir / f"benchmark-{benchmark}.html").write_text(page, encoding="utf-8")
    print(
        f"wrote {path} ({len(figures)} figures, "
        f"{len(harness.benchmark_names)} drill-down pages)",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.html and (args.json or args.markdown):
        # One output contract per invocation: --html writes a document and
        # keeps stdout empty, so combining it with a stdout format would
        # silently starve whatever consumes stdout.
        raise ReproError("--html cannot be combined with --json/--markdown; run them separately")
    if args.html and args.compare:
        raise ReproError(
            "--compare emits a diff on stdout and cannot be combined with --html; "
            "run them separately"
        )
    baseline = None
    if args.compare:
        # Fail on a bad baseline *before* spending minutes regenerating.
        baseline_path = Path(args.compare)
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ReproError(f"cannot read baseline '{args.compare}': {exc}") from exc
        except ValueError:
            raise ReproError(
                f"baseline '{args.compare}' is not valid JSON (save one with "
                "'repro report --json > baseline.json')"
            ) from None
    harness = _make_harness(args)
    _apply_service_token(harness)
    executor = None
    if args.workers:
        if args.no_cache:
            raise ReproError(
                "--workers requires the shared artifact cache "
                "(workers hand results back through it); drop --no-cache"
            )
        if args.parallel:
            print(
                "note: --parallel is ignored with --workers; concurrency is "
                "the number of registered worker daemons",
                file=sys.stderr,
            )
        executor = _make_remote_executor(args)
    trace = TraceRecorder() if args.trace else None
    # One merged task graph: every compile, every (workload, sweep-point)
    # node and (with --html) every figure render schedules as an independent
    # job under --parallel/--jobs (or on the registered remote workers under
    # --workers).
    run_started = time.perf_counter()
    with perf.collect() as stage_timings:
        if args.html:
            artefacts, figures = experiments.run_report_figures(
                harness, parallel=args.parallel, executor=executor, trace=trace
            )
        else:
            artefacts = experiments.run_report(
                harness, parallel=args.parallel, executor=executor, trace=trace
            )
    _record_run_history(
        "report",
        args,
        harness,
        time.perf_counter() - run_started,
        stage_timings,
        extra_attrs={"html": bool(args.html)},
    )
    if trace is not None:
        trace.write(args.trace)
        print(f"wrote task trace to {args.trace} (open in chrome://tracing)", file=sys.stderr)
    if args.html:
        return _write_report_html(args, harness, artefacts, figures, trace, stage_timings)

    if baseline is not None:
        current = {
            key: {k: v for k, v in data.items() if k != "table"}
            for key, data in artefacts.items()
        }
        diff = compare_reports(current, baseline)
        if args.json:
            print(json.dumps({k: v for k, v in diff.items() if k != "table"},
                             indent=2, sort_keys=True))
        else:
            print(diff["table"])
        return 0

    if args.json:
        payload = {
            "benchmarks": harness.benchmark_names,
            "config": harness.config.to_dict(),
            "artefacts": {
                key: {k: v for k, v in data.items() if k != "table"}
                for key, data in artefacts.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    for key, data in artefacts.items():
        if args.markdown:
            title = data["table"].splitlines()[0]
            print(f"### {title}\n")
            print(_render_markdown(data))
        else:
            print(data["table"])
        print()
    return 0


def _explore_text(result) -> str:
    """One workload's exploration outcome as aligned text tables."""
    from repro.core.report import format_result_table

    dims = [dim.name for dim in result.space.dimensions]
    rows = [
        [row["params"][dim] for dim in dims]
        + [row["cycles"], row["area_luts"], row["power_mw"], row.get("speedup_vs_sw", 0.0)]
        for row in result.frontier.to_rows()
    ]
    table = format_result_table(
        dims + ["cycles", "area (LUTs)", "power (mW)", "speedup vs SW"],
        rows,
        title=(
            f"{result.workload}: Pareto frontier — {len(rows)} of "
            f"{len(result.evaluations)} evaluated candidates "
            f"({result.strategy}, budget {result.budget}, seed {result.seed})"
        ),
    )
    best = result.best_row()
    best_params = ", ".join(f"{k}={v}" for k, v in best["params"].items())
    return (
        table
        + f"\nbest found: {best_params} -> {best['cycles']:.0f} cycles, "
        f"{best['area_luts']:,} LUTs, {best['power_mw']:.0f} mW "
        f"({best['speedup_vs_sw']:.2f}x vs SW)"
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    """``repro explore``: search the partition/configuration design space."""
    if args.workload == "all":
        names = _requested_benchmarks(args) or [w.name for w in all_workloads()]
    else:
        get_workload(args.workload)  # fail fast before building a harness
        requested = _requested_benchmarks(args)
        if requested is not None and args.workload not in requested:
            raise ReproError(
                f"workload '{args.workload}' is not in --benchmarks {','.join(requested)}"
            )
        names = [args.workload]
    harness = _make_harness(args, benchmarks=names)
    _apply_service_token(harness)
    executor = None
    if args.workers:
        if args.no_cache:
            raise ReproError(
                "--workers requires the shared artifact cache "
                "(workers hand results back through it); drop --no-cache"
            )
        # One persistent coordinator serves every generation of every
        # workload's search; finalized when the whole command is done.
        executor = _make_remote_executor(args, persistent=True)
    results = {}
    totals = {"evaluated": 0, "executed": 0, "cache_hits": 0, "replayed": 0}
    run_started = time.perf_counter()
    try:
        for name in names:
            driver = ExplorationDriver(
                harness,
                name,
                strategy=args.strategy,
                budget=args.budget,
                seed=args.seed,
                jobs=args.parallel,
                executor=executor,
            )
            results[name] = driver.run()
            stats = driver.stats
            for key in totals:
                totals[key] += int(stats.get(key, 0))
            # Effort goes to stderr: stdout stays byte-identical cold vs warm.
            print(
                f"explored {name}: {stats['evaluated']} candidates "
                f"({stats['executed']} executed, {stats['cache_hits']} cache hits, "
                f"{stats['replayed']} journal-replayed), "
                f"frontier size {len(results[name].frontier)}",
                file=sys.stderr,
            )
    finally:
        if executor is not None:
            executor.finalize()
    _record_run_history(
        "explore",
        args,
        harness,
        time.perf_counter() - run_started,
        extra_metrics={
            "candidates_evaluated": float(totals["evaluated"]),
            "candidates_executed": float(totals["executed"]),
            "candidate_cache_hits": float(totals["cache_hits"]),
        },
        extra_attrs={"strategy": args.strategy, "budget": args.budget, "seed": args.seed},
    )
    if args.json:
        if args.workload != "all":
            # Explicit single-workload request: the bare result document.
            # 'all' always gets the wrapped shape, even over one benchmark,
            # so consumers never have to sniff which schema they received.
            payload = results[names[0]].to_json_dict()
        else:
            payload = {
                "strategy": args.strategy,
                "budget": args.budget,
                "seed": args.seed,
                "workloads": {name: results[name].to_json_dict() for name in names},
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for index, name in enumerate(names):
        if index:
            print()
        if args.markdown:
            result = results[name]
            flat = [
                {**row["params"],
                 **{k: row[k] for k in ("cycles", "area_luts", "power_mw") if k in row},
                 "speedup_vs_sw": row.get("speedup_vs_sw", 0.0)}
                for row in result.frontier.to_rows()
            ]
            print(f"### {name}: Pareto frontier ({result.strategy}, "
                  f"budget {result.budget}, seed {result.seed})\n")
            print(_render_markdown({"rows": flat}))
        else:
            print(_explore_text(results[name]))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: register a raw .c file as a first-class workload."""
    from repro.ingest import default_workload_name, ingest_file

    name = args.name or default_workload_name(args.file)
    harness = _make_harness(args, benchmarks=[name])
    report, _ = ingest_file(args.file, name=name, harness=harness)

    if not report.ok:
        if args.json:
            # The bare report document: deterministic, byte-identical cold/warm.
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.format_text())
        return 1

    payload: Dict = {"report": report.to_dict()}
    extra_text: List[str] = []

    if args.run:
        graph = TaskGraph()
        task_id = harness.declare_compile(graph, name)
        results = harness.execute(graph, parallel=args.parallel)
        result = results[task_id]
        run = harness._runs[name]
        payload["run"] = {"outputs_match": run.functional_outputs_match(), **result.summary_dict()}
        # Volatile by design (cold vs warm runs differ); only under --run.
        payload["task_stats"] = harness.last_stats
        extra_text.append(result.report())
    elif args.sweep:
        if args.sweep == "latency":
            data = experiments.figure_6_5(harness, parallel=args.parallel)
        elif args.sweep == "depth":
            data = experiments.figure_6_6(harness, parallel=args.parallel)
        else:
            data = experiments.split_sweep(name, harness, parallel=args.parallel)
        payload["sweep"] = {k: v for k, v in data.items() if k != "table"}
        extra_text.append(data["table"])
    elif args.explore:
        from repro.explore.driver import ExplorationDriver as _Driver

        driver = _Driver(
            harness, name, strategy="random", budget=args.budget, seed=0, jobs=args.parallel
        )
        result = driver.run()
        payload["explore"] = result.to_json_dict()
        extra_text.append(_explore_text(result))

    if args.json:
        if len(payload) == 1:
            # Plain ingest: the bare report document (CI diffs these bytes).
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format_text())
        for block in extra_text:
            print()
            print(block)
    return 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    """``repro difftest``: assert interp/sim output agreement per workload."""
    import os

    from repro.core.report import format_result_table
    from repro.ingest import load_corpus
    from repro.ingest.difftest import CONFIGS, difftest_workload

    harness = _make_harness(args, benchmarks=[])
    corpus_dir = args.corpus
    if corpus_dir is None and os.path.isdir("tests/corpus"):
        corpus_dir = "tests/corpus"
    if corpus_dir and corpus_dir != "none" and os.path.isdir(corpus_dir):
        reports = load_corpus(corpus_dir, harness=harness)
        print(f"loaded {len(reports)} corpus workload(s) from {corpus_dir}", file=sys.stderr)

    if args.target == "all":
        names = [w.name for w in all_workloads()]
    else:
        get_workload(args.target)  # fail fast with the registry's error
        names = [args.target]

    outcomes = [difftest_workload(harness, name) for name in names]
    ok = all(o.ok for o in outcomes)

    if args.json:
        print(
            json.dumps(
                {"ok": ok, "workloads": [o.to_dict() for o in outcomes]},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        labels = [label for label, _ in CONFIGS]
        rows = [
            [o.workload, o.origin, o.events, o.outputs]
            + ["pass" if o.configs.get(label) else "FAIL" for label in labels]
            for o in outcomes
        ]
        print(
            format_result_table(
                ["workload", "origin", "events", "outputs"] + labels,
                rows,
                title=f"differential test: interpreter vs timing replay ({len(outcomes)} workloads)",
            )
        )
        for outcome in outcomes:
            for failure in outcome.failures:
                print(f"FAIL {outcome.workload}: {failure}")
    return 0 if ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "serve":
        from repro.eval.remote.cache_http import serve_cache

        spec = args.cache_dir or str(default_cache_dir())
        if spec.startswith(("http://", "https://")):
            raise ReproError("cache serve needs a local --cache-dir, not a URL")
        try:
            return serve_cache(
                Path(spec), host=args.host, port=args.port, verbose=args.verbose
            )
        except OSError as exc:
            raise ReproError(f"cannot bind cache service at {args.host}:{args.port}: {exc}") from exc
    cache = ArtifactCache.from_spec(args.cache_dir) if args.cache_dir else ArtifactCache()
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"cache root     : {stats['root']}")
            print(f"entries        : {stats['entries']}")
            print(f"total size     : {stats['total_bytes'] / (1024 * 1024):.1f} MiB")
            print(f"schema version : {stats['schema_version']}")
    elif args.action == "prune":
        if args.max_bytes is None:
            raise ReproError("cache prune requires --max-bytes (e.g. --max-bytes 100M)")
        summary = cache.prune(_parse_size(args.max_bytes))
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(
                f"pruned {summary['removed_entries']} entries "
                f"({summary['freed_bytes'] / (1024 * 1024):.1f} MiB) from {summary['root']}; "
                f"{summary['remaining_entries']} entries "
                f"({summary['remaining_bytes'] / (1024 * 1024):.1f} MiB) remain"
            )
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker serve``: execute tasks for a remote coordinator."""
    from repro.eval.remote.worker import run_worker, run_worker_pool

    options = dict(
        coordinator_url=args.coordinator,
        cache_spec=args.cache_dir,
        name=args.name,
        startup_timeout=args.startup_timeout,
        poll_wait=args.poll_wait,
        max_tasks=args.max_tasks,
        hmac_key=args.cache_hmac_key,
        verbose=not args.quiet,
    )
    if args.pool is not None and args.pool != 1:
        if args.pool < 1:
            raise ReproError(f"--pool must be >= 1, got {args.pool}")
        return run_worker_pool(args.pool, **options)
    return run_worker(**options)


def _cmd_graph(args: argparse.Namespace) -> int:
    """Print the full report task graph without executing any of it."""
    harness = _make_harness(args)
    graph = TaskGraph()
    artefacts = experiments.declare_report(graph, harness)
    order = graph.topological_order()
    counts: Dict[str, int] = {}
    for task in order:
        counts[task.kind] = counts.get(task.kind, 0) + 1
    if args.json:
        payload = {
            "benchmarks": harness.benchmark_names,
            "artefacts": artefacts,
            "tasks": [
                {
                    "id": task.task_id,
                    "kind": task.kind,
                    "key": task.key,
                    "deps": list(task.deps),
                    **(
                        {"source_digest": get_workload(task.workload).source_digest()}
                        if task.kind == "compile"
                        else {}
                    ),
                }
                for task in order
            ],
            "counts": counts,
            "edges": graph.edge_count(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for task in order:
        key = (task.key or "")[:12]
        deps = ", ".join(task.deps) if task.deps else "-"
        if task.kind == "compile":
            deps = f"src={get_workload(task.workload).source_digest()[:12]}"
        print(f"{task.kind:10s} {key:12s} {task.task_id}  <- {deps}")
    sweep_points = counts.get("runtime", 0) + counts.get("split", 0)
    print(
        f"\n{len(order)} tasks ({counts.get('compile', 0)} compile, {sweep_points} sweep points, "
        f"{counts.get('explore', 0)} explore points, "
        f"{counts.get('aggregate', 0)} aggregates), {graph.edge_count()} dependency edges"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: render a JSONL span file as a tree or Gantt view."""
    from repro.obs import render as obs_render

    try:
        spans = obs_render.load_spans(args.file)
    except OSError as exc:
        raise ReproError(f"cannot read trace file '{args.file}': {exc}") from exc
    if not spans:
        raise ReproError(
            f"'{args.file}' contains no spans — capture one with "
            "REPRO_TRACE=trace.jsonl repro report ..."
        )
    if args.summary or args.critical_path:
        from repro.obs import analyze as obs_analyze

        if args.json:
            payload: Dict[str, Any] = {}
            if args.summary:
                payload["summary"] = obs_analyze.summarize(spans)
                payload["scheduler_overhead"] = obs_analyze.scheduler_overhead(spans)
            if args.critical_path:
                payload["critical_path"] = obs_analyze.critical_path(
                    spans, trace_id=args.trace_id
                )
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        parts = []
        if args.summary:
            parts.append(obs_analyze.render_summary(spans))
        if args.critical_path:
            parts.append(obs_analyze.render_critical_path(spans, trace_id=args.trace_id))
        print("\n\n".join(parts))
        return 0
    if args.gantt:
        print(obs_render.render_gantt(spans, trace_id=args.trace_id))
    else:
        print(obs_render.render_tree(spans, trace_id=args.trace_id))
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    """``repro history``: inspect the persistent run ledger, flag regressions."""
    path = obs_history.history_path(args.history)
    if path is None:
        raise ReproError("run history is disabled (REPRO_HISTORY=0)")
    runs = obs_history.load_runs(path)
    if args.action == "check":
        regressions = obs_history.check_regressions(
            runs,
            window=args.window,
            threshold=args.threshold,
            command=args.command,
        )
        if args.json:
            print(json.dumps({"regressions": regressions}, indent=2, sort_keys=True))
        else:
            print(obs_history.render_regressions(regressions))
        return 1 if regressions else 0
    if not runs:
        raise ReproError(
            f"no run history at {path} — run 'repro report' or pass --history DIR"
        )
    if args.action == "show":
        if args.json:
            shown = runs[-args.limit :] if args.limit else runs
            print(json.dumps({"runs": shown}, indent=2, sort_keys=True))
        else:
            print(obs_history.render_show(runs, limit=args.limit))
        return 0
    # trend
    if args.json:
        series = obs_history.metric_series(runs, command=args.command)
        print(json.dumps({"series": series}, indent=2, sort_keys=True))
    else:
        print(obs_history.render_trend(runs, command=args.command))
    if args.svg_dir:
        from repro.viz.trend import trend_chart

        out_dir = Path(args.svg_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        series = obs_history.metric_series(runs, command=args.command)
        written = 0
        for metric, values in sorted(series.items()):
            if len(values) < 2:
                continue
            svg = trend_chart(metric, values, command=args.command or "all")
            name = f"{args.command or 'all'}_{metric}.svg"
            (out_dir / name).write_text(svg)
            written += 1
        print(f"wrote {written} trend SVG(s) to {out_dir}", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster status``: one live summary of the running services."""
    from repro.obs import cluster as obs_cluster

    summary = obs_cluster.collect_status(
        args.coordinator, cache_url=args.cache, timeout=args.timeout
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(obs_cluster.render_status(summary))
    return 0


def _dash_state(args: argparse.Namespace):
    """Shared ``repro dash`` / ``repro alerts`` state construction."""
    from repro.obs import alerts as obs_alerts
    from repro.obs.dash import DashState

    rules = obs_alerts.load_rules(Path(args.rules) if args.rules else None)
    return DashState(
        coordinator_url=args.coordinator,
        cache_url=args.cache,
        history_dir=Path(args.history) if args.history else None,
        rules=rules,
        refresh=args.refresh,
        timeout=args.timeout,
    )


def _cmd_dash(args: argparse.Namespace) -> int:
    """``repro dash``: serve the live ops page (or snapshot it once)."""
    from repro.obs.dash import make_dash_server, render_html, serve_dash

    state = _dash_state(args)
    if args.snapshot:
        # One-shot mode (CI artifacts): poll, render, write, exit.
        state.poll(force=True)
        out = Path(args.snapshot)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_html(state), encoding="utf-8")
        print(f"wrote dashboard snapshot to {out}", file=sys.stderr)
        return 0
    if args.port == 0:
        # Port 0 is only useful to tests that need a free port and the
        # bound URL; bind explicitly so we can print it before serving.
        server = make_dash_server(state, host=args.host, port=0)
        print(f"repro dash on {server.url} (Ctrl-C stops)", flush=True)
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    serve_dash(state, host=args.host, port=args.port)
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    """``repro alerts check``: evaluate the rules once, exit non-zero on fire."""
    from repro.obs import alerts as obs_alerts

    state = _dash_state(args)
    for index in range(max(1, args.samples)):
        if index:
            time.sleep(max(0.0, args.interval))
        state.poll(force=True)
    payload = state.status_payload()
    alerts = [obs_alerts.Alert(**a) for a in payload["alerts"]]
    if args.json:
        print(
            json.dumps(
                {
                    "ok": not alerts,
                    "alerts": payload["alerts"],
                    "rules": state.rules.to_dict(),
                    "snapshot": payload["snapshot"],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(obs_alerts.render_alerts(alerts))
    return 1 if alerts else 0


def _cmd_collect(args: argparse.Namespace) -> int:
    """``repro collect serve``: run the standalone span collector."""
    from repro.obs import collect as obs_collect

    obs_collect.serve_collector(
        Path(args.sink), host=args.host, port=args.port, verbose=args.verbose
    )
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--benchmarks",
        metavar="A,B,...",
        help="comma-separated workload subset (default: all eight kernels)",
    )
    common.add_argument(
        "--parallel",
        "--jobs",
        "-j",
        dest="parallel",
        type=int,
        metavar="N",
        help="execute up to N ready task-graph nodes concurrently (process pool)",
    )
    common.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=f"artifact cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    common.add_argument("--no-cache", action="store_true", help="disable the on-disk artifact cache")
    common.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    common.add_argument("--markdown", action="store_true", help="emit GitHub-flavoured markdown tables")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Twill thesis evaluation: compile, simulate and report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[common], help="list the registered workloads").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", parents=[common], help="compile + simulate one workload")
    p_run.add_argument("workload", help="workload name (see 'repro list')")
    p_run.add_argument(
        "--sw-fraction",
        type=float,
        metavar="F",
        help="re-partition with this targeted software share instead of the default report",
    )
    p_run.set_defaults(func=_cmd_run)

    p_profile = sub.add_parser(
        "profile",
        parents=[common],
        help="compile + simulate one workload and print per-stage wall-clock times",
    )
    p_profile.add_argument(
        "workload", nargs="?", help="workload name (see 'repro list'); omit with --from"
    )
    p_profile.add_argument(
        "--from",
        dest="from_file",
        metavar="PROFILE.jsonl",
        help=(
            "analyse an existing sampled-profile file (written by running any "
            "command with REPRO_PROFILE=PROFILE.jsonl) instead of compiling"
        ),
    )
    p_profile.add_argument(
        "--flame",
        metavar="FILE.svg",
        help="render the sampled call stacks as a flamegraph SVG ('-' for stdout)",
    )
    p_profile.add_argument(
        "--collapsed",
        metavar="FILE.txt",
        help="write collapsed-stack lines ('frame;frame count') for external tools",
    )
    p_profile.add_argument(
        "--hz",
        type=int,
        default=obs_profile.DEFAULT_HZ,
        metavar="N",
        help=f"sampling frequency for --flame/--collapsed (default: {obs_profile.DEFAULT_HZ})",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_sweep = sub.add_parser("sweep", parents=[common], help="queue latency/depth and split-point sweeps")
    p_sweep.add_argument("kind", choices=["latency", "depth", "split"])
    p_sweep.add_argument("--workload", help="workload for the split sweep (default: mips)")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_table = sub.add_parser("table", parents=[common], help="regenerate one thesis table")
    p_table.add_argument("id", choices=sorted(TABLES))
    p_table.set_defaults(func=_cmd_table)

    p_figure = sub.add_parser("figure", parents=[common], help="regenerate one thesis figure")
    p_figure.add_argument("id", choices=sorted(FIGURES))
    p_figure.add_argument(
        "--svg",
        metavar="FILE",
        help="render the figure as a standalone SVG chart to FILE ('-' for stdout)",
    )
    p_figure.set_defaults(func=_cmd_figure)

    p_report = sub.add_parser("report", parents=[common], help="every table + figure + §6.7 summary")
    p_report.add_argument(
        "--html",
        metavar="DIR",
        help=(
            "write a single self-contained report.html (all figures as inline "
            "SVG + tables + run metadata) into DIR instead of printing tables"
        ),
    )
    p_report.add_argument(
        "--workers",
        metavar="HOST:PORT",
        help=(
            "run distributed: bind the task coordinator at this address and "
            "dispatch to registered 'repro worker serve' daemons"
        ),
    )
    p_report.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="reassign a leased task after this long without a worker heartbeat (default: 60)",
    )
    p_report.add_argument(
        "--worker-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="fail if no worker registers within this long (default: 300)",
    )
    p_report.add_argument(
        "--trace",
        metavar="FILE",
        help="write a chrome://tracing JSON timeline of per-task execution",
    )
    p_report.add_argument(
        "--compare",
        metavar="BASELINE.json",
        help=(
            "diff this run figure-by-figure against a saved "
            "'repro report --json' payload (per-cell delta table + "
            "changed-artefact flags)"
        ),
    )
    p_report.set_defaults(func=_cmd_report)

    p_explore = sub.add_parser(
        "explore",
        parents=[common],
        help="design-space exploration: search partition/config candidates for Pareto-optimal trade-offs",
    )
    p_explore.add_argument(
        "workload", help="workload name (see 'repro list'), or 'all' for the whole benchmark set"
    )
    p_explore.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default="annealing",
        help="search strategy (default: annealing)",
    )
    p_explore.add_argument(
        "--budget",
        type=int,
        default=32,
        metavar="N",
        help="maximum number of unique candidates to evaluate (default: 32)",
    )
    p_explore.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="K",
        help="RNG seed; same seed + budget reproduces the search exactly (default: 0)",
    )
    p_explore.add_argument(
        "--workers",
        metavar="HOST:PORT",
        help=(
            "run distributed: bind the task coordinator at this address and "
            "dispatch candidate evaluations to 'repro worker serve' daemons"
        ),
    )
    p_explore.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="reassign a leased task after this long without a worker heartbeat (default: 60)",
    )
    p_explore.add_argument(
        "--worker-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="fail if no worker registers within this long (default: 300)",
    )
    p_explore.set_defaults(func=_cmd_explore)

    p_ingest = sub.add_parser(
        "ingest",
        parents=[common],
        help="ingest a raw .c file as a first-class workload (docs/INGESTION.md)",
    )
    p_ingest.add_argument("file", metavar="FILE.c", help="C source file to ingest")
    p_ingest.add_argument(
        "--name",
        help="workload name to register under (default: derived from the file name)",
    )
    ingest_action = p_ingest.add_mutually_exclusive_group()
    ingest_action.add_argument(
        "--run",
        action="store_true",
        help="also compile + simulate the ingested workload through the task graph",
    )
    ingest_action.add_argument(
        "--sweep",
        choices=["latency", "depth", "split"],
        help="also run the named sensitivity sweep on the ingested workload",
    )
    ingest_action.add_argument(
        "--explore",
        action="store_true",
        help="also run a small random design-space exploration on the ingested workload",
    )
    p_ingest.add_argument(
        "--budget",
        type=int,
        default=8,
        metavar="N",
        help="exploration budget for --explore (default: 8)",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_difftest = sub.add_parser(
        "difftest",
        parents=[common],
        help="differential test: interpreter vs timing-simulator output agreement",
    )
    p_difftest.add_argument(
        "target", help="workload name, or 'all' for every registered + corpus workload"
    )
    p_difftest.add_argument(
        "--corpus",
        metavar="DIR",
        help="corpus directory to ingest first (default: tests/corpus if present; 'none' to skip)",
    )
    p_difftest.set_defaults(func=_cmd_difftest)

    p_graph = sub.add_parser(
        "graph", parents=[common], help="print the report task graph without executing it"
    )
    p_graph.set_defaults(func=_cmd_graph)

    p_cache = sub.add_parser(
        "cache",
        parents=[common],
        help="inspect, clear, LRU-prune, or serve the artifact cache over HTTP",
    )
    p_cache.add_argument("action", choices=["stats", "clear", "prune", "serve"])
    p_cache.add_argument(
        "--max-bytes",
        metavar="SIZE",
        help="prune target size for 'prune' (accepts K/M/G suffixes, e.g. 100M)",
    )
    p_cache.add_argument(
        "--host", default="127.0.0.1", help="bind address for 'serve' (default: 127.0.0.1)"
    )
    p_cache.add_argument(
        "--port", type=int, default=8737, help="port for 'serve' (default: 8737)"
    )
    p_cache.add_argument(
        "--verbose", action="store_true", help="log every request ('serve' only)"
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_worker = sub.add_parser(
        "worker", parents=[common], help="run a task-execution worker daemon"
    )
    p_worker.add_argument("action", choices=["serve"])
    p_worker.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator URL printed by 'repro report --workers' (e.g. http://host:8901)",
    )
    p_worker.add_argument("--name", help="stable worker name (default: assigned by coordinator)")
    p_worker.add_argument(
        "--pool",
        type=int,
        metavar="N",
        help="drive N local executor processes from this one daemon",
    )
    p_worker.add_argument(
        "--startup-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="how long to wait for the coordinator to come up (default: 120)",
    )
    p_worker.add_argument(
        "--poll-wait",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="long-poll duration per lease request (default: 10)",
    )
    p_worker.add_argument(
        "--max-tasks", type=int, metavar="N", help="exit after executing N tasks"
    )
    p_worker.add_argument(
        "--cache-hmac-key",
        metavar="KEY",
        help="HMAC key for signed cache envelopes (default: $REPRO_CACHE_HMAC_KEY)",
    )
    p_worker.add_argument("--quiet", action="store_true", help="suppress per-task log lines")
    p_worker.set_defaults(func=_cmd_worker)

    p_trace = sub.add_parser(
        "trace",
        parents=[common],
        help="render a JSONL span trace captured via $REPRO_TRACE",
    )
    p_trace.add_argument(
        "file", metavar="TRACE.jsonl", help="span file written by a traced run"
    )
    p_trace.add_argument(
        "--gantt",
        action="store_true",
        help="per-worker Gantt view instead of the default span tree",
    )
    p_trace.add_argument(
        "--trace-id", metavar="ID", help="show only the trace with this id"
    )
    p_trace.add_argument(
        "--summary",
        action="store_true",
        help="per-kind span statistics (count, total, self time, p50/p95) + scheduler overhead",
    )
    p_trace.add_argument(
        "--critical-path",
        action="store_true",
        help="longest dependency chain through the trace with per-hop attribution",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_history = sub.add_parser(
        "history",
        parents=[common],
        help="inspect the persistent run history and flag performance regressions",
    )
    p_history.add_argument("action", choices=["show", "trend", "check"])
    p_history.add_argument(
        "--history",
        metavar="DIR",
        help=f"history directory (default: $REPRO_HISTORY or ./{obs_history.HISTORY_DIR})",
    )
    p_history.add_argument(
        "--command",
        metavar="NAME",
        help="restrict to records of one command (report, explore, bench_report, ...)",
    )
    p_history.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="most-recent records to show (default: 20)",
    )
    p_history.add_argument(
        "--svg-dir",
        metavar="DIR",
        help="with 'trend': also write one line-chart SVG per metric into DIR",
    )
    p_history.add_argument(
        "--window",
        type=int,
        default=obs_history.DEFAULT_WINDOW,
        metavar="N",
        help=(
            "with 'check': rolling-median baseline window "
            f"(default: {obs_history.DEFAULT_WINDOW})"
        ),
    )
    p_history.add_argument(
        "--threshold",
        type=float,
        default=obs_history.DEFAULT_THRESHOLD,
        metavar="X",
        help=(
            "with 'check': flag metrics slower than X times the baseline "
            f"(default: {obs_history.DEFAULT_THRESHOLD})"
        ),
    )
    p_history.set_defaults(func=_cmd_history)

    p_cluster = sub.add_parser(
        "cluster",
        parents=[common],
        help="observe running distributed services (coordinator + cache)",
    )
    p_cluster.add_argument("action", choices=["status"])
    p_cluster.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator URL printed by 'repro report --workers'",
    )
    p_cluster.add_argument(
        "--cache", metavar="URL", help="also summarise this cache service"
    )
    p_cluster.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request timeout (default: 5)",
    )
    p_cluster.set_defaults(func=_cmd_cluster)

    scrape = argparse.ArgumentParser(add_help=False)
    scrape.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator URL printed by 'repro report --workers'",
    )
    scrape.add_argument("--cache", metavar="URL", help="also watch this cache service")
    scrape.add_argument(
        "--history",
        metavar="DIR",
        help="run-history directory (default: $REPRO_HISTORY or ./.repro_history)",
    )
    scrape.add_argument(
        "--rules",
        metavar="RULES.json",
        help="alert-rule overrides as JSON (see docs/OBSERVABILITY.md)",
    )
    scrape.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request scrape timeout (default: 5)",
    )

    p_dash = sub.add_parser(
        "dash",
        parents=[scrape],
        help="serve a live auto-refreshing ops dashboard over a cluster",
    )
    p_dash.add_argument("--host", default="127.0.0.1", help="bind host (default: 127.0.0.1)")
    p_dash.add_argument(
        "--port", type=int, default=8912, metavar="PORT", help="bind port (default: 8912)"
    )
    p_dash.add_argument(
        "--refresh",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="page refresh + scrape interval (default: 5)",
    )
    p_dash.add_argument(
        "--snapshot",
        metavar="FILE.html",
        help="write one dashboard snapshot to FILE and exit (CI artifacts)",
    )
    p_dash.set_defaults(func=_cmd_dash)

    p_alerts = sub.add_parser(
        "alerts",
        parents=[scrape],
        help="evaluate the alert rules headlessly (CI gate: non-zero exit on fire)",
    )
    p_alerts.add_argument("action", choices=["check"])
    p_alerts.add_argument(
        "--samples",
        type=int,
        default=1,
        metavar="N",
        help="snapshots to take before evaluating (sustained rules need >= 3)",
    )
    p_alerts.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="pause between snapshots (default: 2)",
    )
    p_alerts.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_alerts.set_defaults(func=_cmd_alerts, refresh=1.0)

    p_collect = sub.add_parser(
        "collect",
        help="run a standalone span collector (POST /spans -> one JSONL file)",
    )
    p_collect.add_argument("action", choices=["serve"])
    p_collect.add_argument(
        "--sink",
        required=True,
        metavar="TRACE.jsonl",
        help="JSONL file the collector appends received spans to",
    )
    p_collect.add_argument("--host", default="127.0.0.1", help="bind host (default: 127.0.0.1)")
    p_collect.add_argument(
        "--port", type=int, default=8917, metavar="PORT", help="bind port (default: 8917)"
    )
    p_collect.add_argument("--verbose", action="store_true", help="log each request")
    p_collect.set_defaults(func=_cmd_collect)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_profile.maybe_start(service="cli")
    try:
        return args.func(args)
    except ReproError as exc:
        # Bad input (unknown workload, --sw-fraction out of [0, 1], ...)
        # surfaces as the pipeline's own exception types; report them without
        # a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The scheduler has already torn down its executor (pool terminated /
        # leases revoked) and swept in-flight lock files; 130 = SIGINT.
        # Flush open spans so an interrupted $REPRO_TRACE file stays parseable.
        obs_tracing.shutdown()
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output was piped into a pager/head that exited early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
