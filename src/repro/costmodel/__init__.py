"""Cycle-cost and area models for the software (Microblaze) and hardware
(FPGA / LegUp-style) execution domains.

These tables are the quantitative backbone of the reproduction: the DSWP
partitioner weighs PDG nodes with them (thesis §5.2, pass 2), the HLS
scheduler uses the hardware latencies and area figures, the Microblaze model
uses the software latencies, and the area/power reports aggregate them.
"""

from repro.costmodel.software import SoftwareCostModel, MICROBLAZE_CYCLES
from repro.costmodel.hardware import (
    HardwareCostModel,
    HW_LATENCY,
    HW_AREA_LUTS,
    HW_AREA_DSP,
    RUNTIME_PRIMITIVE_AREA,
)

__all__ = [
    "SoftwareCostModel",
    "MICROBLAZE_CYCLES",
    "HardwareCostModel",
    "HW_LATENCY",
    "HW_AREA_LUTS",
    "HW_AREA_DSP",
    "RUNTIME_PRIMITIVE_AREA",
]
