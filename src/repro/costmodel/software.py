"""Microblaze-like software cycle cost model.

The numbers follow the MicroBlaze v8 reference (3-stage, area-optimised
configuration — the thesis configures MicroBlaze "to minimize its area",
§6) and the explicit figures the thesis gives in §5.2: loads and stores take
two cycles in software, division takes 34 cycles, and the hardware-primitive
operations (enqueue/dequeue/semaphores) cost five cycles of processor time
through the stream interface (§4.5).
"""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import Instruction, Opcode


# Cycles per IR opcode on the area-optimised MicroBlaze (no barrel shifter,
# serial multiplier disabled → shifts and multiplies are multi-cycle).
MICROBLAZE_CYCLES: Dict[Opcode, int] = {
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.MUL: 3,
    Opcode.SDIV: 34,
    Opcode.UDIV: 34,
    Opcode.SREM: 34,
    Opcode.UREM: 34,
    Opcode.SHL: 2,
    Opcode.LSHR: 2,
    Opcode.ASHR: 2,
    Opcode.ICMP: 1,
    Opcode.SELECT: 2,
    Opcode.LOAD: 2,
    Opcode.STORE: 2,
    Opcode.GEP: 1,          # address arithmetic folds into an add
    Opcode.ALLOCA: 1,
    Opcode.TRUNC: 1,
    Opcode.ZEXT: 1,
    Opcode.SEXT: 1,
    Opcode.BITCAST: 0,
    Opcode.BR: 2,           # taken-branch penalty on the 3-stage pipeline
    Opcode.CONDBR: 2,
    Opcode.SWITCH: 3,
    Opcode.RET: 2,
    Opcode.PHI: 1,          # materialises as a register move
    Opcode.CALL: 4,         # call/return linkage overhead
    Opcode.PRODUCE: 5,      # stream `put` pair through the processor interface (§4.5)
    Opcode.CONSUME: 5,      # stream `get` pair
}

# Default cycles for opcodes not in the table.
DEFAULT_SW_CYCLES = 1


class SoftwareCostModel:
    """Cycle cost of executing IR instructions on the soft processor.

    ``expansion_overhead`` models the fact that one IR operation lowers to
    roughly two-to-three MicroBlaze machine instructions (register spills,
    address materialisation, compare-and-branch pairs) on the area-optimised
    core; it is added to every instruction's table cost.
    """

    def __init__(
        self,
        cycles: Dict[Opcode, int] | None = None,
        clock_mhz: float = 100.0,
        expansion_overhead: int = 4,
    ):
        self.cycles = dict(MICROBLAZE_CYCLES)
        if cycles:
            self.cycles.update(cycles)
        self.clock_mhz = clock_mhz
        self.expansion_overhead = expansion_overhead

    def cost(self, inst: Instruction) -> int:
        """Cycles to execute ``inst`` in software."""
        return self.opcode_cost(inst.opcode)

    def opcode_cost(self, opcode: Opcode) -> int:
        base = self.cycles.get(opcode, DEFAULT_SW_CYCLES)
        if opcode is Opcode.BITCAST:
            return base
        return base + self.expansion_overhead

    def block_cost(self, instructions) -> int:
        """Total cycles of a straight-line sequence."""
        return sum(self.cost(i) for i in instructions)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6)
