"""FPGA hardware latency and area model (the LegUp analogue's cost tables).

Latencies are in cycles at the 100 MHz system clock the thesis uses for all
hardware modules (§6).  Area is counted in Virtex-5 LUTs plus DSP blocks,
calibrated to the concrete figures the thesis reports:

* an 8x32 queue uses 65 LUTs and one DSP block (§6.2);
* a semaphore uses 70 LUTs, an HWInterface 44 LUTs, the processor interface
  24 LUTs, the scheduler 98 LUTs + 2 DSPs, each bus arbiter 15 LUTs (§6.2);
* loads/stores take "the minimum area possible" because they call out to the
  runtime memory bus (§5.2);
* division gets a large area penalty — a dedicated DSP block or "an
  inordinate amount of LUT blocks" — and takes 13 cycles in hardware versus
  34 in software (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.instructions import Instruction, Opcode


# Latency (cycles) of each operation when implemented in the FPGA fabric.
HW_LATENCY: Dict[Opcode, int] = {
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.MUL: 2,
    Opcode.SDIV: 13,
    Opcode.UDIV: 13,
    Opcode.SREM: 13,
    Opcode.UREM: 13,
    Opcode.SHL: 1,
    Opcode.LSHR: 1,
    Opcode.ASHR: 1,
    Opcode.ICMP: 1,
    Opcode.SELECT: 1,
    Opcode.LOAD: 2,          # memory bus read (§4.1): two cycles
    Opcode.STORE: 1,         # memory bus write: one cycle
    Opcode.GEP: 1,
    Opcode.ALLOCA: 1,
    Opcode.TRUNC: 0,
    Opcode.ZEXT: 0,
    Opcode.SEXT: 0,
    Opcode.BITCAST: 0,
    Opcode.BR: 1,            # FSM state transition
    Opcode.CONDBR: 1,
    Opcode.SWITCH: 1,
    Opcode.RET: 1,
    Opcode.PHI: 0,           # a mux on the state-entry path
    Opcode.CALL: 1,
    Opcode.PRODUCE: 2,       # queue enqueue: two cycles minimum (§4.3)
    Opcode.CONSUME: 2,       # queue dequeue: two cycles minimum (§4.3)
}

# LUTs consumed by one functional unit for each opcode (32-bit datapath).
HW_AREA_LUTS: Dict[Opcode, int] = {
    Opcode.ADD: 32,
    Opcode.SUB: 32,
    Opcode.AND: 16,
    Opcode.OR: 16,
    Opcode.XOR: 16,
    Opcode.MUL: 90,
    Opcode.SDIV: 350,
    Opcode.UDIV: 350,
    Opcode.SREM: 350,
    Opcode.UREM: 350,
    Opcode.SHL: 60,
    Opcode.LSHR: 60,
    Opcode.ASHR: 60,
    Opcode.ICMP: 20,
    Opcode.SELECT: 16,
    Opcode.LOAD: 8,          # just the bus request logic
    Opcode.STORE: 8,
    Opcode.GEP: 24,
    Opcode.ALLOCA: 4,
    Opcode.TRUNC: 0,
    Opcode.ZEXT: 0,
    Opcode.SEXT: 0,
    Opcode.BITCAST: 0,
    Opcode.BR: 2,
    Opcode.CONDBR: 4,
    Opcode.SWITCH: 8,
    Opcode.RET: 2,
    Opcode.PHI: 10,          # input multiplexer
    Opcode.CALL: 12,
    Opcode.PRODUCE: 8,
    Opcode.CONSUME: 8,
}

# DSP blocks consumed by one functional unit for each opcode.
HW_AREA_DSP: Dict[Opcode, int] = {
    Opcode.MUL: 1,
    Opcode.SDIV: 1,
    Opcode.UDIV: 1,
    Opcode.SREM: 1,
    Opcode.UREM: 1,
}

DEFAULT_HW_LATENCY = 1
DEFAULT_HW_LUTS = 8

# FSM / control overhead per scheduled state and per hardware thread,
# calibrated so the per-benchmark totals land in the same range as Table 6.2.
FSM_LUTS_PER_STATE = 3
THREAD_BASE_LUTS = 60           # thread-level control, start/stop logic
REGISTER_LUTS_PER_LIVE_VALUE = 8


@dataclass(frozen=True)
class RuntimePrimitiveArea:
    """Area of one Twill runtime primitive (thesis §6.2)."""

    hw_interface_luts: int = 44
    queue_8x32_luts: int = 65
    queue_dsp: int = 1
    semaphore_luts: int = 70
    processor_interface_luts: int = 24
    scheduler_luts: int = 98
    scheduler_dsp: int = 2
    bus_arbiter_luts: int = 15
    num_bus_arbiters: int = 2
    microblaze_luts: int = 1434   # Table 6.2: MIPS Twill+Microblaze minus Twill
    microblaze_bram: int = 16     # §6.2: 16 BRAM blocks regardless of code

    def queue_luts(self, length: int = 8, width: int = 32) -> int:
        """Scale the 8x32 queue figure with depth and width (FIFO storage + control)."""
        base_control = 35
        storage = self.queue_8x32_luts - base_control
        scale = (length / 8.0) * (width / 32.0)
        return int(round(base_control + storage * max(scale, 0.25)))


RUNTIME_PRIMITIVE_AREA = RuntimePrimitiveArea()


class HardwareCostModel:
    """Latency and area of IR instructions implemented in the FPGA fabric."""

    def __init__(
        self,
        latency: Dict[Opcode, int] | None = None,
        area_luts: Dict[Opcode, int] | None = None,
        clock_mhz: float = 100.0,
    ):
        self.latency = dict(HW_LATENCY)
        self.area_luts = dict(HW_AREA_LUTS)
        self.area_dsp = dict(HW_AREA_DSP)
        if latency:
            self.latency.update(latency)
        if area_luts:
            self.area_luts.update(area_luts)
        self.clock_mhz = clock_mhz
        self.primitives = RUNTIME_PRIMITIVE_AREA

    def cost(self, inst: Instruction) -> int:
        """Latency in cycles of ``inst`` as a hardware operation."""
        return self.latency.get(inst.opcode, DEFAULT_HW_LATENCY)

    def opcode_cost(self, opcode: Opcode) -> int:
        return self.latency.get(opcode, DEFAULT_HW_LATENCY)

    def luts(self, inst: Instruction) -> int:
        return self.area_luts.get(inst.opcode, DEFAULT_HW_LUTS)

    def dsps(self, inst: Instruction) -> int:
        return self.area_dsp.get(inst.opcode, 0)

    def area_product(self, inst: Instruction) -> float:
        """cycle * area product used by the partitioner's hardware weight (§5.2)."""
        return float(max(1, self.cost(inst)) * max(1, self.luts(inst)))

    def is_chainable(self, opcode: Opcode) -> bool:
        """Can several of these be chained combinationally within one FSM state?"""
        return opcode in (
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.TRUNC,
            Opcode.ZEXT,
            Opcode.SEXT,
            Opcode.BITCAST,
            Opcode.GEP,
            Opcode.PHI,
            Opcode.SELECT,
            Opcode.ICMP,
        )
