"""Lightweight wall-clock stage timers for the compiler/simulator hot paths.

The pipeline's coarse stages (``lex``, ``parse``, ``lower``, ``ssa``,
``dswp``, ``hls``, ``interp``, ``replay``) are wrapped in :func:`stage`
context managers at their call sites.  Timing is off by default and costs
one ``None`` check per stage entry; inside a :func:`collect` block every
stage accumulates wall-clock seconds and a call count into the active
:class:`StageTimings`.

Timers observe but never influence the pipeline: they read the monotonic
clock around a stage and touch no simulation state, so collected runs stay
byte-identical to uncollected ones.  ``repro profile`` and the report's
run-metadata section are the two consumers; ``tools/bench_hotpath.py``
uses the same collector for the before/after stage tables.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

#: Canonical stage names, in pipeline order (used for stable table output).
#: ``ingest`` covers raw-C workload ingestion (repro.ingest.evaluate) and
#: ``explore`` one candidate evaluation (repro.explore.evaluate).
STAGES = ("lex", "parse", "lower", "ssa", "interp", "dswp", "hls", "replay", "ingest", "explore")


class StageTimings:
    """Accumulated wall-clock per stage: total seconds and call counts."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, stage_name: str, elapsed: float) -> None:
        self.seconds[stage_name] = self.seconds.get(stage_name, 0.0) + elapsed
        self.calls[stage_name] = self.calls.get(stage_name, 0) + 1

    def total(self) -> float:
        """Sum of all stage seconds (stages never nest, so this is additive)."""
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON form: ``{stage: {"seconds": s, "calls": n}}`` in pipeline order."""
        ordered = [s for s in STAGES if s in self.seconds]
        ordered += sorted(set(self.seconds) - set(STAGES))
        return {
            s: {"seconds": round(self.seconds[s], 6), "calls": self.calls[s]}
            for s in ordered
        }

    def table(self) -> str:
        """Human-readable fixed-width table (``repro profile`` output)."""
        rows = ["stage      seconds    calls"]
        for name, entry in self.as_dict().items():
            rows.append(f"{name:<9} {entry['seconds']:>8.4f} {entry['calls']:>8d}")
        rows.append(f"{'total':<9} {self.total():>8.4f}")
        return "\n".join(rows)


_active: Optional[StageTimings] = None

#: Optional ``(stage_name, elapsed_seconds)`` callback fed on every timed
#: stage regardless of any :func:`collect` block.  The metrics bridge
#: (:func:`repro.obs.metrics.install_stage_observer`) is the one consumer.
_observer: Optional[Callable[[str, float], None]] = None


def set_stage_observer(observer: Optional[Callable[[str, float], None]]) -> Optional[Callable[[str, float], None]]:
    """Install (or clear, with ``None``) the stage observer; returns the
    previous one so scoped callers can restore it."""
    global _observer
    previous = _observer
    _observer = observer
    return previous


@contextmanager
def collect() -> Iterator[StageTimings]:
    """Enable stage timing for the dynamic extent; yields the accumulator.

    Re-entrant: a nested ``collect`` shadows the outer one for its extent
    (the outer block simply does not see the inner block's stages).
    """
    global _active
    previous = _active
    timings = StageTimings()
    _active = timings
    try:
        yield timings
    finally:
        _active = previous


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time one stage execution; free (one ``None`` check) when not collecting."""
    recorder = _active
    observer = _observer
    if recorder is None and observer is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if recorder is not None:
            recorder.add(name, elapsed)
        if observer is not None:
            observer(name, elapsed)
