"""LegUp-analogue high-level synthesis: FSM scheduling, binding and area.

Twill uses LegUp's pure-hardware flow to turn the hardware partitions into
Verilog state machines (thesis §3.1.2, §5.4).  This package reproduces the
parts of that flow the evaluation depends on:

* list scheduling of each basic block into FSM states, with operator
  chaining and a configurable issue width (the ILP LegUp exploits);
* functional-unit binding with resource sharing, which drives the LUT/DSP
  area accounting (Table 6.2);
* the pure-hardware "LegUp baseline" flow used as the comparison point in
  every figure of Chapter 6.
"""

from repro.hls.scheduling import FSMSchedule, ScheduledState, HLSScheduler
from repro.hls.binding import BindingResult, bind_function
from repro.hls.area import AreaEstimate, AreaModel
from repro.hls.legup import LegUpFlow, LegUpResult

__all__ = [
    "FSMSchedule",
    "ScheduledState",
    "HLSScheduler",
    "BindingResult",
    "bind_function",
    "AreaEstimate",
    "AreaModel",
    "LegUpFlow",
    "LegUpResult",
]
