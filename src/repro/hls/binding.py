"""Functional-unit binding with resource sharing.

LegUp does not instantiate one functional unit per IR operation: operations
of the same kind that are scheduled in *different* FSM states share a unit
(plus an input multiplexer).  The number of units needed for an opcode is
therefore the peak number of simultaneously-active operations of that kind
across all states — which is what this module computes, and what the area
model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hls.scheduling import FSMSchedule
from repro.ir.instructions import Instruction, Opcode

# Sharing a functional unit costs an input multiplexer per extra user.
MUX_LUTS_PER_SHARED_INPUT = 6

# Opcodes worth sharing (expensive units); cheap logic is simply replicated.
SHAREABLE_OPCODES = {
    Opcode.MUL,
    Opcode.SDIV,
    Opcode.UDIV,
    Opcode.SREM,
    Opcode.UREM,
    Opcode.SHL,
    Opcode.LSHR,
    Opcode.ASHR,
}


@dataclass
class BindingResult:
    """Functional-unit requirements of one scheduled function/partition."""

    units: Dict[Opcode, int] = field(default_factory=dict)          # peak concurrent uses
    total_operations: Dict[Opcode, int] = field(default_factory=dict)
    mux_luts: int = 0

    def unit_count(self, opcode: Opcode) -> int:
        return self.units.get(opcode, 0)

    def operation_count(self, opcode: Opcode) -> int:
        return self.total_operations.get(opcode, 0)


def bind_function(schedule: FSMSchedule, share_resources: bool = True) -> BindingResult:
    """Compute functional-unit requirements from an FSM schedule.

    With ``share_resources`` (the Twill hardware-thread flow) expensive units
    are time-multiplexed across states, so the unit count is the *peak*
    per-state demand; without it (LegUp's default pure-HW flow, which only
    shares units when the resource-constraint pragmas are used) every
    operation gets its own unit.
    """
    result = BindingResult()
    for block_schedule in schedule.blocks.values():
        for state in block_schedule.states:
            per_state: Dict[Opcode, int] = {}
            for inst in state.operations:
                per_state[inst.opcode] = per_state.get(inst.opcode, 0) + 1
                result.total_operations[inst.opcode] = result.total_operations.get(inst.opcode, 0) + 1
            for opcode, count in per_state.items():
                if opcode in SHAREABLE_OPCODES and share_resources:
                    result.units[opcode] = max(result.units.get(opcode, 0), count)
                else:
                    result.units[opcode] = result.units.get(opcode, 0) + count

    if not share_resources:
        return result
    # Sharing cost: every use beyond the unit count pays an input mux.
    for opcode in SHAREABLE_OPCODES:
        total = result.total_operations.get(opcode, 0)
        units = result.units.get(opcode, 0)
        if total > units > 0:
            result.mux_luts += (total - units) * MUX_LUTS_PER_SHARED_INPUT
    return result
