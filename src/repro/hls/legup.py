"""The pure-hardware LegUp baseline flow.

The thesis compares Twill against "LegUp's pure HW translation": the whole
benchmark synthesised into FPGA logic, with the Tiger/Microblaze processor
removed.  This module packages that baseline: schedule every function,
bind functional units, and report area — the timing side of the baseline is
handled by the simulator's ``pure_hw`` configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import HLSConfig
from repro.costmodel.hardware import HardwareCostModel
from repro.hls.area import AreaEstimate, AreaModel
from repro.hls.binding import BindingResult, bind_function
from repro.hls.scheduling import FSMSchedule, HLSScheduler
from repro.ir.module import Module


@dataclass
class LegUpResult:
    """Output of the pure-hardware flow for one module."""

    schedules: Dict[str, FSMSchedule] = field(default_factory=dict)
    bindings: Dict[str, BindingResult] = field(default_factory=dict)
    function_areas: Dict[str, AreaEstimate] = field(default_factory=dict)
    memory_area: AreaEstimate = field(default_factory=AreaEstimate)

    @property
    def total_area(self) -> AreaEstimate:
        total = AreaEstimate()
        for area in self.function_areas.values():
            total = total.merged_with(area)
        return total.merged_with(self.memory_area)

    @property
    def total_luts(self) -> int:
        return self.total_area.luts

    @property
    def total_brams(self) -> int:
        return self.total_area.brams

    def state_count(self) -> int:
        return sum(s.state_count for s in self.schedules.values())


class LegUpFlow:
    """Schedules and sizes a whole module as a pure-hardware design."""

    def __init__(
        self,
        config: Optional[HLSConfig] = None,
        hardware: Optional[HardwareCostModel] = None,
    ):
        self.config = config or HLSConfig()
        self.hardware = hardware or HardwareCostModel()
        self.scheduler = HLSScheduler(self.config, self.hardware)
        self.area_model = AreaModel(self.hardware)

    def run(self, module: Module) -> LegUpResult:
        result = LegUpResult()
        for fn in module.defined_functions():
            schedule = self.scheduler.schedule_function(fn)
            binding = bind_function(schedule, share_resources=False)
            result.schedules[fn.name] = schedule
            result.bindings[fn.name] = binding
            result.function_areas[fn.name] = self.area_model.datapath_area(schedule, binding)
        result.memory_area = self.area_model.legup_memory_area(module)
        return result
