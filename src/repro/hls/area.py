"""FPGA area accounting (LUTs, DSP blocks, BRAM) — the Table 6.2 model.

Three area totals matter in the thesis's evaluation:

* **LegUp pure HW** — the whole benchmark synthesised as one circuit, with
  BRAM blocks for globals/arrays;
* **Twill HWThreads** — only the LUTs of the LegUp-translated hardware
  partitions (smaller than pure HW because part of the work stays on the
  processor);
* **Twill** — HWThreads plus the runtime system (queues, semaphores, busses,
  memory-coherency logic);
* **Twill + Microblaze** — everything plus the soft processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.costmodel.hardware import HardwareCostModel, RUNTIME_PRIMITIVE_AREA
from repro.hls.binding import BindingResult, bind_function
from repro.hls.scheduling import FSMSchedule
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.types import ArrayType

from repro.costmodel.hardware import (
    FSM_LUTS_PER_STATE,
    REGISTER_LUTS_PER_LIVE_VALUE,
    THREAD_BASE_LUTS,
)


@dataclass
class AreaEstimate:
    """Area of one circuit (a thread, a function, or a whole design)."""

    luts: int = 0
    dsps: int = 0
    brams: int = 0
    detail: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, luts: int = 0, dsps: int = 0, brams: int = 0) -> None:
        self.luts += luts
        self.dsps += dsps
        self.brams += brams
        if luts:
            self.detail[label] = self.detail.get(label, 0) + luts

    def merged_with(self, other: "AreaEstimate") -> "AreaEstimate":
        merged = AreaEstimate(self.luts + other.luts, self.dsps + other.dsps, self.brams + other.brams)
        merged.detail = dict(self.detail)
        for key, value in other.detail.items():
            merged.detail[key] = merged.detail.get(key, 0) + value
        return merged


class AreaModel:
    """Computes LUT/DSP/BRAM estimates for scheduled hardware."""

    def __init__(self, hardware: Optional[HardwareCostModel] = None):
        self.hardware = hardware or HardwareCostModel()
        self.primitives = RUNTIME_PRIMITIVE_AREA

    # -- datapath -----------------------------------------------------------------

    def datapath_area(self, schedule: FSMSchedule, binding: Optional[BindingResult] = None) -> AreaEstimate:
        """Area of one hardware thread's datapath + FSM."""
        binding = binding or bind_function(schedule)
        estimate = AreaEstimate()
        for opcode, units in binding.units.items():
            luts = self.hardware.area_luts.get(opcode, 8) * units
            dsps = self.hardware.area_dsp.get(opcode, 0) * units
            estimate.add(f"fu:{opcode.value}", luts=luts, dsps=dsps)
        estimate.add("fu:muxes", luts=binding.mux_luts)
        estimate.add("fsm", luts=schedule.state_count * FSM_LUTS_PER_STATE)
        estimate.add("thread-control", luts=THREAD_BASE_LUTS)
        # Pipeline registers: one 32-bit register per state is a reasonable
        # stand-in for LegUp's per-state live-value registers.
        estimate.add("registers", luts=schedule.state_count * REGISTER_LUTS_PER_LIVE_VALUE)
        return estimate

    # -- memories ----------------------------------------------------------------------

    def legup_memory_area(self, module: Module) -> AreaEstimate:
        """BRAM blocks LegUp instantiates for globals/arrays (pure-HW flow).

        The thesis notes most benchmarks used 10-15 BRAM blocks under pure
        LegUp synthesis while Twill stores hardware-thread data in the
        processor's memory instead (§6.2).
        """
        estimate = AreaEstimate()
        for g in module.globals.values():
            size = g.value_type.size_bytes()
            # One 18kbit BRAM holds 2 KiB; small scalars live in registers.
            if isinstance(g.value_type, ArrayType) and size > 64:
                brams = max(1, (size + 2047) // 2048)
                estimate.add(f"bram:{g.name}", brams=brams)
        return estimate

    # -- runtime system -------------------------------------------------------------------

    def runtime_area(
        self,
        num_queues: int,
        num_semaphores: int,
        num_hw_threads: int,
        queue_depth: int = 8,
        queue_width: int = 32,
        num_processors: int = 1,
    ) -> AreaEstimate:
        """Area of the Twill runtime system (§6.2 component figures)."""
        p = self.primitives
        estimate = AreaEstimate()
        estimate.add("queues", luts=num_queues * p.queue_luts(queue_depth, queue_width), dsps=num_queues * p.queue_dsp)
        estimate.add("semaphores", luts=num_semaphores * p.semaphore_luts)
        estimate.add("hw-interfaces", luts=num_hw_threads * p.hw_interface_luts)
        estimate.add("processor-interface", luts=num_processors * p.processor_interface_luts)
        estimate.add("scheduler", luts=p.scheduler_luts, dsps=p.scheduler_dsp)
        estimate.add("bus-arbiters", luts=p.num_bus_arbiters * p.bus_arbiter_luts)
        return estimate

    def microblaze_area(self) -> AreaEstimate:
        estimate = AreaEstimate()
        estimate.add("microblaze", luts=self.primitives.microblaze_luts, brams=self.primitives.microblaze_bram)
        return estimate
