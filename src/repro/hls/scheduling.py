"""Operation scheduling into FSM states (the LegUp scheduler analogue).

Each basic block is scheduled independently with a dependence-aware list
scheduler: operations whose operands are ready issue together in one state,
bounded by the configured issue width; cheap combinational operations can be
chained behind their producers within the same state; multi-cycle operations
(dividers, memory reads over the runtime bus) occupy several states.

The resulting :class:`FSMSchedule` provides two things the rest of the
system needs:

* ``block_latency`` — cycles to execute one pass through a block in
  hardware, which the timing simulator uses for HW-thread timing;
* ``state_count`` — number of FSM states, which feeds the area model
  (FSM/control LUTs grow with state count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import HLSConfig
from repro.costmodel.hardware import HardwareCostModel
from repro.errors import SchedulingError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Phi


@dataclass
class ScheduledState:
    """One FSM state: the operations that start in it."""

    index: int
    operations: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)


@dataclass
class BlockSchedule:
    """Schedule of one basic block."""

    block: BasicBlock
    states: List[ScheduledState] = field(default_factory=list)
    start_cycle: Dict[int, int] = field(default_factory=dict)   # id(inst) -> relative cycle
    latency: int = 0                                            # cycles for one pass

    @property
    def state_count(self) -> int:
        return len(self.states)


@dataclass
class FSMSchedule:
    """Schedule of a whole function."""

    function: Function
    blocks: Dict[str, BlockSchedule] = field(default_factory=dict)

    @property
    def state_count(self) -> int:
        return sum(b.state_count for b in self.blocks.values())

    def block_latency(self, block_name: str) -> int:
        return self.blocks[block_name].latency

    def instruction_start(self, inst: Instruction) -> int:
        """Relative start cycle of ``inst`` within its block's schedule."""
        if inst.parent is None:
            return 0
        block = self.blocks.get(inst.parent.name)
        if block is None:
            return 0
        return block.start_cycle.get(id(inst), 0)

    def total_latency_estimate(self, block_counts: Optional[Dict[str, float]] = None) -> float:
        """Estimated execution cycles given per-block execution counts."""
        total = 0.0
        for name, sched in self.blocks.items():
            count = 1.0 if block_counts is None else block_counts.get(name, 0.0)
            total += sched.latency * count
        return total


class HLSScheduler:
    """Dependence-aware list scheduler with chaining and bounded issue width."""

    def __init__(self, config: Optional[HLSConfig] = None, hardware: Optional[HardwareCostModel] = None):
        self.config = config or HLSConfig()
        self.config.validate()
        self.hardware = hardware or HardwareCostModel()

    # -- public API ----------------------------------------------------------------

    def schedule_function(self, fn: Function, only: Optional[List[Instruction]] = None) -> FSMSchedule:
        """Schedule every block of ``fn``.

        ``only`` restricts scheduling to a subset of instructions (used when a
        hardware partition owns just part of the function); branch
        terminators are always included.
        """
        if fn.is_declaration():
            raise SchedulingError(f"cannot schedule declaration {fn.name}")
        keep = None if only is None else {id(i) for i in only}
        schedule = FSMSchedule(function=fn)
        for block in fn.blocks:
            if keep is not None and not any(id(inst) in keep for inst in block.instructions):
                # A hardware partition only materialises states for the blocks
                # it owns work in (the thesis prunes unused blocks from each
                # partition, §5.2); skipping them here keeps the per-thread
                # FSM/register area proportional to the partition's own code.
                continue
            instructions = [
                inst
                for inst in block.instructions
                if keep is None or id(inst) in keep or inst.is_terminator()
            ]
            schedule.blocks[block.name] = self._schedule_block(block, instructions)
        return schedule

    # -- block scheduling ----------------------------------------------------------------

    def _schedule_block(self, block: BasicBlock, instructions: List[Instruction]) -> BlockSchedule:
        result = BlockSchedule(block=block)
        if not instructions:
            result.latency = 1
            result.states.append(ScheduledState(0))
            return result

        in_block = {id(i) for i in instructions}
        finish: Dict[int, int] = {}
        issued_per_cycle: Dict[int, int] = {}
        current_cycle = 0

        for inst in instructions:
            latency = self.hardware.cost(inst)
            # Earliest cycle all in-block operands are available.
            ready = 0
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) in in_block:
                    op_finish = finish.get(id(op), 0)
                    if self.config.enable_chaining and self.hardware.is_chainable(inst.opcode):
                        # Chained ops can start in the producer's final cycle.
                        ready = max(ready, max(op_finish - 1, 0))
                    else:
                        ready = max(ready, op_finish)
            if isinstance(inst, Phi):
                ready = 0  # phis resolve on state entry
            start = max(ready, 0)
            # Respect the issue-width budget (terminators never count).
            if not inst.is_terminator():
                while issued_per_cycle.get(start, 0) >= self.config.issue_width:
                    start += 1
                issued_per_cycle[start] = issued_per_cycle.get(start, 0) + 1
            else:
                # The terminator evaluates in the last state of the block.
                start = max(start, current_cycle)
            finish[id(inst)] = start + max(latency, 1 if not self._is_free(inst) else 0)
            result.start_cycle[id(inst)] = start
            current_cycle = max(current_cycle, start)

        latency = max(finish.values()) if finish else 1
        result.latency = max(1, latency)
        # Materialise states for the area model (one per occupied start cycle).
        by_cycle: Dict[int, List[Instruction]] = {}
        for inst in instructions:
            by_cycle.setdefault(result.start_cycle[id(inst)], []).append(inst)
        for index, cycle in enumerate(sorted(by_cycle)):
            result.states.append(ScheduledState(index=index, operations=by_cycle[cycle]))
        return result

    @staticmethod
    def _is_free(inst: Instruction) -> bool:
        """Zero-latency operations (casts, phis) that melt into wiring."""
        return inst.opcode in (Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT, Opcode.BITCAST, Opcode.PHI)
