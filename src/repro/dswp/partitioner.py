"""DSWP heuristic partitioner (thesis §5.2, pass 3).

The partitioner operates on the SCC condensation of a function's PDG.  It
assigns SCCs to an ordered list of partitions such that

* every SCC lands in exactly one partition,
* cross-partition dependences never form a cycle (guaranteed by assigning
  SCCs in topological order), and
* each partition's accumulated weight tracks a *targeted percentage* of the
  total work, where the first partition is the software partition whose
  target is the developer-supplied SW share and the remaining partitions are
  hardware partitions sharing the rest.

This mirrors the greedy heuristic the thesis describes: keep a sorted list
of SCCs whose predecessors are all placed, compare the total software and
hardware weight of the ready list when a partition is opened to decide its
domain, then add the smallest ready SCCs until the target is exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.errors import PartitionError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.pdg.graph import ProgramDependenceGraph
from repro.pdg.scc import StronglyConnectedComponent, component_of_map, topological_order
from repro.pdg.weights import WeightModel


class PartitionKind(str, Enum):
    """Execution domain of a partition."""

    SOFTWARE = "sw"
    HARDWARE = "hw"


@dataclass
class Partition:
    """One extracted thread-to-be."""

    index: int
    kind: PartitionKind
    scc_indices: List[int] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)
    sw_weight: float = 0.0
    hw_weight: float = 0.0
    target_weight: float = 0.0
    is_master: bool = False

    def is_hardware(self) -> bool:
        return self.kind is PartitionKind.HARDWARE

    def is_software(self) -> bool:
        return self.kind is PartitionKind.SOFTWARE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Partition #{self.index} {self.kind.value} sccs={len(self.scc_indices)} "
            f"insts={len(self.instructions)} sw={self.sw_weight:.0f}>"
        )


@dataclass
class FunctionPartitioning:
    """The partitioning decision for one function."""

    function: Function
    partitions: List[Partition]
    assignment: Dict[int, int]                 # id(instruction) -> partition index
    components: List[StronglyConnectedComponent]
    pdg: ProgramDependenceGraph
    sw_fraction: float

    def partition_of(self, inst: Instruction) -> int:
        return self.assignment[id(inst)]

    # -- pickling ---------------------------------------------------------------------
    #
    # ``assignment`` is keyed by id(inst), and object ids do not survive a
    # pickle round trip (a cached artifact's instructions unpickle at new
    # addresses, so every lookup — e.g. ThreadAssignment.from_partitioning —
    # would silently miss and the hybrid would degenerate to pure software).
    # The map is exactly the inverse of the partitions' instruction lists
    # (see DSWPPartitioner: both are materialised in one loop), so drop it on
    # pickle and rebuild it from the unpickled instruction objects.

    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["assignment"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        if self.assignment is None:
            self.assignment = {
                id(inst): partition.index
                for partition in self.partitions
                for inst in partition.instructions
            }

    def software_partitions(self) -> List[Partition]:
        return [p for p in self.partitions if p.is_software()]

    def hardware_partitions(self) -> List[Partition]:
        return [p for p in self.partitions if p.is_hardware()]

    def master_partition(self) -> Partition:
        for p in self.partitions:
            if p.is_master:
                return p
        return self.partitions[0]

    def achieved_sw_fraction(self) -> float:
        """Fraction of (software-cycle) work actually placed on SW partitions."""
        total = sum(p.sw_weight for p in self.partitions)
        if total <= 0:
            return 0.0
        return sum(p.sw_weight for p in self.software_partitions()) / total

    def non_empty_partitions(self) -> List[Partition]:
        return [p for p in self.partitions if p.instructions]


class DSWPPartitioner:
    """Greedy targeted-percentage partitioner."""

    def __init__(self, weight_model: WeightModel, cold_execution_threshold: float = 8.0):
        self.weight_model = weight_model
        # SCCs whose instructions execute at most this many times are "cold"
        # and eligible for the software partition.
        self.cold_execution_threshold = cold_execution_threshold

    def _max_dynamic_count(self, scc: StronglyConnectedComponent) -> float:
        counts = [self.weight_model.weights(i).dynamic_count for i in scc.instructions]
        return max(counts) if counts else 0.0

    # -- public API -----------------------------------------------------------------

    def partition_function(
        self,
        fn: Function,
        pdg: ProgramDependenceGraph,
        num_partitions: int,
        sw_fraction: float,
        master_in_software: bool = True,
    ) -> FunctionPartitioning:
        """Partition ``fn`` into ``num_partitions`` pipeline stages.

        ``sw_fraction`` is the targeted share of work (measured in software
        cycles) placed on the software partition; the remaining work is
        spread evenly over the hardware partitions.
        """
        if num_partitions < 1:
            raise PartitionError(f"num_partitions must be >= 1, got {num_partitions}")
        if not 0.0 <= sw_fraction <= 1.0:
            raise PartitionError(f"sw_fraction must be within [0, 1], got {sw_fraction}")

        from repro.pdg.scc import condense  # local import to avoid cycles

        components = condense(pdg)
        self.weight_model.annotate_sccs(components)
        by_index = {scc.index: scc for scc in components}
        total_dynamic = sum(scc.sw_weight for scc in components) or 1.0
        total_static = sum(scc.size() for scc in components) or 1

        # Targets.  Partition 0 is the software/master partition; its target
        # is a share of the *static* instruction count (the thesis's reported
        # "75%/25%" split is a static workload split), and it preferentially
        # absorbs the SCCs that are cheapest to run on the processor — i.e.
        # the cold control/bookkeeping code — exactly what the thesis's
        # "resort by the appropriate weight, add the smallest SCCs" rule does.
        # The hardware partitions share the remaining *dynamic* work evenly so
        # the pipeline stages are balanced.
        sw_static_target = sw_fraction * total_static
        partitions = [
            Partition(
                index=i,
                kind=PartitionKind.SOFTWARE if i == 0 else PartitionKind.HARDWARE,
                is_master=(i == 0),
            )
            for i in range(num_partitions)
        ]
        if not master_in_software and num_partitions > 1:
            partitions[0].kind = PartitionKind.HARDWARE

        # Greedy fill honouring dependences: only SCCs whose predecessors are
        # already placed are eligible ("ready"), which guarantees that every
        # cross-partition edge points from an earlier partition to the current
        # one (no cycles between partitions).
        assignment_of_scc: Dict[int, int] = {}
        placed_static = 0.0
        remaining_indices = {scc.index for scc in components}

        def ready_sccs() -> List[StronglyConnectedComponent]:
            out = []
            for idx in remaining_indices:
                scc = by_index[idx]
                if all(pred in assignment_of_scc for pred in scc.predecessors):
                    out.append(scc)
            return out

        def place(scc: StronglyConnectedComponent, partition: Partition) -> None:
            nonlocal placed_static
            partition.scc_indices.append(scc.index)
            assignment_of_scc[scc.index] = partition.index
            partition.sw_weight += scc.sw_weight
            partition.hw_weight += scc.hw_weight
            placed_static += scc.size()
            remaining_indices.discard(scc.index)

        # 1. Software partition: the processor keeps the *cold* control and
        #    bookkeeping code (smallest dynamic weight first) up to its static
        #    share.  Hot loop SCCs never go to the processor here — placing a
        #    loop-carried SCC on the MicroBlaze would put a slow sequential
        #    stage plus per-iteration stream transfers on the pipeline's
        #    critical path, which is exactly the pathology the thesis observes
        #    on Blowfish (§6.4).
        sw_partition = partitions[0]
        sw_partition.target_weight = sw_static_target
        hot_threshold = self.cold_execution_threshold
        while remaining_indices and num_partitions > 1:
            candidates = [
                scc
                for scc in ready_sccs()
                if self._max_dynamic_count(scc) <= hot_threshold
            ]
            if not candidates:
                break
            candidates.sort(key=lambda s: (s.sw_weight, s.size(), s.index))
            scc = candidates[0]
            if placed_static + scc.size() > sw_static_target and sw_partition.scc_indices:
                break
            place(scc, sw_partition)
            if placed_static >= sw_static_target:
                break

        # 2. Hardware partitions: split the remaining dynamic work evenly,
        #    smallest hardware weight first within each partition.
        remaining_dynamic = sum(by_index[i].sw_weight for i in remaining_indices)
        hw_partitions = partitions[1:] if num_partitions > 1 else partitions[:1]
        hw_target = remaining_dynamic / max(1, len(hw_partitions))
        for position, partition in enumerate(hw_partitions):
            partition.target_weight = hw_target
            is_last = position == len(hw_partitions) - 1
            while remaining_indices:
                candidates = ready_sccs()
                if not candidates:
                    break
                candidates.sort(key=lambda s: (s.hw_weight, s.size(), s.index))
                scc = candidates[0]
                place(scc, partition)
                if not is_last and partition.sw_weight >= hw_target:
                    break
        # Anything still unplaced (blocked behind SCCs in the last partition)
        # joins the last partition.
        while remaining_indices:
            candidates = ready_sccs()
            if not candidates:  # pragma: no cover - defensive
                candidates = [by_index[i] for i in remaining_indices]
            for scc in candidates:
                place(scc, partitions[-1])

        # Materialise instruction lists and the instruction -> partition map.
        scc_of_inst = component_of_map(components)
        assignment: Dict[int, int] = {}
        for fn_inst in fn.instructions():
            scc_index = scc_of_inst[id(fn_inst)]
            partition_index = assignment_of_scc[scc_index]
            assignment[id(fn_inst)] = partition_index
            partitions[partition_index].instructions.append(fn_inst)

        self._validate_acyclic(components, assignment_of_scc)
        return FunctionPartitioning(
            function=fn,
            partitions=partitions,
            assignment=assignment,
            components=components,
            pdg=pdg,
            sw_fraction=sw_fraction,
        )

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _targets(num_partitions: int, sw_fraction: float, total_weight: float) -> List[float]:
        if num_partitions == 1:
            return [total_weight]
        sw_target = sw_fraction * total_weight
        hw_total = total_weight - sw_target
        hw_each = hw_total / (num_partitions - 1)
        return [sw_target] + [hw_each] * (num_partitions - 1)

    @staticmethod
    def _validate_acyclic(
        components: Sequence[StronglyConnectedComponent],
        assignment_of_scc: Dict[int, int],
    ) -> None:
        """Cross-partition edges must only go from lower to higher partition index."""
        for scc in components:
            src_partition = assignment_of_scc[scc.index]
            for succ in scc.successors:
                dst_partition = assignment_of_scc[succ]
                if dst_partition < src_partition:
                    raise PartitionError(
                        "partition assignment creates a backward cross-partition edge "
                        f"(SCC {scc.index} in partition {src_partition} -> "
                        f"SCC {succ} in partition {dst_partition})"
                    )
