"""Materialisation of DSWP partitions as standalone IR thread functions.

Each partition of a function ``f`` becomes a new IR function named
``f_dswp_<k>`` (matching the thesis's ``<function name>_dswp_<partition>``
naming).  The extraction strategy replicates the *entire* control-flow
skeleton of the original function in every thread (all basic blocks and all
branch terminators) and then:

* keeps only the instructions assigned to the partition;
* inserts a ``consume`` at the defining position of every value that the
  partition uses but another partition computes;
* inserts a ``produce`` right after every value this partition computes that
  another partition consumes (one per consuming partition, each with its own
  queue).

Full control replication is a simplification relative to the thesis (which
prunes blocks a partition does not need and then patches branch targets to
post-dominators); it trades some redundant branch work for a guarantee that
produce/consume counts match on every control path, which makes the
loop-matching cases of Figure 5.3 fall out automatically.  The trade-off is
documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dswp.partitioner import FunctionPartitioning, Partition, PartitionKind
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    CondBranch,
    Consume,
    Instruction,
    Phi,
    Produce,
    Return,
    Switch,
)
from repro.ir.module import Module
from repro.ir.types import IntType, PointerType
from repro.ir.values import Constant, Value
from repro.transforms.inline import clone_instruction


@dataclass
class ExtractedThread:
    """One generated thread function."""

    function: Function
    source_function: str
    partition_index: int
    kind: PartitionKind
    is_master: bool
    queue_reads: List[int] = field(default_factory=list)
    queue_writes: List[int] = field(default_factory=list)


@dataclass
class ExtractionResult:
    """All threads extracted from one source function."""

    source_function: str
    threads: List[ExtractedThread]
    queue_count: int
    queue_map: Dict[Tuple[int, int], int]   # (id(value), consumer partition) -> queue id

    def thread_for_partition(self, index: int) -> ExtractedThread:
        for thread in self.threads:
            if thread.partition_index == index:
                return thread
        raise KeyError(index)


class ThreadExtractor:
    """Generates the per-partition thread functions."""

    def __init__(self, module: Module, next_queue_id: int = 0):
        self.module = module
        self.next_queue_id = next_queue_id

    def extract(self, partitioning: FunctionPartitioning) -> ExtractionResult:
        fn = partitioning.function
        threads: List[ExtractedThread] = []
        queue_map: Dict[Tuple[int, int], int] = {}

        # Which foreign partitions consume each value?  (value, consumer partition)
        consumers: Dict[int, List[int]] = {}
        for inst in fn.instructions():
            inst_partition = partitioning.assignment[id(inst)]
            for op in inst.operands:
                if isinstance(op, Instruction):
                    op_partition = partitioning.assignment.get(id(op))
                    if op_partition is not None and op_partition != inst_partition:
                        consumers.setdefault(id(op), [])
                        if inst_partition not in consumers[id(op)]:
                            consumers[id(op)].append(inst_partition)
        # Branch conditions: every partition replicates every branch, so a
        # partition that does not own a branch's condition consumes it.
        all_partitions = [p.index for p in partitioning.partitions if p.instructions]
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, (CondBranch, Switch)) and term.num_operands():
                cond = term.get_operand(0)
                if isinstance(cond, Instruction):
                    cond_partition = partitioning.assignment.get(id(cond))
                    for p in all_partitions:
                        if p != cond_partition:
                            consumers.setdefault(id(cond), [])
                            if p not in consumers[id(cond)]:
                                consumers[id(cond)].append(p)

        def queue_for(value: Instruction, consumer_partition: int) -> int:
            key = (id(value), consumer_partition)
            if key not in queue_map:
                queue_map[key] = self.next_queue_id
                self.next_queue_id += 1
            return queue_map[key]

        for partition in partitioning.partitions:
            if not partition.instructions and not partition.is_master:
                continue
            thread = self._extract_partition(fn, partitioning, partition, consumers, queue_for)
            threads.append(thread)

        return ExtractionResult(
            source_function=fn.name,
            threads=threads,
            queue_count=len(queue_map),
            queue_map=queue_map,
        )

    # -- one partition --------------------------------------------------------------

    def _extract_partition(
        self,
        fn: Function,
        partitioning: FunctionPartitioning,
        partition: Partition,
        consumers: Dict[int, List[int]],
        queue_for,
    ) -> ExtractedThread:
        name = f"{fn.name}_dswp_{partition.index}"
        new_fn = Function(name, fn.function_type, [a.name for a in fn.args], parent=self.module)
        if self.module.has_function(name):
            # Re-extraction (e.g. with a different split): replace the old thread.
            del self.module.functions[name]
        self.module.add_function(new_fn)

        block_map: Dict[int, BasicBlock] = {}
        for old_block in fn.blocks:
            new_block = BasicBlock(old_block.name, parent=new_fn)
            new_fn.blocks.append(new_block)
            block_map[id(old_block)] = new_block

        value_map: Dict[int, Value] = {}
        for old_arg, new_arg in zip(fn.args, new_fn.args):
            value_map[id(old_arg)] = new_arg

        queue_reads: List[int] = []
        queue_writes: List[int] = []
        phi_fixups: List[Tuple[Phi, Phi]] = []

        keep = partitioning.assignment
        my_index = partition.index

        for old_block in fn.blocks:
            new_block = block_map[id(old_block)]
            for inst in old_block.instructions:
                owned = keep.get(id(inst)) == my_index
                is_term = inst.is_terminator()
                if not owned and not is_term:
                    # Foreign instruction: if this partition consumes its value,
                    # a consume takes its place (same block, same position).
                    if id(inst) in consumers and my_index in consumers[id(inst)]:
                        queue_id = queue_for(inst, my_index)
                        width_type = (
                            inst.type
                            if isinstance(inst.type, (IntType, PointerType))
                            else IntType(32, True)
                        )
                        consume = Consume(queue_id, width_type, name=f"{inst.name or 'v'}.q{queue_id}")
                        new_block.append(consume)
                        value_map[id(inst)] = consume
                        queue_reads.append(queue_id)
                    continue
                cloned = clone_instruction(inst, value_map, block_map)
                value_map[id(inst)] = cloned
                new_block.append(cloned)
                if isinstance(inst, Phi):
                    phi_fixups.append((inst, cloned))  # type: ignore[arg-type]
                # If another partition consumes this value, produce it here.
                if owned and id(inst) in consumers:
                    for consumer_partition in consumers[id(inst)]:
                        if consumer_partition == my_index:
                            continue
                        queue_id = queue_for(inst, consumer_partition)
                        new_block.append(Produce(queue_id, cloned))
                        queue_writes.append(queue_id)

        # Second pass: fill phi incoming edges now that every value is mapped.
        for old_phi, new_phi in phi_fixups:
            for value, pred in old_phi.incoming():
                mapped_value = value_map.get(id(value), value)
                mapped_pred = block_map[id(pred)]
                new_phi.add_incoming(mapped_value, mapped_pred)

        # Foreign operands of cloned instructions that were never consumed
        # (e.g. a branch condition owned elsewhere but not registered) would
        # leave dangling references; map them to consumes at the start of the
        # defining block as a safety net.
        self._patch_dangling_operands(fn, new_fn, partitioning, partition, value_map, block_map, queue_for, queue_reads)

        return ExtractedThread(
            function=new_fn,
            source_function=fn.name,
            partition_index=partition.index,
            kind=partition.kind,
            is_master=partition.is_master,
            queue_reads=sorted(set(queue_reads)),
            queue_writes=sorted(set(queue_writes)),
        )

    @staticmethod
    def _patch_dangling_operands(
        fn: Function,
        new_fn: Function,
        partitioning: FunctionPartitioning,
        partition: Partition,
        value_map: Dict[int, Value],
        block_map: Dict[int, BasicBlock],
        queue_for,
        queue_reads: List[int],
    ) -> None:
        for old_block in fn.blocks:
            new_block = block_map[id(old_block)]
            for new_inst in list(new_block.instructions):
                for index, op in enumerate(new_inst.operands):
                    if isinstance(op, Instruction) and op.parent is not None and op.parent.parent is fn:
                        # Operand still points into the *original* function.
                        mapped = value_map.get(id(op))
                        if mapped is None:
                            queue_id = queue_for(op, partition.index)
                            width_type = (
                                op.type
                                if isinstance(op.type, (IntType, PointerType))
                                else IntType(32, True)
                            )
                            consume = Consume(queue_id, width_type, name=f"{op.name or 'v'}.q{queue_id}")
                            def_block = block_map[id(op.parent)]
                            def_block.insert(def_block.first_non_phi_index(), consume)
                            value_map[id(op)] = consume
                            queue_reads.append(queue_id)
                            mapped = consume
                        new_inst.set_operand(index, mapped)
