"""DSWP driver: partition every function of a module and aggregate the results.

This is the module-level orchestration of the thesis's DSWP pass: build the
PDG per function, decide how many pipeline partitions each function gets,
run the greedy partitioner, allocate queues and semaphores, and (optionally)
materialise the partition threads.  The aggregate statistics (number of
queues, semaphores and hardware threads) are the quantities reported in the
thesis's Table 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.callgraph import CallGraph
from repro.analysis.loops import LoopInfo
from repro.config import PartitionConfig
from repro.dswp.partitioner import DSWPPartitioner, FunctionPartitioning, PartitionKind
from repro.dswp.queues import QueueAllocation, allocate_queues, allocate_semaphores
from repro.dswp.thread_extraction import ExtractionResult, ThreadExtractor
from repro.interp.profile import Profile
from repro.ir.function import Function
from repro.ir.module import Module
from repro.pdg.builder import build_pdg
from repro.pdg.weights import WeightModel


@dataclass
class ModulePartitioning:
    """Per-function partitionings plus the module-wide queue/semaphore bookkeeping."""

    module: Module
    functions: Dict[str, FunctionPartitioning] = field(default_factory=dict)
    queues: Dict[str, QueueAllocation] = field(default_factory=dict)
    semaphores: Dict[str, int] = field(default_factory=dict)
    extractions: Dict[str, ExtractionResult] = field(default_factory=dict)

    # -- Table 6.1 style aggregates ----------------------------------------------------

    @property
    def total_queues(self) -> int:
        return sum(q.queue_count for q in self.queues.values())

    @property
    def total_semaphores(self) -> int:
        return sum(self.semaphores.values())

    @property
    def hardware_thread_count(self) -> int:
        count = 0
        for partitioning in self.functions.values():
            count += sum(
                1
                for p in partitioning.partitions
                if p.is_hardware() and p.instructions
            )
        return count

    @property
    def software_thread_count(self) -> int:
        count = 0
        for partitioning in self.functions.values():
            count += sum(
                1
                for p in partitioning.partitions
                if p.is_software() and p.instructions
            )
        return count

    def achieved_sw_fraction(self) -> float:
        """Work share (software cycles) actually placed on the processor."""
        total = 0.0
        sw = 0.0
        for partitioning in self.functions.values():
            for p in partitioning.partitions:
                total += p.sw_weight
                if p.is_software():
                    sw += p.sw_weight
        return sw / total if total > 0 else 0.0

    def partition_of(self, fn_name: str, inst) -> Optional[int]:
        partitioning = self.functions.get(fn_name)
        if partitioning is None:
            return None
        return partitioning.assignment.get(id(inst))


@dataclass
class DSWPResult:
    """Everything the DSWP stage produces."""

    partitioning: ModulePartitioning
    weight_model: WeightModel
    config: PartitionConfig

    def summary(self) -> Dict[str, float]:
        return {
            "queues": self.partitioning.total_queues,
            "semaphores": self.partitioning.total_semaphores,
            "hw_threads": self.partitioning.hardware_thread_count,
            "sw_threads": self.partitioning.software_thread_count,
            "sw_fraction": round(self.partitioning.achieved_sw_fraction(), 4),
        }


def decide_partition_count(
    fn: Function, weight_model: WeightModel, config: PartitionConfig
) -> int:
    """How many pipeline partitions should ``fn`` get?

    One software partition plus as many hardware partitions as the function's
    weight justifies (``work_per_partition`` software cycles each), capped by
    ``max_partitions_per_function``.  Tiny functions stay single-partition
    (they will simply run wherever their caller's pipeline puts them).
    """
    total = weight_model.function_sw_cycles(fn)
    if total < config.work_per_partition / 4:
        return 1
    extra = int(total // config.work_per_partition)
    return max(2, min(config.max_partitions_per_function, 1 + max(1, extra)))


def run_dswp(
    module: Module,
    profile: Optional[Profile] = None,
    config: Optional[PartitionConfig] = None,
    weight_model: Optional[WeightModel] = None,
    extract_threads: bool = False,
    sw_fraction: Optional[float] = None,
) -> DSWPResult:
    """Run the DSWP partitioning over every defined function of ``module``."""
    config = config or PartitionConfig()
    config.validate()
    if weight_model is None:
        if profile is None or not config.use_profile_weights:
            profile = Profile.static_estimate(module)
        weight_model = WeightModel(profile)
    partitioner = DSWPPartitioner(weight_model)
    callgraph = CallGraph(module)
    callgraph.check_no_recursion()

    target_sw = config.sw_fraction if sw_fraction is None else sw_fraction

    result = ModulePartitioning(module=module)
    extractor = ThreadExtractor(module) if extract_threads else None
    queue_id_base = 0

    for fn in callgraph.top_down_order():
        if fn.is_declaration():
            continue
        pdg = build_pdg(fn)
        loop_info = LoopInfo(fn)
        count = decide_partition_count(fn, weight_model, config)
        # main()'s master must stay on the processor (§5.3); other functions'
        # masters live wherever their caller's pipeline placed the call.
        master_in_sw = config.master_in_software or fn.name != "main"
        partitioning = partitioner.partition_function(
            fn,
            pdg,
            num_partitions=count,
            sw_fraction=target_sw,
            master_in_software=config.master_in_software,
        )
        allocation = allocate_queues(
            partitioning,
            loop_info,
            queue_depth=8,
            queue_width=32,
            start_id=queue_id_base,
        )
        queue_id_base += allocation.queue_count
        result.functions[fn.name] = partitioning
        result.queues[fn.name] = allocation
        if extractor is not None and count > 1:
            result.extractions[fn.name] = extractor.extract(partitioning)

    result.semaphores = allocate_semaphores(module, list(result.functions.keys()))
    return DSWPResult(partitioning=result, weight_model=weight_model, config=config)
