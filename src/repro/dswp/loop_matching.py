"""Enqueue/dequeue loop-matching rules (thesis §5.2.1, Figure 5.3).

When a value defined in one partition is used in another, the produce and
consume calls must be placed so that for any control-flow path each loop
iteration enqueues exactly as many values as the consumer dequeues.  The
thesis distinguishes four cases based on the innermost loops of the
``defined`` and ``use`` instructions relative to their common loop:

* (d) same loop — produce right after the definition, consume right before
  the use;
* (a) the use sits in a sub-loop — produce after the definition, consume in
  the use loop's preheader(s);
* (b) the definition sits in a sub-loop — produce in the definition loop's
  exit block(s), consume right before the use;
* (c) definition and use sit in distinct (sibling) loops — produce in the
  definition loop's exits, consume in the use loop's preheaders.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.analysis.loops import Loop, LoopInfo
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction


class LoopMatchCase(str, Enum):
    """The four cases of Figure 5.3."""

    SAME_LOOP = "same_loop"                 # (d)
    USE_IN_SUBLOOP = "use_in_subloop"       # (a)
    DEF_IN_SUBLOOP = "def_in_subloop"       # (b)
    DISTINCT_LOOPS = "distinct_loops"       # (c)


@dataclass
class Placement:
    """Where the produce and consume instructions should be inserted."""

    case: LoopMatchCase
    produce_blocks: List[BasicBlock]
    consume_blocks: List[BasicBlock]
    produce_after_def: bool
    consume_before_use: bool


def _loop_chain(loop: Optional[Loop]) -> List[Loop]:
    chain: List[Loop] = []
    while loop is not None:
        chain.append(loop)
        loop = loop.parent
    return chain


def _loop_below(common: Optional[Loop], loop: Optional[Loop]) -> Optional[Loop]:
    """The outermost loop strictly below ``common`` on the chain of ``loop``."""
    chain = _loop_chain(loop)
    if common is None:
        return chain[-1] if chain else None
    below: Optional[Loop] = None
    for candidate in chain:
        if candidate is common:
            break
        below = candidate
    return below


def classify_loop_match(
    defined: Instruction,
    use: Instruction,
    loop_info: LoopInfo,
) -> LoopMatchCase:
    """Classify a cross-partition def/use pair into one of the four cases."""
    assert defined.parent is not None and use.parent is not None
    def_loop = loop_info.innermost_loop_of(defined.parent)
    use_loop = loop_info.innermost_loop_of(use.parent)
    if def_loop is use_loop:
        return LoopMatchCase.SAME_LOOP
    common = loop_info.common_loop(defined.parent, use.parent)
    def_below = _loop_below(common, def_loop)
    use_below = _loop_below(common, use_loop)
    if def_below is None and use_below is not None:
        return LoopMatchCase.USE_IN_SUBLOOP
    if def_below is not None and use_below is None:
        return LoopMatchCase.DEF_IN_SUBLOOP
    if def_below is not None and use_below is not None:
        return LoopMatchCase.DISTINCT_LOOPS
    return LoopMatchCase.SAME_LOOP


def placement_blocks(
    defined: Instruction,
    use: Instruction,
    loop_info: LoopInfo,
) -> Placement:
    """Compute produce/consume placement per Figure 5.3."""
    assert defined.parent is not None and use.parent is not None
    case = classify_loop_match(defined, use, loop_info)
    def_loop = loop_info.innermost_loop_of(defined.parent)
    use_loop = loop_info.innermost_loop_of(use.parent)
    common = loop_info.common_loop(defined.parent, use.parent)
    def_below = _loop_below(common, def_loop)
    use_below = _loop_below(common, use_loop)

    if case is LoopMatchCase.SAME_LOOP:
        return Placement(case, [defined.parent], [use.parent], True, True)
    if case is LoopMatchCase.USE_IN_SUBLOOP:
        assert use_below is not None
        consume_blocks = use_below.preheaders() or [use_below.header]
        return Placement(case, [defined.parent], consume_blocks, True, False)
    if case is LoopMatchCase.DEF_IN_SUBLOOP:
        assert def_below is not None
        produce_blocks = def_below.exit_blocks() or [defined.parent]
        return Placement(case, produce_blocks, [use.parent], False, True)
    # DISTINCT_LOOPS
    assert def_below is not None and use_below is not None
    produce_blocks = def_below.exit_blocks() or [defined.parent]
    consume_blocks = use_below.preheaders() or [use_below.header]
    return Placement(case, produce_blocks, consume_blocks, False, False)
