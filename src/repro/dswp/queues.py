"""Cross-partition dependence discovery and queue/semaphore allocation.

One hardware queue is allocated per (produced value, consuming partition)
pair — the same granularity the thesis uses (a value consumed by two
different partitions needs two queues because each consumer dequeues at its
own rate).  Branch conditions that other partitions are control-dependent on
are broadcast the same way.

Semaphores are allocated for function threads that are re-used from call
sites in *different* caller functions (thesis §5.2.1, "Function Calls"):
mutual exclusion is needed only when the call sites cannot be proven
non-overlapping, which is exactly the multi-caller case after inlining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.loops import LoopInfo
from repro.dswp.loop_matching import LoopMatchCase, classify_loop_match
from repro.dswp.partitioner import FunctionPartitioning
from repro.ir.instructions import CondBranch, Instruction, Switch
from repro.ir.module import Module
from repro.pdg.graph import DependenceKind


@dataclass(frozen=True)
class CrossPartitionDep:
    """A value (or branch condition) that flows between two partitions."""

    value: Instruction
    consumer: Instruction
    producer_partition: int
    consumer_partition: int
    kind: DependenceKind
    loop_case: LoopMatchCase


@dataclass
class QueueSpec:
    """One allocated hardware queue."""

    queue_id: int
    function: str
    value: Instruction
    producer_partition: int
    consumer_partition: int
    width_bits: int = 32
    depth: int = 8
    deps: List[CrossPartitionDep] = field(default_factory=list)


@dataclass
class QueueAllocation:
    """All queues and semaphores allocated for one function partitioning."""

    function: str
    queues: List[QueueSpec] = field(default_factory=list)
    deps: List[CrossPartitionDep] = field(default_factory=list)
    semaphore_count: int = 0

    @property
    def queue_count(self) -> int:
        return len(self.queues)


def find_cross_partition_deps(
    partitioning: FunctionPartitioning,
    loop_info: Optional[LoopInfo] = None,
) -> List[CrossPartitionDep]:
    """Every PDG data/control dependence whose endpoints live in different partitions."""
    fn = partitioning.function
    loop_info = loop_info or LoopInfo(fn)
    deps: List[CrossPartitionDep] = []
    seen: Set[Tuple[int, int, int]] = set()
    for edge in partitioning.pdg.edges:
        src = partitioning.assignment.get(id(edge.tail))
        dst = partitioning.assignment.get(id(edge.head))
        if src is None or dst is None or src == dst:
            continue
        if edge.kind is DependenceKind.DATA:
            value, consumer = edge.tail, edge.head
        elif edge.kind is DependenceKind.CONTROL and isinstance(edge.tail, (CondBranch, Switch)):
            # The consuming partition replicates the branch, so it needs the
            # branch *condition* value forwarded.
            condition = edge.tail.get_operand(0) if edge.tail.num_operands() else None
            if not isinstance(condition, Instruction):
                continue
            value, consumer = condition, edge.head
        else:
            # Memory and fake edges do not move register values; the memory
            # ordering is enforced by the single memory-owner rule.
            continue
        key = (id(value), id(consumer), dst)
        if key in seen:
            continue
        seen.add(key)
        deps.append(
            CrossPartitionDep(
                value=value,
                consumer=consumer,
                producer_partition=partitioning.assignment.get(id(value), src),
                consumer_partition=dst,
                kind=edge.kind,
                loop_case=classify_loop_match(value, consumer, loop_info),
            )
        )
    return deps


def allocate_queues(
    partitioning: FunctionPartitioning,
    loop_info: Optional[LoopInfo] = None,
    queue_depth: int = 8,
    queue_width: int = 32,
    start_id: int = 0,
) -> QueueAllocation:
    """Group cross-partition deps into queues: one per (value, consumer partition)."""
    fn = partitioning.function
    deps = find_cross_partition_deps(partitioning, loop_info)
    allocation = QueueAllocation(function=fn.name, deps=deps)
    by_key: Dict[Tuple[int, int], QueueSpec] = {}
    next_id = start_id
    for dep in deps:
        key = (id(dep.value), dep.consumer_partition)
        spec = by_key.get(key)
        if spec is None:
            width = dep.value.type.size_bytes() * 8 if dep.value.type.is_integer() else queue_width
            spec = QueueSpec(
                queue_id=next_id,
                function=fn.name,
                value=dep.value,
                producer_partition=dep.producer_partition,
                consumer_partition=dep.consumer_partition,
                width_bits=min(width, queue_width),
                depth=queue_depth,
            )
            next_id += 1
            by_key[key] = spec
            allocation.queues.append(spec)
        spec.deps.append(dep)
    return allocation


def allocate_semaphores(module: Module, partitioned_functions: List[str]) -> Dict[str, int]:
    """Semaphores per function: one for each partitioned function whose thread is
    shared by call sites in more than one caller function."""
    callgraph = CallGraph(module)
    result: Dict[str, int] = {}
    for name in partitioned_functions:
        callers = [c for c in callgraph.callers_of(name) if c != name]
        result[name] = 1 if len(callers) > 1 else 0
    return result
