"""Modified Decoupled Software Pipelining (DSWP) — Twill's thread extractor.

The pipeline implemented here follows thesis §5.2/§5.2.1/§5.3:

1. build the PDG of every function (``repro.pdg``);
2. condense it into SCCs and weight them (software cycles vs hardware
   cycle·area product);
3. greedily assign SCCs to partitions against targeted work percentages,
   never splitting an SCC and never creating a cross-partition cycle;
4. split partitions across the HW/SW domains (the master of ``main`` always
   stays in software);
5. allocate queues for every cross-partition value and branch condition,
   applying the loop-matching placement rules, and allocate semaphores for
   reused function threads;
6. (optionally) materialise the partition threads as new IR functions with
   ``produce``/``consume`` instructions.
"""

from repro.dswp.partitioner import (
    DSWPPartitioner,
    FunctionPartitioning,
    Partition,
    PartitionKind,
)
from repro.dswp.queues import CrossPartitionDep, QueueAllocation, QueueSpec, allocate_queues
from repro.dswp.loop_matching import LoopMatchCase, classify_loop_match, placement_blocks
from repro.dswp.thread_extraction import ThreadExtractor, ExtractedThread
from repro.dswp.pipeline import DSWPResult, ModulePartitioning, run_dswp

__all__ = [
    "DSWPPartitioner",
    "FunctionPartitioning",
    "Partition",
    "PartitionKind",
    "CrossPartitionDep",
    "QueueAllocation",
    "QueueSpec",
    "allocate_queues",
    "LoopMatchCase",
    "classify_loop_match",
    "placement_blocks",
    "ThreadExtractor",
    "ExtractedThread",
    "DSWPResult",
    "ModulePartitioning",
    "run_dswp",
]
