"""Exception hierarchy shared by every subsystem of the Twill reproduction.

Each stage of the pipeline raises a dedicated subclass of
:class:`ReproError` so callers can distinguish "the input C program is
malformed" from "the compiler itself violated one of its invariants".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class FrontendError(ReproError):
    """Base class for errors raised while processing C source text."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        #: The position-free message, for callers (the ingest diagnostics
        #: layer) that render their own ``file:line:col:`` prefix.
        self.raw_message = message
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)


class LexerError(FrontendError):
    """Raised when the lexer encounters a character sequence it cannot tokenize."""


class ParseError(FrontendError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(FrontendError):
    """Raised for type errors, undeclared identifiers, and other semantic problems."""


class UnsupportedFeatureError(FrontendError):
    """Raised for C constructs outside the supported subset (e.g. recursion,
    function pointers, 64-bit values) — the same restrictions Twill documents."""


class IngestError(ReproError):
    """Raised when a raw ``.c`` file cannot be ingested as a workload — the
    file is unreadable, preprocessing failed (missing include, include
    cycle), or the frontend reported diagnostics.  Carries the structured
    :class:`repro.frontend.diagnostics.Diagnostic` list when one exists."""

    def __init__(self, message: str, diagnostics=None):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message)


class IRError(ReproError):
    """Raised when the IR is manipulated in an inconsistent way."""


class VerificationError(IRError):
    """Raised by the IR verifier when a module violates an IR invariant."""


class InterpreterError(ReproError):
    """Raised when functional execution of an IR module fails."""


class InterpreterTrap(InterpreterError):
    """Raised for runtime traps during interpretation (division by zero,
    out-of-bounds memory access, etc.)."""


class PartitionError(ReproError):
    """Raised when the DSWP partitioner cannot produce a legal partition."""


class SchedulingError(ReproError):
    """Raised when the HLS scheduler cannot schedule a function."""


class SimulationError(ReproError):
    """Raised when the timing simulator reaches an inconsistent state."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class UnknownWorkloadError(ReproError, KeyError):
    """Raised when a workload name is not in the registry.

    Also a :class:`KeyError` for callers treating the registry as a mapping.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0] if self.args else ""


class CacheIntegrityError(ReproError):
    """Raised when a cached artifact fails its HMAC signature check (the
    envelope is missing, malformed, or signed with a different key).  The
    cache layer converts this into a miss, so a tampered or foreign entry is
    recomputed instead of unpickled."""


class RemoteError(ReproError):
    """Base class for errors raised by the distributed execution subsystem
    (:mod:`repro.eval.remote`): cache service, coordinator, and workers."""


class RemoteProtocolError(RemoteError):
    """Raised when a task cannot be encoded for (or decoded from) the wire —
    an unregistered payload function, an unserialisable argument, or a
    malformed message from a peer."""


class RemoteTaskError(RemoteError):
    """Raised when a distributed task definitively failed: a worker reported
    an execution error, or every retry after worker crashes was exhausted."""


class TaskGraphError(ReproError):
    """Raised for malformed evaluation task graphs (unknown dependencies,
    conflicting node definitions)."""


class TaskGraphCycleError(TaskGraphError):
    """Raised when a task graph contains a dependency cycle and therefore
    has no executable topological order."""
