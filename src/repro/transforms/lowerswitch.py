"""lower-switch: expand ``switch`` terminators into compare/branch chains.

Twill runs LLVM's ``lowerswitch`` so later passes (and LegUp) only see
two-way branches; we do the same.  Each case becomes one equality compare in
its own block, chained toward the default target.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, CmpPredicate, CondBranch, ICmp, Switch
from repro.ir.types import IntType
from repro.ir.values import Constant
from repro.transforms.pass_manager import FunctionPass


class LowerSwitch(FunctionPass):
    """Replaces every Switch terminator with a chain of conditional branches."""

    name = "lowerswitch"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration():
            return False
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if isinstance(term, Switch):
                self._lower(fn, block, term)
                changed = True
        return changed

    @staticmethod
    def _lower(fn: Function, block: BasicBlock, switch: Switch) -> None:
        value = switch.value
        cases = list(switch.cases)
        default = switch.default
        # Record, per successor, the phi incoming value for the original block
        # so we can re-attach it to the new predecessor block(s).
        original_succs = switch.successors()
        phi_values: Dict[int, List] = {}
        for succ in original_succs:
            for phi in succ.phis():
                if block in phi.incoming_blocks:
                    phi_values.setdefault(id(succ), []).append((phi, phi.incoming_value_for(block)))
        for succ in set(id(s) for s in original_succs):
            pass

        # Remove the switch.
        block.remove_instruction(switch)
        switch.drop_all_operands()

        value_type = value.type if isinstance(value.type, IntType) else IntType(32, True)

        # Build the compare chain.  The first compare lives in the original
        # block; each subsequent compare gets a fresh block.
        current = block
        new_pred_of: Dict[int, List[BasicBlock]] = {}
        for i, (case_value, target) in enumerate(cases):
            is_last = i == len(cases) - 1
            cmp = ICmp(CmpPredicate.EQ, value, Constant(value_type, case_value), name=f"switch.cmp{i}")
            current.append(cmp)
            if is_last:
                next_block = default
                new_pred_of.setdefault(id(default), []).append(current)
            else:
                next_block = fn.create_block(f"{block.name}.case{i + 1}")
            current.append(CondBranch(cmp, target, next_block))
            new_pred_of.setdefault(id(target), []).append(current)
            if not is_last:
                current = next_block
        if not cases:
            current.append(Branch(default))
            new_pred_of.setdefault(id(default), []).append(current)

        # Re-attach phi incoming edges: the original block may no longer be a
        # predecessor of a successor; every new predecessor carries the same
        # incoming value the switch edge had.
        for succ in original_succs:
            pairs = phi_values.get(id(succ), [])
            preds = new_pred_of.get(id(succ), [])
            for phi, incoming in pairs:
                if block in phi.incoming_blocks and block not in [p for p in preds]:
                    phi.remove_incoming(block)
                for pred in preds:
                    if pred not in phi.incoming_blocks:
                        phi.add_incoming(incoming, pred)
