"""Pass manager: ordered execution of module/function passes with verification.

The manager is intentionally small — just enough structure that the Twill
compiler driver can describe its pipeline declaratively and tests can run
individual passes in isolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_module


class FunctionPass:
    """Base class: a pass that transforms one function at a time."""

    name = "function-pass"

    def run_on_function(self, fn: Function) -> bool:
        """Transform ``fn``; return True if anything changed."""
        raise NotImplementedError

    def run(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self.run_on_function(fn)
        return changed


class ModulePass:
    """Base class: a pass that needs whole-module visibility."""

    name = "module-pass"

    def run(self, module: Module) -> bool:
        """Transform ``module``; return True if anything changed."""
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes, optionally verifying the IR after each one."""

    def __init__(self, passes: Optional[Sequence[object]] = None, verify_each: bool = True):
        self.passes: List[object] = list(passes or [])
        self.verify_each = verify_each
        self.statistics: Dict[str, int] = {}

    def add(self, pass_obj: object) -> "PassManager":
        self.passes.append(pass_obj)
        return self

    def run(self, module: Module) -> bool:
        any_changed = False
        for pass_obj in self.passes:
            changed = pass_obj.run(module)  # type: ignore[attr-defined]
            name = getattr(pass_obj, "name", type(pass_obj).__name__)
            self.statistics[name] = self.statistics.get(name, 0) + int(bool(changed))
            any_changed |= bool(changed)
            if self.verify_each:
                verify_module(module)
        return any_changed


def default_pipeline(inline_threshold: int = 60, verify_each: bool = True) -> PassManager:
    """The standard Twill pre-DSWP pipeline (thesis §5.1).

    Order mirrors the thesis: cleanup / canonicalisation passes run first,
    then inlining, then SSA construction and scalar optimisations, then a
    final cleanup round so the PDG sees tidy SSA.
    """
    # Imports are local to avoid a circular import at package load time.
    from repro.transforms.constprop import ConstantPropagation
    from repro.transforms.dce import DeadCodeElimination
    from repro.transforms.inline import FunctionInliner
    from repro.transforms.lowerswitch import LowerSwitch
    from repro.transforms.mem2reg import PromoteMemoryToRegisters
    from repro.transforms.mergereturn import MergeReturns
    from repro.transforms.simplifycfg import SimplifyCFG

    return PassManager(
        [
            MergeReturns(),
            LowerSwitch(),
            SimplifyCFG(),
            FunctionInliner(threshold=inline_threshold),
            PromoteMemoryToRegisters(),
            ConstantPropagation(),
            SimplifyCFG(),
            DeadCodeElimination(),
            ConstantPropagation(),
            SimplifyCFG(),
            DeadCodeElimination(),
        ],
        verify_each=verify_each,
    )
