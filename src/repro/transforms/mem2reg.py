"""mem2reg: promote scalar allocas to SSA registers (Cytron et al.).

The front end lowers every local variable to an ``alloca`` plus loads and
stores; this pass rebuilds proper SSA form by placing phi nodes on iterated
dominance frontiers and renaming along the dominator tree — the same job
LLVM's ``mem2reg`` does in Twill's pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.dominators import DominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.types import IntType, PointerType
from repro.ir.values import UndefValue, Value
from repro.transforms.pass_manager import FunctionPass


def _is_promotable(alloca: Alloca) -> bool:
    """An alloca is promotable when it holds a scalar and its address never escapes."""
    if not isinstance(alloca.allocated_type, (IntType, PointerType)):
        return False
    for user, index in alloca.uses:
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and index == 1:
            continue  # used as the store *destination*
        return False
    return True


class PromoteMemoryToRegisters(FunctionPass):
    """Promote scalar stack slots into SSA values."""

    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration() or fn.entry_block is None:
            return False
        allocas = [
            inst
            for inst in fn.entry_block.instructions
            if isinstance(inst, Alloca) and _is_promotable(inst)
        ]
        # Also catch promotable allocas created outside the entry block
        # (the front end only creates them where declarations appear).
        for block in fn.blocks[1:]:
            for inst in block.instructions:
                if isinstance(inst, Alloca) and _is_promotable(inst):
                    allocas.append(inst)
        if not allocas:
            return False

        domtree = DominatorTree(fn)
        frontier = domtree.dominance_frontier()
        reachable = set(domtree.idom.keys()) | ({domtree.root} if domtree.root else set())

        # -- phase 1: phi placement on iterated dominance frontiers ------------
        phi_owner: Dict[Phi, Alloca] = {}
        for alloca in allocas:
            defining_blocks: List[BasicBlock] = []
            for user, index in alloca.uses:
                if isinstance(user, Store) and index == 1 and user.parent is not None:
                    if user.parent not in defining_blocks:
                        defining_blocks.append(user.parent)
            worklist = [b for b in defining_blocks if b in reachable]
            has_phi: Set[int] = set()
            while worklist:
                block = worklist.pop()
                for df_block in frontier.get(block, set()):
                    if id(df_block) in has_phi:
                        continue
                    has_phi.add(id(df_block))
                    phi = Phi(alloca.allocated_type, name=f"{alloca.name}.phi")
                    df_block.insert(0, phi)
                    phi_owner[phi] = alloca
                    if df_block not in defining_blocks:
                        worklist.append(df_block)

        # -- phase 2: renaming along the dominator tree --------------------------
        undef = UndefValue(allocas[0].allocated_type)
        current: Dict[Alloca, List[Value]] = {a: [UndefValue(a.allocated_type)] for a in allocas}
        alloca_set = set(id(a) for a in allocas)
        to_erase: List[Instruction] = []

        def rename(block: BasicBlock) -> None:
            pushed: Dict[Alloca, int] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Phi) and inst in phi_owner:
                    alloca = phi_owner[inst]
                    current[alloca].append(inst)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                elif isinstance(inst, Load) and id(inst.pointer) in alloca_set:
                    alloca = inst.pointer  # type: ignore[assignment]
                    inst.replace_all_uses_with(current[alloca][-1])
                    to_erase.append(inst)
                elif isinstance(inst, Store) and id(inst.pointer) in alloca_set:
                    alloca = inst.pointer  # type: ignore[assignment]
                    current[alloca].append(inst.value)
                    pushed[alloca] = pushed.get(alloca, 0) + 1
                    to_erase.append(inst)
            # Fill phi operands of successors for the edge (block -> succ).
            for succ in block.successors():
                for phi in succ.phis():
                    if phi in phi_owner:
                        alloca = phi_owner[phi]
                        phi.add_incoming(current[alloca][-1], block)
            # Recurse into dominator-tree children.
            for child in domtree.children.get(block, []):
                rename(child)
            for alloca, count in pushed.items():
                del current[alloca][-count:]

        root = domtree.root
        if root is not None:
            rename(root)

        # -- phase 3: clean up ------------------------------------------------------
        for inst in to_erase:
            if inst.parent is not None:
                # Loads may still appear used if they were replaced; they are not.
                inst.drop_all_operands()
                inst.parent.remove_instruction(inst)
        for alloca in allocas:
            remaining = [u for u, _ in alloca.uses if u.parent is not None]
            if not remaining and alloca.parent is not None:
                alloca.drop_all_operands()
                alloca.parent.remove_instruction(alloca)

        # Remove phi nodes in unreachable blocks that never got operands and
        # phi nodes that are trivially redundant (all operands identical).
        self._simplify_trivial_phis(fn, phi_owner)
        return True

    @staticmethod
    def _simplify_trivial_phis(fn: Function, phi_owner: Dict[Phi, "Alloca"]) -> None:
        changed = True
        while changed:
            changed = False
            for block in fn.blocks:
                for phi in list(block.phis()):
                    operands = phi.operands
                    if not operands:
                        if phi in phi_owner and not phi.is_used():
                            phi.erase_from_parent()
                            changed = True
                        continue
                    distinct = []
                    for op in operands:
                        if op is phi or isinstance(op, UndefValue):
                            continue
                        if op not in distinct:
                            distinct.append(op)
                    if len(distinct) == 1:
                        phi.replace_all_uses_with(distinct[0])
                        phi.erase_from_parent()
                        changed = True
                    elif len(distinct) == 0 and not phi.is_used():
                        phi.erase_from_parent()
                        changed = True
