"""IR-to-IR transformation passes (the LLVM transform-pass analogues).

The default pipeline mirrors the one the thesis lists in §5.1/§5.2:
``mem2reg``, ``mergereturn``, ``lowerswitch``, ``inline``, ``simplifycfg``,
constant propagation, dead-code elimination, plus Twill's custom
globals-to-arguments pass that runs before DSWP.
"""

from repro.transforms.pass_manager import PassManager, FunctionPass, ModulePass, default_pipeline
from repro.transforms.mem2reg import PromoteMemoryToRegisters
from repro.transforms.simplifycfg import SimplifyCFG
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.constprop import ConstantPropagation
from repro.transforms.inline import FunctionInliner
from repro.transforms.lowerswitch import LowerSwitch
from repro.transforms.mergereturn import MergeReturns
from repro.transforms.globals_to_args import GlobalsToArguments

__all__ = [
    "PassManager",
    "FunctionPass",
    "ModulePass",
    "default_pipeline",
    "PromoteMemoryToRegisters",
    "SimplifyCFG",
    "DeadCodeElimination",
    "ConstantPropagation",
    "FunctionInliner",
    "LowerSwitch",
    "MergeReturns",
    "GlobalsToArguments",
]
