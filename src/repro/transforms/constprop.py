"""Constant propagation and folding (``constprop``/``gvn``-lite analogue).

Folds binary operations, comparisons, selects and casts whose operands are
all constants, and simplifies a handful of algebraic identities
(``x + 0``, ``x * 1``, ``x * 0``, ``x & 0``, ``x | 0``, ``x ^ x``) that show
up frequently after inlining table-driven kernels.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Cast,
    CmpPredicate,
    ICmp,
    Opcode,
    Select,
    evaluate_binary,
    evaluate_icmp,
)
from repro.ir.types import I1, IntType
from repro.ir.values import Constant, Value
from repro.transforms.pass_manager import FunctionPass


class ConstantPropagation(FunctionPass):
    """Folds constant expressions until a fixed point."""

    name = "constprop"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration():
            return False
        changed = False
        progress = True
        while progress:
            progress = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    replacement = self._fold(inst)
                    if replacement is not None and replacement is not inst:
                        inst.replace_all_uses_with(replacement)
                        if not inst.is_used():
                            inst.drop_all_operands()
                            block.remove_instruction(inst)
                        progress = True
                        changed = True
        return changed

    # -- folding rules ----------------------------------------------------------

    def _fold(self, inst) -> Optional[Value]:
        if isinstance(inst, BinaryOp):
            return self._fold_binary(inst)
        if isinstance(inst, ICmp):
            return self._fold_icmp(inst)
        if isinstance(inst, Select):
            if isinstance(inst.condition, Constant):
                return inst.true_value if inst.condition.value != 0 else inst.false_value
            if inst.true_value is inst.false_value:
                return inst.true_value
            return None
        if isinstance(inst, Cast):
            return self._fold_cast(inst)
        return None

    @staticmethod
    def _fold_binary(inst: BinaryOp) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        ty = inst.type
        if not isinstance(ty, IntType):
            return None
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            try:
                return Constant(ty, evaluate_binary(inst.opcode, ty, lhs.value, rhs.value))
            except ZeroDivisionError:
                return None  # leave the trap for runtime
        # Algebraic identities with one constant operand.
        def is_const(v: Value, value: int) -> bool:
            return isinstance(v, Constant) and v.value == value

        op = inst.opcode
        if op is Opcode.ADD:
            if is_const(rhs, 0):
                return lhs
            if is_const(lhs, 0):
                return rhs
        elif op is Opcode.SUB and is_const(rhs, 0):
            return lhs
        elif op is Opcode.MUL:
            if is_const(rhs, 1):
                return lhs
            if is_const(lhs, 1):
                return rhs
            if is_const(rhs, 0) or is_const(lhs, 0):
                return Constant(ty, 0)
        elif op in (Opcode.SDIV, Opcode.UDIV) and is_const(rhs, 1):
            return lhs
        elif op is Opcode.AND:
            if is_const(rhs, 0) or is_const(lhs, 0):
                return Constant(ty, 0)
        elif op is Opcode.OR:
            if is_const(rhs, 0):
                return lhs
            if is_const(lhs, 0):
                return rhs
        elif op is Opcode.XOR:
            if is_const(rhs, 0):
                return lhs
            if is_const(lhs, 0):
                return rhs
            if lhs is rhs:
                return Constant(ty, 0)
        elif op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR) and is_const(rhs, 0):
            return lhs
        return None

    @staticmethod
    def _fold_icmp(inst: ICmp) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, Constant) and isinstance(lhs.type, IntType):
            result = evaluate_icmp(inst.predicate, lhs.type, lhs.value, rhs.value)
            return Constant(I1, result)
        if lhs is rhs:
            if inst.predicate in (CmpPredicate.EQ, CmpPredicate.SLE, CmpPredicate.SGE, CmpPredicate.ULE, CmpPredicate.UGE):
                return Constant(I1, 1)
            if inst.predicate in (CmpPredicate.NE, CmpPredicate.SLT, CmpPredicate.SGT, CmpPredicate.ULT, CmpPredicate.UGT):
                return Constant(I1, 0)
        return None

    @staticmethod
    def _fold_cast(inst: Cast) -> Optional[Value]:
        value = inst.value
        if isinstance(value, Constant) and isinstance(inst.type, IntType):
            if inst.opcode is Opcode.ZEXT and isinstance(value.type, IntType):
                raw = value.value & ((1 << value.type.bits) - 1)
                return Constant(inst.type, raw)
            return Constant(inst.type, value.value)
        if value.type == inst.type:
            return value
        return None
