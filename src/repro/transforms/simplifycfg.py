"""simplify-cfg: CFG cleanup.

Performs the subset of LLVM's ``simplifycfg`` that matters for this
pipeline:

* remove blocks unreachable from the entry;
* fold conditional branches whose condition is a constant;
* merge a block into its unique predecessor when that predecessor has a
  single successor;
* thread empty forwarding blocks (a block containing only an unconditional
  branch) when doing so cannot confuse phi nodes.
"""

from __future__ import annotations

from typing import List

from repro.analysis.cfg import reachable_blocks
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, CondBranch, Phi
from repro.ir.values import Constant
from repro.transforms.pass_manager import FunctionPass


class SimplifyCFG(FunctionPass):
    """Iteratively applies local CFG simplifications until a fixed point."""

    name = "simplifycfg"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration():
            return False
        changed = False
        iterating = True
        while iterating:
            iterating = False
            iterating |= self._remove_unreachable(fn)
            iterating |= self._fold_constant_branches(fn)
            iterating |= self._merge_single_pred_blocks(fn)
            iterating |= self._thread_empty_blocks(fn)
            changed |= iterating
        return changed

    # -- unreachable block removal ------------------------------------------------

    @staticmethod
    def _remove_unreachable(fn: Function) -> bool:
        reachable = set(id(b) for b in reachable_blocks(fn))
        dead = [b for b in fn.blocks if id(b) not in reachable]
        if not dead:
            return False
        dead_ids = set(id(b) for b in dead)
        # Remove phi entries that come from dead predecessors.
        for block in fn.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if id(pred) in dead_ids:
                        phi.remove_incoming(pred)
        # Drop uses inside dead blocks so values defined elsewhere don't keep
        # phantom use entries, then delete the blocks.
        for block in dead:
            for inst in list(block.instructions):
                if inst.is_used():
                    # Users must also be dead (SSA dominance) — clear them first.
                    for user, _ in list(inst.uses):
                        user.drop_all_operands()
                inst.drop_all_operands()
            block.instructions.clear()
            fn.remove_block(block)
        return True

    # -- constant branch folding -----------------------------------------------------

    @staticmethod
    def _fold_constant_branches(fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, CondBranch) and isinstance(term.condition, Constant):
                taken = term.true_target if term.condition.value != 0 else term.false_target
                not_taken = term.false_target if term.condition.value != 0 else term.true_target
                if not_taken is not taken:
                    for phi in not_taken.phis():
                        if block in phi.incoming_blocks:
                            phi.remove_incoming(block)
                block.remove_instruction(term)
                term.drop_all_operands()
                block.append(Branch(taken))
                changed = True
            elif isinstance(term, CondBranch) and term.true_target is term.false_target:
                target = term.true_target
                block.remove_instruction(term)
                term.drop_all_operands()
                block.append(Branch(target))
                changed = True
        return changed

    # -- merging ------------------------------------------------------------------------

    @staticmethod
    def _merge_single_pred_blocks(fn: Function) -> bool:
        """Merge ``succ`` into ``pred`` when pred has one successor and succ one predecessor."""
        changed = False
        for block in list(fn.blocks):
            if block not in fn.blocks:
                continue
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            succ = term.target
            if succ is block or succ is fn.entry_block:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            # Fold single-predecessor phis, then splice instructions.
            for phi in list(succ.phis()):
                value = phi.incoming_value_for(block)
                phi.replace_all_uses_with(value)
                phi.erase_from_parent()
            block.remove_instruction(term)
            term.drop_all_operands()
            for inst in list(succ.instructions):
                succ.remove_instruction(inst)
                block.append(inst)
            # Phis in the successors of succ must now name `block` as predecessor.
            for next_succ in block.successors():
                next_succ.replace_phi_uses_of_block(succ, block)
            fn.remove_block(succ)
            changed = True
        return changed

    # -- empty block threading ----------------------------------------------------------

    @staticmethod
    def _thread_empty_blocks(fn: Function) -> bool:
        """Bypass blocks that only contain an unconditional branch."""
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry_block or block not in fn.blocks:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            target = term.target
            if target is block:
                continue
            preds = block.predecessors()
            if not preds:
                continue
            # Threading is unsafe if the target has phis and any predecessor
            # already branches to the target (duplicate incoming edge) or if
            # the phi would need different values per predecessor.
            if target.phis():
                conflict = False
                for pred in preds:
                    if target in pred.successors():
                        conflict = True
                        break
                if conflict:
                    continue
            for pred in preds:
                pred_term = pred.terminator
                if pred_term is None:
                    continue
                pred_term.replace_successor(block, target)  # type: ignore[attr-defined]
            for phi in target.phis():
                value = phi.incoming_value_for(block)
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(value, pred)
            term.drop_all_operands()
            block.instructions.clear()
            fn.remove_block(block)
            changed = True
        return changed
