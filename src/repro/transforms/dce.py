"""Dead-code elimination (the ``adce``/``dce`` analogue in Twill's pipeline).

Removes instructions with no uses and no side effects, iterating until a
fixed point so chains of dead computations collapse.  Also drops dead
allocas whose only remaining users are stores (a store into memory nobody
reads is dead once the alloca has no loads).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Store
from repro.transforms.pass_manager import FunctionPass


class DeadCodeElimination(FunctionPass):
    """Iteratively deletes trivially dead instructions."""

    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration():
            return False
        changed = False
        progress = True
        while progress:
            progress = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.is_used() or inst.has_side_effects() or inst.is_terminator():
                        continue
                    if isinstance(inst, Alloca):
                        continue  # handled below (needs store analysis)
                    inst.drop_all_operands()
                    block.remove_instruction(inst)
                    progress = True
                    changed = True
            progress |= self._remove_dead_allocas(fn)
        return changed

    @staticmethod
    def _remove_dead_allocas(fn: Function) -> bool:
        """Remove allocas that are never loaded (and the stores into them)."""
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Alloca):
                    continue
                users = [u for u, _ in inst.uses]
                if any(not isinstance(u, (Load, Store)) for u in users):
                    continue  # address escapes through a GEP/call: keep it
                has_load = any(isinstance(u, Load) for u in users)
                if has_load:
                    continue
                # Only stores remain: all of them (and the alloca) are dead.
                dead_stores: List[Instruction] = [u for u in users if isinstance(u, Store)]
                for store in dead_stores:
                    if store.parent is not None:
                        store.drop_all_operands()
                        store.parent.remove_instruction(store)
                if not inst.is_used():
                    inst.drop_all_operands()
                    block.remove_instruction(inst)
                    changed = True
        return changed
