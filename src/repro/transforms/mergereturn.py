"""merge-return: canonicalise every function to a single return block.

Twill runs LLVM's ``mergereturn`` before DSWP so that the partition
functions have exactly one exit; the HLS FSM generation also assumes a
single final state.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Branch, Phi, Return
from repro.transforms.pass_manager import FunctionPass


class MergeReturns(FunctionPass):
    """Replaces multiple return blocks with branches into a single exit block."""

    name = "mergereturn"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration():
            return False
        returns: List[Return] = [
            block.terminator  # type: ignore[misc]
            for block in fn.blocks
            if isinstance(block.terminator, Return)
        ]
        if len(returns) <= 1:
            return False

        exit_block = fn.create_block("unified.exit")
        if fn.return_type.is_void():
            exit_block.append(Return(None))
            phi = None
        else:
            phi = Phi(fn.return_type, name="retval")
            exit_block.append(phi)
            exit_block.append(Return(phi))

        for ret in returns:
            block = ret.parent
            assert block is not None
            value = ret.value
            block.remove_instruction(ret)
            ret.drop_all_operands()
            if phi is not None and value is not None:
                phi.add_incoming(value, block)
            block.append(Branch(exit_block))
        return True
