"""Function inlining (the ``inline`` / ``always-inline`` analogue).

Call sites are inlined when the callee is defined, non-recursive and either
small (below ``threshold`` IR instructions) or called from exactly one
place.  Inlining happens bottom-up over the call graph so leaves disappear
first, which matches the behaviour Twill relies on (the MIPS and SHA
benchmarks end up fully inlined — thesis §6.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import reverse_postorder
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Value
from repro.transforms.pass_manager import ModulePass


def clone_instruction(
    inst: Instruction,
    value_map: Dict[int, Value],
    block_map: Dict[int, BasicBlock],
) -> Instruction:
    """Clone one instruction, remapping operands and branch targets.

    Phi incoming values are *not* filled here (they may reference values not
    cloned yet); the caller fills them in a second pass.
    """

    def v(operand: Value) -> Value:
        return value_map.get(id(operand), operand)

    def b(block: BasicBlock) -> BasicBlock:
        return block_map.get(id(block), block)

    if isinstance(inst, BinaryOp):
        return BinaryOp(inst.opcode, v(inst.lhs), v(inst.rhs), name=inst.name)
    if isinstance(inst, ICmp):
        return ICmp(inst.predicate, v(inst.lhs), v(inst.rhs), name=inst.name)
    if isinstance(inst, Select):
        return Select(v(inst.condition), v(inst.true_value), v(inst.false_value), name=inst.name)
    if isinstance(inst, Alloca):
        return Alloca(inst.allocated_type, name=inst.name)
    if isinstance(inst, Load):
        return Load(v(inst.pointer), name=inst.name)
    if isinstance(inst, Store):
        return Store(v(inst.value), v(inst.pointer))
    if isinstance(inst, GetElementPtr):
        return GetElementPtr(v(inst.base), [v(i) for i in inst.indices], inst.type, name=inst.name)
    if isinstance(inst, Cast):
        return Cast(inst.opcode, v(inst.value), inst.type, name=inst.name)
    if isinstance(inst, Branch):
        return Branch(b(inst.target))
    if isinstance(inst, CondBranch):
        return CondBranch(v(inst.condition), b(inst.true_target), b(inst.false_target))
    if isinstance(inst, Switch):
        new = Switch(v(inst.value), b(inst.default))
        for case_value, target in inst.cases:
            new.add_case(case_value, b(target))
        return new
    if isinstance(inst, Return):
        return Return(v(inst.value) if inst.value is not None else None)
    if isinstance(inst, Phi):
        return Phi(inst.type, name=inst.name)
    if isinstance(inst, Call):
        return Call(inst.callee, [v(a) for a in inst.args], name=inst.name)
    if isinstance(inst, Produce):
        return Produce(inst.queue_id, v(inst.value))
    if isinstance(inst, Consume):
        return Consume(inst.queue_id, inst.type, name=inst.name)
    raise TypeError(f"cannot clone instruction of type {type(inst).__name__}")  # pragma: no cover


class FunctionInliner(ModulePass):
    """Inlines small or single-use functions bottom-up."""

    name = "inline"

    def __init__(self, threshold: int = 60, remove_inlined: bool = True):
        self.threshold = threshold
        self.remove_inlined = remove_inlined

    # -- policy ----------------------------------------------------------------

    def _should_inline(self, callgraph: CallGraph, caller: Function, callee: Function) -> bool:
        if callee.is_declaration() or callee.name == "main":
            return False
        if callee is caller:
            return False
        size = callee.instruction_count()
        if size <= self.threshold:
            return True
        # Single static call site: always worth inlining regardless of size.
        total_sites = sum(
            callgraph.call_site_count(c, callee.name) for c in callgraph.callers_of(callee.name)
        )
        return total_sites == 1

    # -- driver -----------------------------------------------------------------

    def run(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        callgraph.check_no_recursion()
        changed = False
        for caller in callgraph.top_down_order():
            # Re-scan call sites after each inline since new ones appear.
            progress = True
            while progress:
                progress = False
                for call in caller.call_sites():
                    callee = call.callee
                    if self._should_inline(callgraph, caller, callee):
                        self.inline_call(call)
                        callgraph = CallGraph(module)
                        progress = True
                        changed = True
                        break
        if self.remove_inlined:
            changed |= self._remove_dead_functions(module)
        return changed

    @staticmethod
    def _remove_dead_functions(module: Module) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            callgraph = CallGraph(module)
            for fn in list(module.defined_functions()):
                if fn.name == "main":
                    continue
                if not callgraph.callers_of(fn.name):
                    # Drop the function body and the module entry.
                    for block in list(fn.blocks):
                        for inst in list(block.instructions):
                            inst.drop_all_operands()
                        block.instructions.clear()
                    fn.blocks.clear()
                    del module.functions[fn.name]
                    progress = True
                    changed = True
        return changed

    # -- mechanics ---------------------------------------------------------------

    @staticmethod
    def inline_call(call: Call) -> None:
        """Inline one call site in place."""
        callee = call.callee
        call_block = call.parent
        assert call_block is not None
        caller = call_block.parent
        assert caller is not None

        # 1. Split the call block: everything after the call moves to `after`.
        after = BasicBlock(caller.unique_block_name(f"{call_block.name}.after"), parent=caller)
        caller.insert_block_after(call_block, after)
        call_index = call_block.index_of(call)
        moved = call_block.instructions[call_index + 1 :]
        call_block.instructions = call_block.instructions[: call_index + 1]
        for inst in moved:
            inst.parent = after
            after.instructions.append(inst)
        # Successor phis that referenced call_block now flow from `after`.
        for succ in after.successors():
            succ.replace_phi_uses_of_block(call_block, after)

        # 2. Clone the callee body.
        value_map: Dict[int, Value] = {}
        block_map: Dict[int, BasicBlock] = {}
        for arg, actual in zip(callee.args, call.args):
            value_map[id(arg)] = actual
        cloned_blocks: List[Tuple[BasicBlock, BasicBlock]] = []
        for old_block in callee.blocks:
            new_block = BasicBlock(caller.unique_block_name(f"{callee.name}.{old_block.name}"), parent=caller)
            caller.blocks.append(new_block)
            block_map[id(old_block)] = new_block
            cloned_blocks.append((old_block, new_block))

        phi_fixups: List[Tuple[Phi, Phi]] = []
        returns: List[Tuple[BasicBlock, Optional[Value]]] = []
        for old_block in reverse_postorder(callee):
            new_block = block_map[id(old_block)]
            for old_inst in old_block.instructions:
                new_inst = clone_instruction(old_inst, value_map, block_map)
                value_map[id(old_inst)] = new_inst
                if isinstance(old_inst, Phi):
                    phi_fixups.append((old_inst, new_inst))  # type: ignore[arg-type]
                if isinstance(new_inst, Return):
                    value = new_inst.value
                    new_inst.drop_all_operands()
                    returns.append((new_block, value))
                    new_block.append(Branch(after))
                else:
                    new_block.append(new_inst)
        for old_phi, new_phi in phi_fixups:
            for value, pred in old_phi.incoming():
                mapped_value = value_map.get(id(value), value)
                mapped_pred = block_map[id(pred)]
                new_phi.add_incoming(mapped_value, mapped_pred)

        # Remove clones of unreachable callee blocks that got no instructions.
        for old_block, new_block in cloned_blocks:
            if not new_block.instructions:
                caller.remove_block(new_block)

        # 3. Wire the caller into the cloned entry and the returns into `after`.
        entry_clone = block_map[id(callee.entry_block)]
        # Replace the call with a branch to the cloned entry.
        if not call.type.is_void() and call.is_used():
            if len(returns) == 1:
                ret_block, ret_value = returns[0]
                assert ret_value is not None
                call.replace_all_uses_with(ret_value)
            else:
                phi = Phi(call.type, name=f"{callee.name}.ret")
                after.insert(0, phi)
                for ret_block, ret_value in returns:
                    assert ret_value is not None
                    phi.add_incoming(ret_value, ret_block)
                call.replace_all_uses_with(phi)
        call_block.remove_instruction(call)
        call.drop_all_operands()
        call_block.append(Branch(entry_clone))
