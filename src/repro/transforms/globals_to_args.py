"""Twill's custom globals-to-arguments pass (thesis §5.2, first DSWP pass).

LegUp synthesises each global into a private FPGA memory block, which would
desynchronise hardware threads from the processor.  Twill therefore rewrites
every function so the *address* of each global it touches is passed in as an
extra pointer parameter; after the pass the only direct global references
live in ``main``, which forwards them down the call tree.

The rewrite is performed in place: parameters are appended to the existing
:class:`~repro.ir.function.Function` objects (so call instructions keep their
callee identity), global uses are replaced with the new arguments, and every
call site gains the matching forwarded pointers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.callgraph import CallGraph
from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.module import Module
from repro.ir.types import FunctionType, PointerType
from repro.ir.values import Argument, GlobalVariable
from repro.transforms.pass_manager import ModulePass


class GlobalsToArguments(ModulePass):
    """Pass global addresses as explicit pointer parameters (except in main)."""

    name = "globals-to-args"

    def __init__(self, root_function: str = "main"):
        self.root_function = root_function

    def run(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        callgraph.check_no_recursion()

        # 1. Which globals does each function touch, transitively?
        direct: Dict[str, List[GlobalVariable]] = {}
        for fn in module.defined_functions():
            used: List[GlobalVariable] = []
            for inst in fn.instructions():
                for op in inst.operands:
                    if isinstance(op, GlobalVariable) and op not in used:
                        used.append(op)
            direct[fn.name] = used

        needed: Dict[str, List[GlobalVariable]] = {}
        for fn in callgraph.bottom_up_order():
            combined: List[GlobalVariable] = list(direct.get(fn.name, []))
            for callee_name in callgraph.callees_of(fn.name):
                for g in needed.get(callee_name, []):
                    if g not in combined:
                        combined.append(g)
            needed[fn.name] = combined

        # 2. Append one pointer parameter per needed global to every function
        #    except the root, and rewrite that function's own global uses.
        new_args: Dict[str, Dict[str, Argument]] = {}
        changed = False
        for fn in module.defined_functions():
            if fn.name == self.root_function:
                continue
            globals_for_fn = needed.get(fn.name, [])
            if not globals_for_fn:
                continue
            changed = True
            mapping: Dict[str, Argument] = {}
            for g in globals_for_fn:
                arg = Argument(g.type, f"g_{g.name}", len(fn.args), parent=fn)
                fn.args.append(arg)
                mapping[g.name] = arg
            new_type = FunctionType(
                fn.function_type.return_type,
                tuple(a.type for a in fn.args),
            )
            fn.function_type = new_type
            fn.type = new_type
            new_args[fn.name] = mapping
            # Replace direct uses of each global inside this function.
            for inst in list(fn.instructions()):
                for index, op in enumerate(inst.operands):
                    if isinstance(op, GlobalVariable) and op.name in mapping:
                        inst.set_operand(index, mapping[op.name])

        # 3. Fix every call site to forward the globals the callee needs.
        for fn in module.defined_functions():
            mapping = new_args.get(fn.name, {})
            for call in fn.call_sites():
                callee = call.callee
                extra = needed.get(callee.name, []) if not callee.is_declaration() else []
                if callee.name == self.root_function:
                    extra = []
                for g in extra:
                    if fn.name == self.root_function:
                        call.append_operand(g)
                    else:
                        call.append_operand(mapping[g.name])
        return changed
