"""Re-export of the configuration dataclasses under the public ``repro.core`` namespace.

The dataclasses themselves live in :mod:`repro.config` so that low-level
packages (``repro.dswp``, ``repro.sim``) can import them without pulling in
the full compiler driver.
"""

from repro.config import CompilerConfig, HLSConfig, PartitionConfig, RuntimeConfig

__all__ = ["CompilerConfig", "HLSConfig", "PartitionConfig", "RuntimeConfig"]
