"""Plain-text table formatting shared by the examples and the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def format_cell(value: object, float_format: str = "{:.2f}") -> str:
    """One value's display text: floats via *float_format*, ints comma-grouped.

    The single formatting rule behind the plain-text tables, the HTML report
    tables (:mod:`repro.viz.report_html`) and anything else that must agree
    with them byte-for-byte.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_result_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Union[str, Number]]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Format a list of rows into an aligned monospace table.

    Numbers are right-aligned (floats via ``float_format``), strings are
    left-aligned.  Used by every ``benchmarks/test_*`` harness so its output
    mirrors the corresponding table/figure of the thesis.
    """
    rows = [list(r) for r in rows]
    rendered: List[List[str]] = [
        [format_cell(value, float_format) for value in row] for row in rows
    ]

    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], row_values: Sequence[object] = ()) -> str:
        parts = []
        for i, cell in enumerate(cells):
            numeric = i < len(row_values) and isinstance(row_values[i], (int, float)) and not isinstance(row_values[i], bool)
            parts.append(cell.rjust(widths[i]) if numeric else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells, row in zip(rendered, rows):
        lines.append(fmt_row(cells, row))
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation the thesis uses for speedups)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
