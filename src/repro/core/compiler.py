"""The Twill compiler driver: C source in, hybrid-system evaluation out.

This is the public entry point of the reproduction.  It chains every stage
the thesis describes (Figure 5.1):

1. front end — parse + lower the C subset to SSA IR (``repro.frontend``);
2. the standard LLVM-style pass pipeline (``repro.transforms``);
3. Twill's globals-to-arguments pass;
4. functional execution to obtain outputs, a dynamic trace and a profile;
5. DSWP partitioning, queue/semaphore allocation and (optionally) thread
   extraction;
6. LegUp-style HLS scheduling and area estimation;
7. hybrid timing simulation of the pure-SW, pure-HW and Twill
   configurations, plus the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import perf
from repro.analysis.callgraph import CallGraph
from repro.config import CompilerConfig, RuntimeConfig
from repro.dswp.pipeline import DSWPResult, run_dswp
from repro.frontend.lowering import compile_c
from repro.hls.legup import LegUpFlow, LegUpResult
from repro.interp.interpreter import ExecutionResult, Interpreter
from repro.interp.profile import Profile
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.sim.system import HybridSystem, SystemResult
from repro.sim.system import resimulate_with_split as sim_resimulate_with_split
from repro.sim.timing import TimingResult, simulate_partitioned
from repro.transforms.globals_to_args import GlobalsToArguments
from repro.transforms.pass_manager import default_pipeline


@dataclass
class CompilationResult:
    """Everything produced by one compile-and-simulate run."""

    name: str
    module: Module
    execution: ExecutionResult
    profile: Profile
    dswp: DSWPResult
    legup: LegUpResult
    system: SystemResult

    # -- convenience accessors --------------------------------------------------------

    @property
    def outputs(self) -> List[int]:
        return self.execution.outputs

    @property
    def return_value(self) -> Optional[int]:
        return self.execution.return_value

    @property
    def speedup_vs_software(self) -> float:
        return self.system.speedup_vs_software

    @property
    def speedup_vs_hardware(self) -> float:
        return self.system.speedup_vs_hardware

    def dswp_summary(self) -> Dict[str, float]:
        return self.dswp.summary()

    def summary_dict(self) -> Dict[str, object]:
        """Machine-readable counterpart of :meth:`report` (``repro run --json``)."""
        s = self.system
        return {
            "benchmark": self.name,
            "queues": self.dswp.partitioning.total_queues,
            "semaphores": self.dswp.partitioning.total_semaphores,
            "hw_threads": self.dswp.partitioning.hardware_thread_count,
            "pure_sw_cycles": s.pure_software.cycles,
            "pure_hw_cycles": s.pure_hardware.cycles,
            "twill_cycles": s.twill.cycles,
            "speedup_vs_sw": s.speedup_vs_software,
            "speedup_vs_hw": s.speedup_vs_hardware,
            "legup_luts": s.pure_hardware.area.luts,
            "twill_luts": s.twill.area.luts,
        }

    def report(self) -> str:
        """Human-readable one-benchmark report."""
        s = self.system
        lines = [
            f"benchmark             : {self.name}",
            f"functional outputs    : {len(self.outputs)} values, checksum 0x{self.execution.output_checksum:08x}",
            f"dynamic instructions  : {len(self.execution.trace) if self.execution.trace else 0}",
            f"queues / semaphores   : {self.dswp.partitioning.total_queues} / {self.dswp.partitioning.total_semaphores}",
            f"hardware threads      : {self.dswp.partitioning.hardware_thread_count}",
            f"pure SW cycles        : {s.pure_software.cycles:,.0f}",
            f"pure HW cycles        : {s.pure_hardware.cycles:,.0f}",
            f"Twill cycles          : {s.twill.cycles:,.0f}",
            f"speedup vs pure SW    : {s.speedup_vs_software:.2f}x",
            f"speedup vs pure HW    : {s.speedup_vs_hardware:.2f}x",
            f"LegUp LUTs            : {s.pure_hardware.area.luts:,}",
            f"Twill HWThread LUTs   : {s.hw_thread_area.luts:,}",
            f"Twill LUTs (+runtime) : {s.twill.area.luts - self.system.twill.area.detail.get('microblaze', 0):,}",
            f"power (norm. to SW)   : HW {s.power_normalised()['pure_hw']:.2f}, Twill {s.power_normalised()['twill']:.2f}",
        ]
        return "\n".join(lines)


class TwillCompiler:
    """Drives the full compile → partition → schedule → simulate pipeline."""

    def __init__(self, config: Optional[CompilerConfig] = None):
        self.config = config or CompilerConfig()
        self.config.validate()

    # -- stage 1-3: front end and IR pipeline ----------------------------------------------

    def compile_module(self, source: str, name: str = "program") -> Module:
        """Parse, lower and optimise C source into a DSWP-ready IR module."""
        module = compile_c(source, module_name=name)
        with perf.stage("ssa"):
            CallGraph(module).check_no_recursion()
            pipeline = default_pipeline(
                inline_threshold=self.config.inline_threshold,
                verify_each=self.config.verify_passes,
            )
            pipeline.run(module)
            if self.config.globals_to_arguments:
                GlobalsToArguments().run(module)
            verify_module(module)
        return module

    # -- stage 4: functional execution --------------------------------------------------------

    def execute(self, module: Module, args: Sequence[int] = ()) -> ExecutionResult:
        with perf.stage("interp"):
            interpreter = Interpreter(
                module, record_trace=True, max_steps=self.config.max_interpreter_steps
            )
            return interpreter.run("main", args)

    # -- stage 5-7: partition, schedule, simulate ----------------------------------------------

    def compile_and_simulate(
        self,
        source: str,
        name: str = "program",
        args: Sequence[int] = (),
        sw_fraction: Optional[float] = None,
    ) -> CompilationResult:
        """Run the entire pipeline on a C source string."""
        module = self.compile_module(source, name)
        execution = self.execute(module, args)
        assert execution.trace is not None
        profile = (
            Profile.from_trace(module, execution.trace)
            if self.config.partition.use_profile_weights
            else Profile.static_estimate(module)
        )
        with perf.stage("dswp"):
            dswp = run_dswp(
                module,
                profile=profile,
                config=self.config.partition,
                extract_threads=self.config.extract_threads,
                sw_fraction=sw_fraction,
            )
        with perf.stage("hls"):
            legup = LegUpFlow(self.config.hls).run(module)
        with perf.stage("replay"):
            system = HybridSystem(self.config).evaluate(name, module, execution.trace, dswp, legup)
        return CompilationResult(
            name=name,
            module=module,
            execution=execution,
            profile=profile,
            dswp=dswp,
            legup=legup,
            system=system,
        )

    # -- parameter sweeps used by the evaluation ---------------------------------------------------

    def simulate_with_runtime(
        self, result: CompilationResult, runtime: RuntimeConfig
    ) -> TimingResult:
        """Re-run only the Twill timing simulation with a different runtime config
        (used for the queue latency / queue size sweeps of Figures 6.5 and 6.6).

        Delegates to the pure :func:`repro.sim.timing.simulate_partitioned`,
        the same function the task-graph sweep workers execute.
        """
        assert result.execution.trace is not None
        return simulate_partitioned(
            result.module, result.execution.trace, result.dswp.partitioning, runtime, self.config.hls
        )

    def resimulate_with_split(
        self, result: CompilationResult, sw_fraction: float
    ) -> CompilationResult:
        """Re-partition with a different targeted SW/HW split and re-simulate
        (used for the partition-split sweeps of Figures 6.3 and 6.4).

        Delegates to the pure :func:`repro.sim.system.resimulate_with_split`,
        the same function the task-graph sweep workers execute.
        """
        assert result.execution.trace is not None
        dswp, system = sim_resimulate_with_split(
            result.name,
            result.module,
            result.execution.trace,
            result.profile,
            result.legup,
            self.config,
            sw_fraction,
        )
        return CompilationResult(
            name=result.name,
            module=result.module,
            execution=result.execution,
            profile=result.profile,
            dswp=dswp,
            legup=result.legup,
            system=system,
        )
