"""Public API of the Twill reproduction: the compiler driver and its configuration."""

from repro.core.config import CompilerConfig, HLSConfig, PartitionConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.core.report import format_result_table

__all__ = [
    "CompilerConfig",
    "HLSConfig",
    "PartitionConfig",
    "RuntimeConfig",
    "CompilationResult",
    "TwillCompiler",
    "format_result_table",
]
