"""PDG construction: data, memory, control and PHI-constant ("fake") edges.

Follows the thesis description (§3.1.1, §5.2 pass 2, §5.2.1):

* **data** — SSA def-use edges;
* **memory** — ordering edges between may-aliasing memory operations where
  at least one writes; when the two operations share a loop the edge is
  added in both directions so they land in the same SCC (a loop-carried
  read/write conflict must not be pipelined apart);
* **control** — from each conditional branch to every instruction of the
  blocks control-dependent on it (computed from the post-dominator tree);
* **fake** — the pair of edges between a phi node and the branch terminator
  of any incoming block that supplies a *constant*, which forces both onto
  the same partition (the LLVM-PHI problem of §5.2.1, Figure 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.analysis.dominators import DominatorTree, PostDominatorTree
from repro.analysis.loops import LoopInfo
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    CondBranch,
    Consume,
    Instruction,
    Load,
    Phi,
    Produce,
    Store,
    Switch,
)
from repro.ir.values import Constant
from repro.pdg.graph import DependenceKind, ProgramDependenceGraph


def build_pdg(
    fn: Function,
    alias: Optional[AliasAnalysis] = None,
    loop_info: Optional[LoopInfo] = None,
    postdom: Optional[PostDominatorTree] = None,
) -> ProgramDependenceGraph:
    """Build the full PDG for one function."""
    pdg = ProgramDependenceGraph(fn)
    alias = alias or AliasAnalysis()
    loop_info = loop_info or LoopInfo(fn)
    postdom = postdom or PostDominatorTree(fn)

    _add_data_edges(pdg)
    _add_memory_edges(pdg, fn, alias, loop_info)
    _add_control_edges(pdg, fn, postdom, loop_info)
    _add_phi_constant_edges(pdg, fn, loop_info)
    return pdg


# ---------------------------------------------------------------------------
# data dependences
# ---------------------------------------------------------------------------


def _add_data_edges(pdg: ProgramDependenceGraph) -> None:
    for inst in pdg.nodes:
        for op in inst.operands:
            if isinstance(op, Instruction):
                pdg.add_edge(op, inst, DependenceKind.DATA)


# ---------------------------------------------------------------------------
# memory dependences
# ---------------------------------------------------------------------------


def _memory_instructions(fn: Function) -> List[Instruction]:
    out: List[Instruction] = []
    for inst in fn.instructions():
        if isinstance(inst, (Load, Store)):
            out.append(inst)
        elif isinstance(inst, Call):
            out.append(inst)
        elif isinstance(inst, (Produce, Consume)):
            out.append(inst)
    return out


def _writes_memory(inst: Instruction) -> bool:
    return isinstance(inst, (Store, Call, Produce))


def _reads_memory(inst: Instruction) -> bool:
    return isinstance(inst, (Load, Call, Consume))


def _pointer_of(inst: Instruction):
    if isinstance(inst, Load):
        return inst.pointer
    if isinstance(inst, Store):
        return inst.pointer
    return None


def _may_conflict(a: Instruction, b: Instruction, alias: AliasAnalysis) -> bool:
    """Do ``a`` and ``b`` touch potentially-overlapping state with a write involved?"""
    if not (_writes_memory(a) or _writes_memory(b)):
        return False
    ptr_a, ptr_b = _pointer_of(a), _pointer_of(b)
    if ptr_a is not None and ptr_b is not None:
        return alias.may_alias(ptr_a, ptr_b)
    # Calls and queue operations conservatively conflict with everything that
    # involves a write (they may reach the same globals / ordered side effects).
    return True


def _program_order(a: Instruction, b: Instruction, domtree: DominatorTree) -> Tuple[Instruction, Instruction]:
    """Order two instructions by dominance (falling back to block list order)."""
    block_a, block_b = a.parent, b.parent
    assert block_a is not None and block_b is not None
    if block_a is block_b:
        if block_a.index_of(a) <= block_a.index_of(b):
            return a, b
        return b, a
    if domtree.dominates(block_a, block_b):
        return a, b
    if domtree.dominates(block_b, block_a):
        return b, a
    fn = block_a.parent
    assert fn is not None
    if fn.blocks.index(block_a) <= fn.blocks.index(block_b):
        return a, b
    return b, a


def _add_memory_edges(
    pdg: ProgramDependenceGraph,
    fn: Function,
    alias: AliasAnalysis,
    loop_info: LoopInfo,
) -> None:
    mem_insts = _memory_instructions(fn)
    if len(mem_insts) < 2:
        return
    domtree = DominatorTree(fn)
    for i, a in enumerate(mem_insts):
        for b in mem_insts[i + 1 :]:
            if not _may_conflict(a, b, alias):
                continue
            assert a.parent is not None and b.parent is not None
            common = loop_info.common_loop(a.parent, b.parent)
            if common is not None:
                # Loop-carried conflict: keep both in one SCC.
                pdg.add_edge(a, b, DependenceKind.MEMORY)
                pdg.add_edge(b, a, DependenceKind.MEMORY)
            else:
                first, second = _program_order(a, b, domtree)
                pdg.add_edge(first, second, DependenceKind.MEMORY)


# ---------------------------------------------------------------------------
# control dependences
# ---------------------------------------------------------------------------


def _control_dependence_map(
    fn: Function, postdom: PostDominatorTree
) -> Dict[int, List[BasicBlock]]:
    """Map id(branch block) -> blocks control-dependent on it (Ferrante et al.)."""
    result: Dict[int, List[BasicBlock]] = {}
    for block in fn.blocks:
        successors = block.successors()
        if len(successors) < 2:
            continue
        for succ in successors:
            # Walk up the post-dominator tree from succ until reaching the
            # post-dominator of `block`; every block on the way is control
            # dependent on `block`.
            runner: Optional[BasicBlock] = succ
            limit = postdom.immediate_post_dominator(block)
            visited = 0
            while runner is not None and runner is not limit and visited < len(fn.blocks) + 2:
                result.setdefault(id(block), [])
                if runner not in result[id(block)]:
                    result[id(block)].append(runner)
                runner = postdom.immediate_post_dominator(runner)
                visited += 1
    return result


def _add_control_edges(
    pdg: ProgramDependenceGraph,
    fn: Function,
    postdom: PostDominatorTree,
    loop_info: LoopInfo,
) -> None:
    cdep = _control_dependence_map(fn, postdom)
    for block in fn.blocks:
        branch = block.terminator
        if branch is None or not isinstance(branch, (CondBranch, Switch)):
            continue
        dependent_blocks = cdep.get(id(block), [])
        for dep_block in dependent_blocks:
            for inst in dep_block.instructions:
                pdg.add_edge(branch, inst, DependenceKind.CONTROL)
        # A conditional branch that closes a loop (its block is in the loop
        # and the header depends on it) creates the loop-carried control
        # cycle: the branch also depends on the loop body computing its
        # condition, which the data edges already provide.  To keep the loop
        # control in one SCC we add the back edge from the header's
        # instructions to the branch when the branch is a loop latch/exit.
        loop = loop_info.innermost_loop_of(block)
        if loop is not None and (block in loop.latches or block in loop.exiting_blocks()):
            for inst in loop.header.instructions:
                if isinstance(inst, Phi):
                    pdg.add_edge(branch, inst, DependenceKind.CONTROL)


# ---------------------------------------------------------------------------
# PHI-constant fake dependences (thesis §5.2.1, Figure 5.2)
# ---------------------------------------------------------------------------


def _add_phi_constant_edges(
    pdg: ProgramDependenceGraph, fn: Function, loop_info: LoopInfo
) -> None:
    for block in fn.blocks:
        enclosing_loop = loop_info.innermost_loop_of(block)
        is_header = enclosing_loop is not None and enclosing_loop.header is block
        for phi in block.phis():
            for value, pred in phi.incoming():
                if not isinstance(value, Constant):
                    continue
                if is_header and enclosing_loop is not None and not enclosing_loop.contains(pred):
                    # Loop-entry initial value: every partition replicates the
                    # loop-entry control flow, so no fake pinning is needed
                    # (otherwise consecutive loops could never be pipelined
                    # apart — the Figure 5.2 problem only arises for
                    # conditional constant selection inside the region).
                    continue
                branch = pred.terminator
                if branch is None or not isinstance(branch, (CondBranch, Switch)):
                    continue
                # Pair of fake dependencies (both directions) pins the phi and
                # the controlling branch onto the same partition.
                pdg.add_edge(branch, phi, DependenceKind.FAKE)
                pdg.add_edge(phi, branch, DependenceKind.FAKE)
