"""Program Dependence Graph construction (thesis §3.1.1 and §5.2, pass 2)."""

from repro.pdg.graph import DependenceKind, PDGEdge, ProgramDependenceGraph
from repro.pdg.builder import build_pdg
from repro.pdg.scc import StronglyConnectedComponent, condense
from repro.pdg.weights import InstructionWeights, WeightModel

__all__ = [
    "DependenceKind",
    "PDGEdge",
    "ProgramDependenceGraph",
    "build_pdg",
    "StronglyConnectedComponent",
    "condense",
    "InstructionWeights",
    "WeightModel",
]
