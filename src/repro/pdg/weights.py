"""Per-instruction weight model for the DSWP partitioner (thesis §5.2, pass 2).

Every PDG node gets two weights:

* ``sw_weight`` — estimated cycles to execute the instruction on the
  MicroBlaze, scaled by its expected dynamic execution count;
* ``hw_weight`` — the cycle·area product of the hardware implementation,
  likewise scaled (this is exactly the metric the thesis describes: "The
  hardware weight consists of the sum of the estimated cycle·area products").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.costmodel.hardware import HardwareCostModel
from repro.costmodel.software import SoftwareCostModel
from repro.interp.profile import Profile
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.pdg.scc import StronglyConnectedComponent


@dataclass
class InstructionWeights:
    """Weights for a single instruction."""

    sw_cycles: float
    hw_cycles: float
    hw_luts: int
    hw_dsps: int
    dynamic_count: float

    @property
    def sw_weight(self) -> float:
        return self.sw_cycles * self.dynamic_count

    @property
    def hw_weight(self) -> float:
        # cycle * area product, scaled by execution count (thesis §5.2)
        return max(1.0, self.hw_cycles) * max(1.0, float(self.hw_luts)) * self.dynamic_count


class WeightModel:
    """Computes and caches instruction weights for one module."""

    def __init__(
        self,
        profile: Optional[Profile] = None,
        software: Optional[SoftwareCostModel] = None,
        hardware: Optional[HardwareCostModel] = None,
    ):
        self.profile = profile
        self.software = software or SoftwareCostModel()
        self.hardware = hardware or HardwareCostModel()
        self._cache: Dict[int, InstructionWeights] = {}

    def weights(self, inst: Instruction) -> InstructionWeights:
        cached = self._cache.get(id(inst))
        if cached is not None:
            return cached
        count = self.profile.count(inst) if self.profile is not None else 1.0
        w = InstructionWeights(
            sw_cycles=float(self.software.cost(inst)),
            hw_cycles=float(self.hardware.cost(inst)),
            hw_luts=self.hardware.luts(inst),
            hw_dsps=self.hardware.dsps(inst),
            dynamic_count=max(count, 1.0),
        )
        self._cache[id(inst)] = w
        return w

    # -- aggregate helpers --------------------------------------------------------------

    def annotate_sccs(self, components) -> None:
        """Fill ``sw_weight`` / ``hw_weight`` on each SCC in place."""
        for scc in components:
            scc.sw_weight = sum(self.weights(i).sw_weight for i in scc.instructions)
            scc.hw_weight = sum(self.weights(i).hw_weight for i in scc.instructions)

    def function_sw_cycles(self, fn: Function) -> float:
        return sum(self.weights(i).sw_weight for i in fn.instructions())

    def function_hw_cycles(self, fn: Function) -> float:
        return sum(self.weights(i).hw_cycles * self.weights(i).dynamic_count for i in fn.instructions())

    def function_luts(self, fn: Function) -> int:
        """Static LUT estimate of implementing the whole function in hardware."""
        return sum(self.weights(i).hw_luts for i in fn.instructions())
