"""SCC condensation of a PDG.

The DSWP partitioner never splits a strongly connected component (doing so
would create a cross-partition cycle and break the acyclic-pipeline
invariant, thesis §3.1.1), so partitioning operates on the condensation DAG
built here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.instructions import Instruction
from repro.pdg.graph import DependenceKind, ProgramDependenceGraph


@dataclass
class StronglyConnectedComponent:
    """One SCC of the PDG plus its weights and DAG adjacency."""

    index: int
    instructions: List[Instruction]
    sw_weight: float = 0.0
    hw_weight: float = 0.0
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)

    def size(self) -> int:
        return len(self.instructions)

    def contains(self, inst: Instruction) -> bool:
        return any(i is inst for i in self.instructions)

    def is_cyclic(self) -> bool:
        """True when this SCC has more than one instruction (a real cycle)."""
        return len(self.instructions) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SCC #{self.index} n={len(self.instructions)} "
            f"sw={self.sw_weight:.0f} hw={self.hw_weight:.0f}>"
        )


def condense(pdg: ProgramDependenceGraph) -> List[StronglyConnectedComponent]:
    """Collapse the PDG into its SCC DAG (in topological order)."""
    raw = pdg.strongly_connected_components()
    components: List[StronglyConnectedComponent] = []
    component_of: Dict[int, int] = {}
    for idx, instructions in enumerate(raw):
        components.append(StronglyConnectedComponent(index=idx, instructions=list(instructions)))
        for inst in instructions:
            component_of[id(inst)] = idx

    for edge in pdg.edges:
        tail_scc = component_of[id(edge.tail)]
        head_scc = component_of[id(edge.head)]
        if tail_scc == head_scc:
            continue
        components[tail_scc].successors.add(head_scc)
        components[head_scc].predecessors.add(tail_scc)
    return components


def component_of_map(components: List[StronglyConnectedComponent]) -> Dict[int, int]:
    """Map id(instruction) -> SCC index."""
    out: Dict[int, int] = {}
    for scc in components:
        for inst in scc.instructions:
            out[id(inst)] = scc.index
    return out


def topological_order(components: List[StronglyConnectedComponent]) -> List[int]:
    """Kahn topological order of the SCC DAG (indices into ``components``)."""
    indegree = {scc.index: len(scc.predecessors) for scc in components}
    ready = [i for i, d in indegree.items() if d == 0]
    order: List[int] = []
    by_index = {scc.index: scc for scc in components}
    while ready:
        ready.sort()
        current = ready.pop(0)
        order.append(current)
        for succ in by_index[current].successors:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    # Cycles cannot exist in a condensation; defensive fallback keeps everything.
    if len(order) != len(components):  # pragma: no cover
        missing = [scc.index for scc in components if scc.index not in order]
        order.extend(missing)
    return order
