"""Program Dependence Graph data structure.

Nodes are IR instructions; each directed edge (tail -> head) means "the tail
must execute before the head" (thesis §3.1.1).  Edges are labelled with the
dependence kind: data (SSA def-use), memory (may-alias load/store ordering),
control (branch decides execution), or fake (the PHI-constant pairing edges
of §5.2.1 that pin a phi to its controlling branches).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction


class DependenceKind(str, Enum):
    """Why one instruction must precede another."""

    DATA = "data"
    MEMORY = "memory"
    CONTROL = "control"
    FAKE = "fake"


@dataclass(frozen=True)
class PDGEdge:
    """One dependence edge: ``tail`` must execute before ``head``."""

    tail: Instruction
    head: Instruction
    kind: DependenceKind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PDGEdge {self.kind.value}: {self.tail.opcode.value} -> {self.head.opcode.value}>"


class ProgramDependenceGraph:
    """Per-function dependence graph with SCC support."""

    def __init__(self, function: Function):
        self.function = function
        self.nodes: List[Instruction] = list(function.instructions())
        self._node_ids: Set[int] = {id(n) for n in self.nodes}
        self._succ: Dict[int, List[PDGEdge]] = {id(n): [] for n in self.nodes}
        self._pred: Dict[int, List[PDGEdge]] = {id(n): [] for n in self.nodes}
        self.edges: List[PDGEdge] = []

    # -- construction ----------------------------------------------------------------

    def add_edge(self, tail: Instruction, head: Instruction, kind: DependenceKind) -> Optional[PDGEdge]:
        """Add a dependence edge (ignoring duplicates and foreign instructions)."""
        if id(tail) not in self._node_ids or id(head) not in self._node_ids:
            return None
        if tail is head:
            return None
        for existing in self._succ[id(tail)]:
            if existing.head is head and existing.kind is kind:
                return existing
        edge = PDGEdge(tail, head, kind)
        self.edges.append(edge)
        self._succ[id(tail)].append(edge)
        self._pred[id(head)].append(edge)
        return edge

    # -- queries ------------------------------------------------------------------------

    def successors(self, node: Instruction) -> List[PDGEdge]:
        return list(self._succ.get(id(node), []))

    def predecessors(self, node: Instruction) -> List[PDGEdge]:
        return list(self._pred.get(id(node), []))

    def edge_count(self, kind: Optional[DependenceKind] = None) -> int:
        if kind is None:
            return len(self.edges)
        return sum(1 for e in self.edges if e.kind is kind)

    def depends_on(self, head: Instruction, tail: Instruction) -> bool:
        """Direct dependence query: does ``head`` depend on ``tail``?"""
        return any(e.tail is tail for e in self._pred.get(id(head), []))

    # -- strongly connected components -----------------------------------------------------

    def strongly_connected_components(self) -> List[List[Instruction]]:
        """Tarjan's algorithm (iterative).  Components are returned in reverse
        topological order of the condensation (i.e. a component appears after
        the components it depends on have appeared... Tarjan naturally emits
        them in reverse topological order of the DAG, which we then reverse so
        producers come first)."""
        index_counter = 0
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[Instruction] = []
        components: List[List[Instruction]] = []

        for root in self.nodes:
            if id(root) in index:
                continue
            # Iterative Tarjan with an explicit work stack of (node, iterator state).
            work: List[Tuple[Instruction, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index[id(node)] = index_counter
                    lowlink[id(node)] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack.add(id(node))
                recurse = False
                succ_edges = self._succ[id(node)]
                while edge_index < len(succ_edges):
                    successor = succ_edges[edge_index].head
                    edge_index += 1
                    if id(successor) not in index:
                        work[-1] = (node, edge_index)
                        work.append((successor, 0))
                        recurse = True
                        break
                    if id(successor) in on_stack:
                        lowlink[id(node)] = min(lowlink[id(node)], index[id(successor)])
                if recurse:
                    continue
                work[-1] = (node, edge_index)
                if edge_index >= len(succ_edges):
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[id(parent)] = min(lowlink[id(parent)], lowlink[id(node)])
                    if lowlink[id(node)] == index[id(node)]:
                        component: List[Instruction] = []
                        while True:
                            w = stack.pop()
                            on_stack.discard(id(w))
                            component.append(w)
                            if w is node:
                                break
                        components.append(component)
        components.reverse()
        return components

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PDG {self.function.name}: {len(self.nodes)} nodes, "
            f"{len(self.edges)} edges>"
        )
