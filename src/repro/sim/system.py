"""System-level simulation: run the three standard configurations.

:class:`HybridSystem` bundles the pieces needed to evaluate one compiled
module the way the thesis does — the same dynamic trace replayed as
pure-software (MicroBlaze only), pure-hardware (LegUp baseline) and the
Twill hybrid — plus the area and power roll-ups for each configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import perf
from repro.config import CompilerConfig, HLSConfig, RuntimeConfig
from repro.dswp.pipeline import DSWPResult, run_dswp
from repro.hls.area import AreaEstimate, AreaModel
from repro.hls.legup import LegUpFlow, LegUpResult
from repro.hls.scheduling import HLSScheduler
from repro.interp.trace import Trace
from repro.ir.module import Module
from repro.sim.assignment import ThreadAssignment
from repro.sim.power import PowerEstimate, PowerModel
from repro.sim.timing import TimingResult, TimingSimulator


@dataclass
class ConfigurationResult:
    """Timing + area + power of one configuration (pure SW / pure HW / Twill)."""

    name: str
    timing: TimingResult
    area: AreaEstimate
    power: PowerEstimate

    @property
    def cycles(self) -> float:
        return self.timing.total_cycles


@dataclass
class SystemResult:
    """Results of all three configurations for one benchmark."""

    benchmark: str
    pure_software: ConfigurationResult
    pure_hardware: ConfigurationResult
    twill: ConfigurationResult
    hw_thread_area: AreaEstimate = field(default_factory=AreaEstimate)
    runtime_area: AreaEstimate = field(default_factory=AreaEstimate)

    # -- the headline metrics of Chapter 6 ------------------------------------------------

    @property
    def speedup_vs_software(self) -> float:
        return self.pure_software.cycles / max(self.twill.cycles, 1e-9)

    @property
    def speedup_vs_hardware(self) -> float:
        return self.pure_hardware.cycles / max(self.twill.cycles, 1e-9)

    @property
    def hw_speedup_vs_software(self) -> float:
        return self.pure_software.cycles / max(self.pure_hardware.cycles, 1e-9)

    @property
    def area_ratio_hw_threads(self) -> float:
        """LegUp pure-HW LUTs / Twill HW-thread LUTs (the 1.73x reduction metric)."""
        return self.pure_hardware.area.luts / max(self.hw_thread_area.luts, 1)

    @property
    def area_ratio_total(self) -> float:
        """Twill (incl. runtime) LUTs / LegUp pure-HW LUTs (the 1.35x increase metric)."""
        return self.twill.area.luts / max(self.pure_hardware.area.luts, 1)

    def power_normalised(self) -> Dict[str, float]:
        baseline = self.pure_software.power
        return {
            "pure_sw": 1.0,
            "pure_hw": self.pure_hardware.power.normalised_to(baseline),
            "twill": self.twill.power.normalised_to(baseline),
        }


def repartition(
    module: Module,
    profile,
    config: CompilerConfig,
    sw_fraction: float,
) -> DSWPResult:
    """Pure re-partition step: re-run DSWP for one (partition config, split).

    The result depends only on the module, the profile, ``config.partition``
    and ``sw_fraction`` — no timing or area state — so it is a cacheable
    *derived* artifact of a compile: the explore engine content-addresses it
    under the partition parameters and shares one :class:`DSWPResult` across
    every candidate that varies only runtime/queue/HLS dimensions.
    """
    with perf.stage("dswp"):
        return run_dswp(
            module,
            profile=profile,
            config=config.partition,
            extract_threads=False,
            sw_fraction=sw_fraction,
        )


def evaluate_with_partition(
    benchmark: str,
    module: Module,
    trace: Trace,
    dswp: DSWPResult,
    legup: LegUpResult,
    config: CompilerConfig,
) -> SystemResult:
    """Evaluate the three standard configurations under an existing partition.

    Read-only with respect to *dswp*: the thread assignment is rebuilt
    fresh from ``dswp.partitioning`` on every call, which is what lets the
    explore engine hand one memoized partition to many candidates.
    """
    with perf.stage("replay"):
        return HybridSystem(config).evaluate(benchmark, module, trace, dswp, legup)


def resimulate_with_split(
    benchmark: str,
    module: Module,
    trace: Trace,
    profile,
    legup: LegUpResult,
    config: CompilerConfig,
    sw_fraction: float,
) -> "tuple[DSWPResult, SystemResult]":
    """Pure split-point re-simulation: re-partition and re-evaluate one module.

    Module-level and picklable so taskgraph workers can run one Figure
    6.3/6.4 sweep point per process-pool task from the pieces of a compile
    artifact; :meth:`repro.core.compiler.TwillCompiler.resimulate_with_split`
    delegates here so the two entry points can never diverge.  Composes the
    :func:`repartition` and :func:`evaluate_with_partition` stages that the
    explore engine caches independently.
    """
    dswp = repartition(module, profile, config, sw_fraction)
    system = evaluate_with_partition(benchmark, module, trace, dswp, legup, config)
    return dswp, system


class HybridSystem:
    """Evaluates one compiled module under the three standard configurations."""

    def __init__(self, config: Optional[CompilerConfig] = None):
        self.config = config or CompilerConfig()
        self.config.validate()
        self.area_model = AreaModel()
        self.power_model = PowerModel()

    # -- individual configurations --------------------------------------------------------

    def simulate_pure_software(self, module: Module, trace: Trace) -> TimingResult:
        simulator = TimingSimulator(self.config.runtime, self.config.hls)
        return simulator.simulate(trace, ThreadAssignment.pure_software(module))

    def simulate_pure_hardware(self, module: Module, trace: Trace) -> TimingResult:
        simulator = TimingSimulator(self.config.runtime, self.config.hls)
        return simulator.simulate(trace, ThreadAssignment.pure_hardware(module))

    def simulate_twill(
        self,
        module: Module,
        trace: Trace,
        dswp: DSWPResult,
        runtime: Optional[RuntimeConfig] = None,
    ) -> TimingResult:
        simulator = TimingSimulator(runtime or self.config.runtime, self.config.hls)
        assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
        return simulator.simulate(trace, assignment)

    # -- full evaluation ---------------------------------------------------------------------

    def evaluate(
        self,
        benchmark: str,
        module: Module,
        trace: Trace,
        dswp: DSWPResult,
        legup: Optional[LegUpResult] = None,
    ) -> SystemResult:
        """Run all three configurations and collect area/power for each."""
        legup = legup or LegUpFlow(self.config.hls).run(module)

        sw_timing = self.simulate_pure_software(module, trace)
        hw_timing = self.simulate_pure_hardware(module, trace)
        twill_timing = self.simulate_twill(module, trace, dswp)

        # -- area -------------------------------------------------------------------------
        legup_area = legup.total_area
        hw_thread_area = self._twill_hw_thread_area(module, dswp)
        runtime_area = self.area_model.runtime_area(
            num_queues=dswp.partitioning.total_queues,
            num_semaphores=dswp.partitioning.total_semaphores,
            num_hw_threads=dswp.partitioning.hardware_thread_count,
            queue_depth=self.config.runtime.queue_depth,
            queue_width=self.config.runtime.queue_width_bits,
            num_processors=self.config.runtime.num_processors,
        )
        twill_area = hw_thread_area.merged_with(runtime_area)
        twill_with_mb = twill_area.merged_with(self.area_model.microblaze_area())

        # -- power ------------------------------------------------------------------------
        sw_power = self.power_model.pure_software(utilisation=1.0)
        hw_activity = min(1.0, hw_timing.hardware_busy_cycles / max(hw_timing.total_cycles, 1.0) + 0.5)
        hw_power = self.power_model.pure_hardware(
            legup_area.luts, legup_area.dsps, legup_area.brams, activity=hw_activity
        )
        cpu_util = min(1.0, twill_timing.software_busy_cycles / max(twill_timing.total_cycles, 1.0))
        fabric_util = min(
            1.0,
            twill_timing.hardware_busy_cycles
            / max(twill_timing.total_cycles * max(dswp.partitioning.hardware_thread_count, 1), 1.0)
            + 0.4,
        )
        twill_power = self.power_model.twill(
            hw_luts=hw_thread_area.luts,
            runtime_luts=runtime_area.luts,
            dsps=twill_area.dsps,
            brams=twill_area.brams,
            fabric_activity=fabric_util,
            processor_utilisation=cpu_util,
        )

        return SystemResult(
            benchmark=benchmark,
            pure_software=ConfigurationResult("pure_sw", sw_timing, self.area_model.microblaze_area(), sw_power),
            pure_hardware=ConfigurationResult("pure_hw", hw_timing, legup_area, hw_power),
            twill=ConfigurationResult("twill", twill_timing, twill_with_mb, twill_power),
            hw_thread_area=hw_thread_area,
            runtime_area=runtime_area,
        )

    # -- helpers ---------------------------------------------------------------------------------

    def _twill_hw_thread_area(self, module: Module, dswp: DSWPResult) -> AreaEstimate:
        """LUTs of only the hardware partitions (the "Twill HWThreads" column)."""
        scheduler = HLSScheduler(self.config.hls)
        total = AreaEstimate()
        for fn_name, fp in dswp.partitioning.functions.items():
            fn = fp.function
            for partition in fp.partitions:
                if not partition.is_hardware() or not partition.instructions:
                    continue
                schedule = scheduler.schedule_function(fn, only=partition.instructions)
                area = self.area_model.datapath_area(schedule)
                total = total.merged_with(area)
        return total
