"""Trace-replay timing simulator.

The simulator replays the dynamic instruction trace under a thread
assignment.  Each thread consumes its own slice of the trace in order;
cross-thread value flow goes through :class:`~repro.runtime.queue.TimedQueue`
instances (one per produced static value and consuming thread — exactly the
DSWP queue granularity), which is where queue latency, queue-depth
back-pressure and the processor stream-interface overhead enter the model.

Per-domain execution:

* **software threads** issue strictly in order; every instruction occupies
  the MicroBlaze for its full cycle cost, and every queue transfer costs the
  five-cycle stream-interface overhead (§4.5);
* **hardware threads** issue in order but at up to ``issue_width``
  operations per cycle (the ILP LegUp exploits); multi-cycle operations are
  pipelined, so they occupy an issue slot but deliver their result after the
  full latency; loads/stores pay the memory-bus cost plus a coherency delay
  when the producing store happened in the other domain (§4.1/§4.5).

Engine: a cooperative round-robin over threads.  A thread blocks when an
operand's producing event has not been timed yet, or when a queue it must
enqueue into is full (back-pressure).  Cross-partition dependences form a
DAG (guaranteed by the partitioner), so the replay makes progress; a
defensive fallback force-processes the oldest blocked event should a cyclic
wait appear, and counts how often it fired so tests can assert it did not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import HLSConfig, RuntimeConfig
from repro.costmodel.hardware import HardwareCostModel
from repro.costmodel.software import SoftwareCostModel
from repro.interp.trace import Trace, TraceEvent
from repro.ir.instructions import Opcode
from repro.runtime.bus import MessageBus
from repro.runtime.queue import TimedQueue
from repro.sim.assignment import ExecutionDomain, ThreadAssignment, ThreadSpec


@dataclass
class ThreadTimeline:
    """Accounting for one simulated thread."""

    spec: ThreadSpec
    next_free: float = 0.0
    busy_cycles: float = 0.0
    events_executed: int = 0
    finish_time: float = 0.0
    # FSM modelling for hardware threads: the basic block currently being
    # executed and the latest completion time inside it.  A hardware thread
    # does not start the next basic block's states until the current block
    # has drained (unless loop pipelining is enabled in HLSConfig).
    current_block: int = -1
    block_max_done: float = 0.0


@dataclass
class TimingResult:
    """Outcome of one timing replay."""

    total_cycles: float
    threads: Dict[int, ThreadTimeline]
    queue_count: int
    queue_transfers: int
    producer_stall_cycles: float
    consumer_stall_cycles: float
    bus_transfers: int
    forced_events: int
    events: int
    # Values the replayed program printed, ordered by the cycle the print
    # event completed — the observable output stream the differential tests
    # compare against the interpreter's.
    replay_outputs: Tuple[int, ...] = ()

    @property
    def hardware_busy_cycles(self) -> float:
        return sum(t.busy_cycles for t in self.threads.values() if t.spec.is_hardware())

    @property
    def software_busy_cycles(self) -> float:
        return sum(t.busy_cycles for t in self.threads.values() if t.spec.is_software())

    def speedup_over(self, baseline: "TimingResult") -> float:
        if self.total_cycles <= 0:
            return float("inf")
        return baseline.total_cycles / self.total_cycles


class TimingSimulator:
    """Replays a trace under a thread assignment and runtime configuration."""

    def __init__(
        self,
        runtime: Optional[RuntimeConfig] = None,
        hls: Optional[HLSConfig] = None,
        software: Optional[SoftwareCostModel] = None,
        hardware: Optional[HardwareCostModel] = None,
    ):
        self.runtime = runtime or RuntimeConfig()
        self.hls = hls or HLSConfig()
        self.runtime.validate()
        self.hls.validate()
        self.software = software or SoftwareCostModel()
        self.hardware = hardware or HardwareCostModel()

    # -- public API ------------------------------------------------------------------

    def simulate(self, trace: Trace, assignment: ThreadAssignment) -> TimingResult:
        events = trace.events
        if not events:
            return TimingResult(0.0, {}, 0, 0, 0.0, 0.0, 0, 0, 0)

        timelines: Dict[int, ThreadTimeline] = {
            t.thread_id: ThreadTimeline(spec=t) for t in assignment.threads
        }
        n = len(events)
        thread_of: List[int] = [0] * n
        per_thread: Dict[int, List[int]] = {t.thread_id: [] for t in assignment.threads}
        for i, event in enumerate(events):
            spec = assignment.thread_of_event(event)
            thread_of[i] = spec.thread_id
            per_thread[spec.thread_id].append(i)

        # Which threads consume each dynamic event's value across threads?
        dyn_consumers: List[Tuple[int, ...]] = [()] * n
        consumer_sets: List[Optional[Set[int]]] = [None] * n
        for i, event in enumerate(events):
            my_thread = thread_of[i]
            for dep in event.deps:
                if thread_of[dep] != my_thread:
                    s = consumer_sets[dep]
                    if s is None:
                        s = set()
                        consumer_sets[dep] = s
                    s.add(my_thread)
        for i, s in enumerate(consumer_sets):
            if s:
                dyn_consumers[i] = tuple(sorted(s))

        # Dynamic basic-block occurrence ids: a hardware FSM finishes all the
        # states of the current block (iteration) before starting the next
        # one, so every block *occurrence* — including re-entry of the same
        # block on the next loop iteration — is a serialisation point.
        block_occurrence: List[int] = [0] * n
        occurrence = 0
        prev_block_key: Optional[Tuple[str, int]] = None
        prev_was_terminator = False
        for i, event in enumerate(events):
            block_key = (event.function, id(event.inst.parent))
            if prev_block_key is None or block_key != prev_block_key or prev_was_terminator:
                occurrence += 1
            block_occurrence[i] = occurrence
            prev_block_key = block_key
            prev_was_terminator = event.inst.is_terminator()

        finish: List[Optional[float]] = [None] * n
        store_domain: Dict[int, ExecutionDomain] = {}
        # (dep event index, consumer thread) -> time the dequeued value is in hand
        received: Dict[Tuple[int, int], float] = {}

        queues: Dict[Tuple[int, int], TimedQueue] = {}
        module_bus = MessageBus("module-bus", latency=self.runtime.bus_latency)
        forced_events = 0

        def queue_for(producer_event: TraceEvent, consumer_thread: int) -> TimedQueue:
            key = (id(producer_event.inst), consumer_thread)
            q = queues.get(key)
            if q is None:
                q = TimedQueue(
                    queue_id=len(queues),
                    depth=self.runtime.queue_depth,
                    latency=self.runtime.queue_latency,
                )
                queues[key] = q
            return q

        pointer: Dict[int, int] = {t: 0 for t in per_thread}
        remaining = n
        context = _ReplayContext(
            events=events,
            thread_of=thread_of,
            finish=finish,
            timelines=timelines,
            queue_for=queue_for,
            module_bus=module_bus,
            store_domain=store_domain,
            received=received,
            dyn_consumers=dyn_consumers,
            block_occurrence=block_occurrence,
        )

        while remaining > 0:
            progress = False
            for thread_id, indices in per_thread.items():
                while pointer[thread_id] < len(indices):
                    if not self._try_execute(context, indices[pointer[thread_id]], force=False):
                        break
                    pointer[thread_id] += 1
                    remaining -= 1
                    progress = True
            if not progress and remaining > 0:
                candidates = [
                    indices[pointer[t]]
                    for t, indices in per_thread.items()
                    if pointer[t] < len(indices)
                ]
                event_index = min(candidates)
                self._try_execute(context, event_index, force=True)
                pointer[thread_of[event_index]] += 1
                remaining -= 1
                forced_events += 1

        total = max((t.finish_time for t in timelines.values()), default=0.0)
        # The observable output stream commits in program (trace) order: the
        # runtime serialises side effects, so a hybrid partition whose stages
        # *finish* print calls out of order must not reorder what the program
        # prints.  Finish times stay timing metadata only.
        prints = [
            (events[i].seq, events[i].value)
            for i in range(n)
            if events[i].opcode is Opcode.CALL
            and events[i].value is not None
            and getattr(events[i].inst, "callee", None) is not None
            and events[i].inst.callee.name == "print_int"
        ]
        prints.sort(key=lambda p: p[0])
        return TimingResult(
            total_cycles=total,
            threads=timelines,
            queue_count=len(queues),
            queue_transfers=sum(q.total_transfers() for q in queues.values()),
            producer_stall_cycles=sum(q.stats.producer_stall_cycles for q in queues.values()),
            consumer_stall_cycles=sum(q.stats.consumer_stall_cycles for q in queues.values()),
            bus_transfers=module_bus.stats.transfers,
            forced_events=forced_events,
            events=n,
            replay_outputs=tuple(p[1] for p in prints),
        )

    # -- one event --------------------------------------------------------------------------

    def _try_execute(self, ctx: "_ReplayContext", index: int, force: bool) -> bool:
        events = ctx.events
        event = events[index]
        thread_id = ctx.thread_of[index]
        timeline = ctx.timelines[thread_id]
        domain = timeline.spec.domain

        # 1. Operand readiness (register dataflow + memory dataflow).
        deps = list(event.deps)
        if event.mem_dep is not None:
            deps.append(event.mem_dep)
        for dep in deps:
            if ctx.finish[dep] is None and not force:
                return False

        # 2. Back-pressure: every queue this event must feed needs a free slot.
        consumer_threads = ctx.dyn_consumers[index]
        if consumer_threads and not force:
            for consumer_thread in consumer_threads:
                if not ctx.queue_for(event, consumer_thread).can_enqueue():
                    return False

        ready = 0.0
        for dep in deps:
            dep_finish = ctx.finish[dep]
            if dep_finish is None:
                dep_finish = ctx.timelines[ctx.thread_of[dep]].next_free
            dep_thread = ctx.thread_of[dep]
            if dep_thread == thread_id:
                ready = max(ready, dep_finish)
                continue
            if dep == event.mem_dep and dep not in event.deps:
                # Cross-thread memory flow: shared memory + coherency delay.
                delay = self.runtime.coherency_delay
                if ctx.timelines[dep_thread].spec.domain != domain:
                    delay += self.runtime.memory_read_cycles
                ready = max(ready, dep_finish + delay)
                continue
            # Cross-thread register flow through a DSWP queue: dequeue once.
            key = (dep, thread_id)
            got = ctx.received.get(key)
            if got is None:
                q = ctx.queue_for(events[dep], thread_id)
                q.dequeue_cost = (
                    self.runtime.processor_op_cycles
                    if domain is ExecutionDomain.SOFTWARE
                    else 2
                )
                got = q.dequeue(max(timeline.next_free, 0.0))
                ctx.received[key] = got
                timeline.busy_cycles += q.dequeue_cost
                timeline.next_free = max(timeline.next_free, got)
            ready = max(ready, got)

        # 3. Issue and execute.
        if domain is ExecutionDomain.HARDWARE and not self.hls.loop_pipelining:
            # FSM semantics: a new basic-block occurrence (including the next
            # iteration of a loop) cannot start before every state of the
            # previous occurrence has finished.
            occurrence = ctx.block_occurrence[index]
            if occurrence != timeline.current_block:
                timeline.next_free = max(timeline.next_free, timeline.block_max_done)
                timeline.current_block = occurrence
                timeline.block_max_done = 0.0
        issue = max(ready, timeline.next_free)
        cost = self._execution_cost(event, domain)
        done = issue + cost
        if domain is ExecutionDomain.SOFTWARE:
            timeline.next_free = done
            timeline.busy_cycles += cost
        else:
            # FSM-style execution: single-cycle operations fill a state up to
            # the issue width (the ILP LegUp exploits); multi-cycle operations
            # (memory over the bus, dividers) hold the state machine for their
            # full latency — LegUp's serial divider and blocking memory
            # accesses behave exactly like this (§5.2, §6.4).
            if cost > 1.0:
                timeline.next_free = done
                timeline.busy_cycles += cost
            else:
                timeline.next_free = issue + 1.0 / max(1, self.hls.issue_width)
                timeline.busy_cycles += 1.0 / max(1, self.hls.issue_width)

        # 4. Produce: enqueue the value for every consuming thread.
        for consumer_thread in consumer_threads:
            q = ctx.queue_for(event, consumer_thread)
            q.enqueue_cost = (
                self.runtime.processor_op_cycles
                if domain is ExecutionDomain.SOFTWARE
                else 2
            )
            bus_ready = ctx.module_bus.request(done, processor=domain is ExecutionDomain.SOFTWARE)
            enqueue_done = q.enqueue(max(done, bus_ready - self.runtime.bus_latency))
            timeline.busy_cycles += q.enqueue_cost
            timeline.next_free = max(timeline.next_free, enqueue_done)

        if domain is ExecutionDomain.HARDWARE and not self.hls.loop_pipelining:
            timeline.block_max_done = max(timeline.block_max_done, done)

        if event.opcode is Opcode.STORE:
            ctx.store_domain[index] = domain

        ctx.finish[index] = done
        timeline.events_executed += 1
        timeline.finish_time = max(timeline.finish_time, timeline.next_free, done)
        return True

    def _execution_cost(self, event: TraceEvent, domain: ExecutionDomain) -> float:
        opcode = event.opcode
        if domain is ExecutionDomain.SOFTWARE:
            return float(self.software.opcode_cost(opcode))
        cost = float(self.hardware.opcode_cost(opcode))
        if opcode is Opcode.LOAD:
            cost = float(self.runtime.memory_read_cycles)
        elif opcode is Opcode.STORE:
            cost = float(self.runtime.memory_write_cycles)
        return max(cost, 0.0)


@dataclass
class _ReplayContext:
    """Mutable state shared by the per-event executor."""

    events: List[TraceEvent]
    thread_of: List[int]
    finish: List[Optional[float]]
    timelines: Dict[int, ThreadTimeline]
    queue_for: object
    module_bus: MessageBus
    store_domain: Dict[int, ExecutionDomain]
    received: Dict[Tuple[int, int], float]
    dyn_consumers: List[Tuple[int, ...]]
    block_occurrence: List[int] = field(default_factory=list)


def simulate_partitioned(
    module,
    trace: Trace,
    partitioning,
    runtime: RuntimeConfig,
    hls: HLSConfig,
) -> TimingResult:
    """Pure sweep-point re-simulation: replay *trace* under *partitioning*.

    A module-level function of (compile artifact pieces, config) with no
    other state, so a :class:`~concurrent.futures.ProcessPoolExecutor` worker
    can pickle it and re-run just the timing tail of the pipeline for one
    (workload, sweep-point) task — the Figure 6.5/6.6 queue sweeps.
    """
    assignment = ThreadAssignment.from_partitioning(module, partitioning)
    return TimingSimulator(runtime, hls).simulate(trace, assignment)
