"""Trace-replay timing simulator.

The simulator replays the dynamic instruction trace under a thread
assignment.  Each thread consumes its own slice of the trace in order;
cross-thread value flow goes through :class:`~repro.runtime.queue.TimedQueue`
instances (one per produced static value and consuming thread — exactly the
DSWP queue granularity), which is where queue latency, queue-depth
back-pressure and the processor stream-interface overhead enter the model.

Per-domain execution:

* **software threads** issue strictly in order; every instruction occupies
  the MicroBlaze for its full cycle cost, and every queue transfer costs the
  five-cycle stream-interface overhead (§4.5);
* **hardware threads** issue in order but at up to ``issue_width``
  operations per cycle (the ILP LegUp exploits); multi-cycle operations are
  pipelined, so they occupy an issue slot but deliver their result after the
  full latency; loads/stores pay the memory-bus cost plus a coherency delay
  when the producing store happened in the other domain (§4.1/§4.5).

Engines
-------

``ready`` (default) — a readiness-driven scheduler.  Threads are visited
through a time-ordered heap keyed by (pass, thread position): a thread that
blocks (an operand's producing event not yet timed, or a full queue it must
enqueue into) parks itself on a wake list for exactly that event or queue,
and re-enters the heap the moment the dependency resolves.  Idle threads are
never re-polled.  Replays whose events all land on a single thread (the
pure-software and pure-hardware baselines — two of the three replays every
evaluation runs) take straight-line fast paths with no queue/bus machinery
at all.  The visit order is provably identical to the legacy poll loop's
(failed executability probes are side-effect-free), so the resulting
:class:`TimingResult` is byte-identical.

``poll`` (``REPRO_REPLAY=poll``) — the original cooperative round-robin
that rescans every thread each pass.  Kept as the differential-testing
reference; a defensive fallback force-processes the oldest blocked event
should a cyclic wait appear, and counts how often it fired so tests can
assert it did not (both engines share that fallback).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro import perf
from repro.config import HLSConfig, RuntimeConfig
from repro.costmodel.hardware import HardwareCostModel
from repro.costmodel.software import SoftwareCostModel
from repro.interp.trace import Trace, TraceEvent
from repro.ir.instructions import Opcode
from repro.runtime.bus import MessageBus
from repro.runtime.queue import TimedQueue
from repro.sim.assignment import ExecutionDomain, ThreadAssignment, ThreadSpec

# Environment switch for the replay engine: "ready" (default) or "poll"
# (the legacy reference implementation, kept for differential testing).
REPLAY_ENGINE_ENV = "REPRO_REPLAY"

# Thread visit states for the readiness scheduler.
_QUEUED = 0      # in the heap, will be visited
_BLOCKED = 1     # parked on a wake list (dep finish or queue dequeue)
_DONE = 2        # all events executed


class _TraceIndex:
    """Replay precomputation that depends on the *trace* alone.

    A report replays the same trace many times — three baseline assignments,
    every split-sweep fraction, every explore candidate — and each replay
    used to re-derive the same per-event tables with multiple O(events)
    passes.  Everything here is a pure function of the event list (never of
    the assignment or the runtime/HLS configuration), so it is computed once
    and cached on the :class:`~repro.interp.trace.Trace` object itself
    (``Trace.__getstate__`` drops the cache, keeping pickles clean).

    ``cost_arrays`` memoises per-event cost vectors keyed by the *content*
    of the opcode-cost table (domain + each opcode's resolved cost), so
    sweeps that vary queue geometry — which never changes execution costs —
    reuse one vector, while a sweep that does change a cost (say memory
    read cycles) gets its own.
    """

    __slots__ = (
        "inst_ids",
        "opcodes",
        "reg_deps",
        "deps_seq",
        "mem_tail",
        "block_occurrence",
        "rep_events",
        "opcode_counts",
        "prints",
        "cost_arrays",
    )

    def __init__(self, events: List[TraceEvent]):
        n = len(events)
        self.inst_ids: List[int] = [0] * n
        self.opcodes: List[Opcode] = [Opcode.ADD] * n
        self.reg_deps: List[Tuple[int, ...]] = [()] * n
        self.deps_seq: List[Tuple[int, ...]] = [()] * n
        self.mem_tail: List[bool] = [False] * n
        self.block_occurrence: List[int] = [0] * n
        self.rep_events: Dict[Opcode, TraceEvent] = {}
        self.opcode_counts: Dict[Opcode, int] = {}
        self.cost_arrays: Dict[Tuple, List[float]] = {}

        counts = self.opcode_counts
        rep = self.rep_events
        occurrence = 0
        prev_block_key: Optional[Tuple[str, int]] = None
        prev_was_terminator = False
        prints: List[Tuple[int, int]] = []
        for i, event in enumerate(events):
            inst = event.inst
            opcode = inst.opcode
            self.inst_ids[i] = id(inst)
            self.opcodes[i] = opcode
            counts[opcode] = counts.get(opcode, 0) + 1
            if opcode not in rep:
                rep[opcode] = event
            deps = event.deps
            self.reg_deps[i] = deps
            mem_dep = event.mem_dep
            if mem_dep is None:
                self.deps_seq[i] = deps
            else:
                # Legacy order exactly: register deps first, mem_dep last; the
                # tail flag marks a memory dep taking the coherency path (one
                # that is not also a register dep).
                self.deps_seq[i] = deps + (mem_dep,)
                self.mem_tail[i] = mem_dep not in deps
            # Dynamic basic-block occurrence ids: every block occurrence —
            # including re-entry of the same block on the next loop iteration —
            # is a serialisation point for a hardware FSM.
            block_key = (event.function, id(inst.parent))
            if prev_block_key is None or block_key != prev_block_key or prev_was_terminator:
                occurrence += 1
            self.block_occurrence[i] = occurrence
            prev_block_key = block_key
            prev_was_terminator = inst.is_terminator()
            if (
                opcode is Opcode.CALL
                and event.value is not None
                and getattr(inst, "callee", None) is not None
                and inst.callee.name == "print_int"
            ):
                prints.append((event.seq, event.value))
        # The observable output stream commits in program (trace) order: the
        # runtime serialises side effects, so finish times stay timing
        # metadata only and never reorder what the program prints.
        prints.sort(key=lambda p: p[0])
        self.prints: Tuple[int, ...] = tuple(p[1] for p in prints)


def _trace_index(trace: Trace) -> _TraceIndex:
    """The trace's cached :class:`_TraceIndex`, built on first replay."""
    index = getattr(trace, "_replay_index", None)
    if index is None:
        index = _TraceIndex(trace.events)
        trace._replay_index = index
    return index


@dataclass
class ThreadTimeline:
    """Accounting for one simulated thread."""

    spec: ThreadSpec
    next_free: float = 0.0
    busy_cycles: float = 0.0
    events_executed: int = 0
    finish_time: float = 0.0
    # FSM modelling for hardware threads: the basic block currently being
    # executed and the latest completion time inside it.  A hardware thread
    # does not start the next basic block's states until the current block
    # has drained (unless loop pipelining is enabled in HLSConfig).
    current_block: int = -1
    block_max_done: float = 0.0


@dataclass
class TimingResult:
    """Outcome of one timing replay."""

    total_cycles: float
    threads: Dict[int, ThreadTimeline]
    queue_count: int
    queue_transfers: int
    producer_stall_cycles: float
    consumer_stall_cycles: float
    bus_transfers: int
    forced_events: int
    events: int
    # Values the replayed program printed, ordered by the cycle the print
    # event completed — the observable output stream the differential tests
    # compare against the interpreter's.
    replay_outputs: Tuple[int, ...] = ()

    @property
    def hardware_busy_cycles(self) -> float:
        return sum(t.busy_cycles for t in self.threads.values() if t.spec.is_hardware())

    @property
    def software_busy_cycles(self) -> float:
        return sum(t.busy_cycles for t in self.threads.values() if t.spec.is_software())

    def speedup_over(self, baseline: "TimingResult") -> float:
        if self.total_cycles <= 0:
            return float("inf")
        return baseline.total_cycles / self.total_cycles


class TimingSimulator:
    """Replays a trace under a thread assignment and runtime configuration."""

    def __init__(
        self,
        runtime: Optional[RuntimeConfig] = None,
        hls: Optional[HLSConfig] = None,
        software: Optional[SoftwareCostModel] = None,
        hardware: Optional[HardwareCostModel] = None,
    ):
        self.runtime = runtime or RuntimeConfig()
        self.hls = hls or HLSConfig()
        self.runtime.validate()
        self.hls.validate()
        self.software = software or SoftwareCostModel()
        self.hardware = hardware or HardwareCostModel()

    # -- public API ------------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        assignment: ThreadAssignment,
        engine: Optional[str] = None,
    ) -> TimingResult:
        events = trace.events
        if not events:
            return TimingResult(0.0, {}, 0, 0, 0.0, 0.0, 0, 0, 0)
        if engine is None:
            engine = os.environ.get(REPLAY_ENGINE_ENV, "ready")
        if engine not in ("ready", "poll"):
            raise ValueError(f"unknown replay engine {engine!r} (expected 'ready' or 'poll')")

        index = _trace_index(trace)
        timelines: Dict[int, ThreadTimeline] = {
            t.thread_id: ThreadTimeline(spec=t) for t in assignment.threads
        }
        n = len(events)

        if engine != "poll" and len(timelines) == 1:
            # Single-thread assignment (the pure-SW / pure-HW baselines):
            # every event lands on the one thread, so skip the per-event
            # assignment/consumer setup entirely — no queues, no bus.
            timeline = next(iter(timelines.values()))
            if timeline.spec.domain is ExecutionDomain.SOFTWARE:
                self._replay_single_software(index, timeline)
            else:
                self._replay_single_hardware(index, timeline)
            return TimingResult(
                total_cycles=timeline.finish_time,
                threads=timelines,
                queue_count=0,
                queue_transfers=0,
                producer_stall_cycles=0.0,
                consumer_stall_cycles=0.0,
                bus_transfers=0,
                forced_events=0,
                events=n,
                replay_outputs=index.prints,
            )
        thread_of: List[int] = [0] * n
        per_thread: Dict[int, List[int]] = {t.thread_id: [] for t in assignment.threads}
        amap_get = assignment._map.get
        default_thread = assignment.default_thread
        for i, iid in enumerate(index.inst_ids):
            tid = amap_get(iid, default_thread)
            thread_of[i] = tid
            per_thread[tid].append(i)

        # Which threads consume each dynamic event's value across threads?
        dyn_consumers: List[Tuple[int, ...]] = [()] * n
        consumer_sets: List[Optional[Set[int]]] = [None] * n
        for i, deps in enumerate(index.reg_deps):
            my_thread = thread_of[i]
            for dep in deps:
                if thread_of[dep] != my_thread:
                    s = consumer_sets[dep]
                    if s is None:
                        s = set()
                        consumer_sets[dep] = s
                    s.add(my_thread)
        for i, s in enumerate(consumer_sets):
            if s:
                dyn_consumers[i] = tuple(sorted(s))

        block_occurrence = index.block_occurrence

        finish: List[Optional[float]] = [None] * n
        store_domain: Dict[int, ExecutionDomain] = {}
        # (dep event index, consumer thread) -> time the dequeued value is in hand
        received: Dict[Tuple[int, int], float] = {}

        queues: Dict[Tuple[int, int], TimedQueue] = {}
        module_bus = MessageBus("module-bus", latency=self.runtime.bus_latency)

        queue_depth = self.runtime.queue_depth
        queue_latency = self.runtime.queue_latency

        def queue_for(producer_event: TraceEvent, consumer_thread: int) -> TimedQueue:
            key = (id(producer_event.inst), consumer_thread)
            q = queues.get(key)
            if q is None:
                q = TimedQueue(
                    queue_id=len(queues),
                    depth=queue_depth,
                    latency=queue_latency,
                )
                queues[key] = q
            return q

        context = _ReplayContext(
            events=events,
            thread_of=thread_of,
            finish=finish,
            timelines=timelines,
            queue_for=queue_for,
            module_bus=module_bus,
            store_domain=store_domain,
            received=received,
            dyn_consumers=dyn_consumers,
            block_occurrence=block_occurrence,
            queues=queues,
        )

        populated = [tid for tid, indices in per_thread.items() if indices]
        if engine == "poll":
            forced_events = self._replay_poll(context, per_thread)
        elif len(populated) == 1:
            forced_events = 0
            tid = populated[0]
            timeline = timelines[tid]
            if timeline.spec.domain is ExecutionDomain.SOFTWARE:
                self._replay_single_software(index, timeline)
            else:
                self._replay_single_hardware(index, timeline)
        else:
            forced_events = self._replay_ready(context, per_thread, index)

        total = max((t.finish_time for t in timelines.values()), default=0.0)
        return TimingResult(
            total_cycles=total,
            threads=timelines,
            queue_count=len(queues),
            queue_transfers=sum(q.total_transfers() for q in queues.values()),
            producer_stall_cycles=sum(q.stats.producer_stall_cycles for q in queues.values()),
            consumer_stall_cycles=sum(q.stats.consumer_stall_cycles for q in queues.values()),
            bus_transfers=module_bus.stats.transfers,
            forced_events=forced_events,
            events=n,
            replay_outputs=index.prints,
        )

    # -- shared per-event precomputation ----------------------------------------------

    def _cost_table(self, index: _TraceIndex, domain: ExecutionDomain) -> Dict[Opcode, float]:
        """Opcode → cost for the trace's opcodes (one representative each)."""
        return {
            opcode: self._execution_cost(event, domain)
            for opcode, event in index.rep_events.items()
        }

    def _cost_array(
        self, index: _TraceIndex, domain: ExecutionDomain, table: Dict[Opcode, float]
    ) -> List[float]:
        """Per-event cost vector, memoized on the trace by table *content*."""
        key = (domain, tuple(sorted((op.value, cost) for op, cost in table.items())))
        array = index.cost_arrays.get(key)
        if array is None:
            array = [table[op] for op in index.opcodes]
            index.cost_arrays[key] = array
        return array

    # -- single-thread fast paths ------------------------------------------------------

    def _replay_single_software(self, index: _TraceIndex, timeline: ThreadTimeline) -> None:
        """Pure-software replay: strict in-order issue on one thread.

        With every event on one software thread, each operand's producing
        event finished at or before the thread's current ``next_free`` (the
        timeline is monotone), so ``issue == next_free`` always and the whole
        replay degenerates to one float accumulation.  Costs are integral
        cycle counts, so that accumulation stays exact at every step and the
        order-free counted sum below is bit-identical to it; should a custom
        cost model introduce fractional costs, the sequential loop preserves
        the reference engine's exact ordering.
        """
        table = self._cost_table(index, ExecutionDomain.SOFTWARE)
        if all(cost.is_integer() for cost in table.values()):
            total = float(
                sum(int(table[op]) * count for op, count in index.opcode_counts.items())
            )
        else:
            total = 0.0
            for opcode in index.opcodes:
                total += table[opcode]
        timeline.next_free = total
        timeline.busy_cycles = total
        timeline.events_executed = len(index.opcodes)
        timeline.finish_time = total

    def _replay_single_hardware(self, index: _TraceIndex, timeline: ThreadTimeline) -> None:
        """Pure-hardware replay: one FSM thread, no queues, no bus."""
        n = len(index.opcodes)
        deps_seq = index.deps_seq
        block_occurrence = index.block_occurrence
        cost_arr = self._cost_array(
            index, ExecutionDomain.HARDWARE, self._cost_table(index, ExecutionDomain.HARDWARE)
        )
        loop_pipe = self.hls.loop_pipelining
        slot = 1.0 / max(1, self.hls.issue_width)
        finish = [0.0] * n
        next_free = 0.0
        busy = 0.0
        finish_time = 0.0
        cur_block = timeline.current_block
        block_max = timeline.block_max_done
        for i in range(n):
            ready = 0.0
            for dep in deps_seq[i]:
                f = finish[dep]
                if f > ready:
                    ready = f
            if not loop_pipe:
                occ = block_occurrence[i]
                if occ != cur_block:
                    if block_max > next_free:
                        next_free = block_max
                    cur_block = occ
                    block_max = 0.0
            # Ties must keep max()'s first argument so int/float types (and
            # hence serialised bytes) match the reference engine exactly.
            issue = ready if ready >= next_free else next_free
            cost = cost_arr[i]
            done = issue + cost
            if cost > 1.0:
                next_free = done
                busy += cost
            else:
                next_free = issue + slot
                busy += slot
            if not loop_pipe and done > block_max:
                block_max = done
            finish[i] = done
            if next_free > finish_time:
                finish_time = next_free
            if done > finish_time:
                finish_time = done
        timeline.next_free = next_free
        timeline.busy_cycles = busy
        timeline.events_executed = n
        timeline.finish_time = finish_time
        timeline.current_block = cur_block
        timeline.block_max_done = block_max

    # -- readiness-driven engine -------------------------------------------------------

    def _replay_ready(
        self, ctx: "_ReplayContext", per_thread: Dict[int, List[int]], index: _TraceIndex
    ) -> int:
        """Wake-driven replay with the legacy poll loop's exact visit order.

        A thread sits in a heap keyed by ``(pass, position)`` — the cyclic
        round-robin coordinates of the legacy engine.  When its head event
        blocks it registers on a wake list (the first unfinished dependency,
        or the first full queue it must feed) and leaves the heap; resolving
        that dependency re-queues it at the coordinate the poll loop would
        next have retried it.  Since failed executability probes never
        mutate simulation state, skipping them preserves byte-identical
        results while eliminating the per-pass rescans.
        """
        thread_of = ctx.thread_of
        finish = ctx.finish
        timelines = ctx.timelines
        received = ctx.received
        dyn_consumers = ctx.dyn_consumers
        block_occurrence = ctx.block_occurrence
        queues = ctx.queues
        queues_get = queues.get
        bus_request = ctx.module_bus.request

        runtime = self.runtime
        coherency_delay = runtime.coherency_delay
        memory_read_cycles = runtime.memory_read_cycles
        processor_op_cycles = runtime.processor_op_cycles
        bus_latency = runtime.bus_latency
        queue_depth = runtime.queue_depth
        queue_latency = runtime.queue_latency
        loop_pipe = self.hls.loop_pipelining
        slot = 1.0 / max(1, self.hls.issue_width)

        inst_ids = index.inst_ids
        deps_seq = index.deps_seq
        mem_tail = index.mem_tail
        cost_arrays = {
            domain: self._cost_array(index, domain, self._cost_table(index, domain))
            for domain in (ExecutionDomain.SOFTWARE, ExecutionDomain.HARDWARE)
        }
        thread_domain = {tid: t.spec.domain for tid, t in timelines.items()}

        order = [tid for tid, indices in per_thread.items() if indices]
        pos_of = {tid: k for k, tid in enumerate(order)}
        pointer: Dict[int, int] = {tid: 0 for tid in order}
        state: Dict[int, int] = {tid: _QUEUED for tid in order}
        heap: List[Tuple[int, int, int]] = [(0, k, tid) for k, tid in enumerate(order)]
        # Already heap-ordered (ascending position, one pass), no heapify needed.
        dep_waiters: Dict[int, List[int]] = {}
        queue_waiters: Dict[Tuple[int, int], List[int]] = {}

        remaining = len(inst_ids)
        forced_events = 0

        def wake(waiters: List[int], cur_pass: int, cur_pos: int) -> None:
            for w in waiters:
                if state.get(w) == _BLOCKED:
                    wpos = pos_of[w]
                    if wpos > cur_pos:
                        heappush(heap, (cur_pass, wpos, w))
                    else:
                        heappush(heap, (cur_pass + 1, wpos, w))
                    state[w] = _QUEUED

        last_pass = 0
        while remaining > 0:
            if not heap:
                # Cyclic wait: force the oldest blocked event, exactly like
                # the poll loop's no-progress fallback, then give every
                # still-blocked thread a fresh pass (stale wake registrations
                # are harmless — a spurious visit is side-effect-free).
                candidates = [
                    indices[pointer[t]]
                    for t, indices in per_thread.items()
                    if t in pointer and pointer[t] < len(indices)
                ]
                event_index = min(candidates)
                self._try_execute(ctx, event_index, force=True)
                forced_tid = thread_of[event_index]
                pointer[forced_tid] += 1
                remaining -= 1
                forced_events += 1
                waiters = dep_waiters.pop(event_index, None)
                resume = [
                    tid for tid in order
                    if pointer[tid] < len(per_thread[tid]) and state[tid] != _QUEUED
                ]
                for tid in resume:
                    state[tid] = _BLOCKED
                wake(resume, last_pass, len(order))
                continue

            cur_pass, cur_pos, tid = heappop(heap)
            last_pass = cur_pass
            indices = per_thread[tid]
            ptr = pointer[tid]
            n_thread = len(indices)
            timeline = timelines[tid]
            domain = timeline.spec.domain
            is_sw = domain is ExecutionDomain.SOFTWARE
            cost_arr = cost_arrays[domain]
            # Timeline fields live in locals for the visit; all mutations in
            # a visit touch only this thread's timeline.
            next_free = timeline.next_free
            busy = timeline.busy_cycles
            finish_time = timeline.finish_time
            executed = timeline.events_executed
            cur_block = timeline.current_block
            block_max = timeline.block_max_done
            blocked = False

            while ptr < n_thread:
                i = indices[ptr]
                dseq = deps_seq[i]
                # 1. Operand readiness (register dataflow + memory dataflow).
                waiting_on = -1
                for dep in dseq:
                    if finish[dep] is None:
                        waiting_on = dep
                        break
                if waiting_on >= 0:
                    dep_waiters.setdefault(waiting_on, []).append(tid)
                    blocked = True
                    break
                # 2. Back-pressure: every queue this event feeds needs a slot.
                consumer_threads = dyn_consumers[i]
                if consumer_threads:
                    iid = inst_ids[i]
                    full_key = None
                    for consumer_thread in consumer_threads:
                        qkey = (iid, consumer_thread)
                        q = queues_get(qkey)
                        if q is None:
                            q = TimedQueue(
                                queue_id=len(queues), depth=queue_depth, latency=queue_latency
                            )
                            queues[qkey] = q
                        if not q.can_enqueue():
                            full_key = qkey
                            break
                    if full_key is not None:
                        queue_waiters.setdefault(full_key, []).append(tid)
                        blocked = True
                        break
                # 3. Issue and execute (arithmetic mirrors _try_execute).
                ready = 0.0
                if dseq:
                    tail = len(dseq) - 1 if mem_tail[i] else -1
                    for k, dep in enumerate(dseq):
                        dep_finish = finish[dep]
                        dep_thread = thread_of[dep]
                        if dep_thread == tid:
                            if dep_finish > ready:
                                ready = dep_finish
                            continue
                        if k == tail:
                            # Cross-thread memory flow: shared memory + coherency.
                            delay = coherency_delay
                            if thread_domain[dep_thread] != domain:
                                delay += memory_read_cycles
                            arrival = dep_finish + delay
                            if arrival > ready:
                                ready = arrival
                            continue
                        # Cross-thread register flow through a DSWP queue.
                        key = (dep, tid)
                        got = received.get(key)
                        if got is None:
                            qkey = (inst_ids[dep], tid)
                            q = queues_get(qkey)
                            if q is None:
                                q = TimedQueue(
                                    queue_id=len(queues),
                                    depth=queue_depth,
                                    latency=queue_latency,
                                )
                                queues[qkey] = q
                            q.dequeue_cost = processor_op_cycles if is_sw else 2
                            got = q.dequeue(next_free if next_free > 0.0 else 0.0)
                            received[key] = got
                            busy += q.dequeue_cost
                            if got > next_free:
                                next_free = got
                            waiters = queue_waiters.pop(qkey, None)
                            if waiters:
                                wake(waiters, cur_pass, cur_pos)
                        if got > ready:
                            ready = got
                if not is_sw and not loop_pipe:
                    occ = block_occurrence[i]
                    if occ != cur_block:
                        if block_max > next_free:
                            next_free = block_max
                        cur_block = occ
                        block_max = 0.0
                issue = ready if ready >= next_free else next_free
                cost = cost_arr[i]
                done = issue + cost
                if is_sw:
                    next_free = done
                    busy += cost
                elif cost > 1.0:
                    next_free = done
                    busy += cost
                else:
                    next_free = issue + slot
                    busy += slot
                # 4. Produce: enqueue the value for every consuming thread.
                if consumer_threads:
                    iid = inst_ids[i]
                    for consumer_thread in consumer_threads:
                        q = queues[(iid, consumer_thread)]
                        q.enqueue_cost = processor_op_cycles if is_sw else 2
                        bus_ready = bus_request(done, processor=is_sw)
                        floor = bus_ready - bus_latency
                        enqueue_done = q.enqueue(done if done >= floor else floor)
                        busy += q.enqueue_cost
                        if enqueue_done > next_free:
                            next_free = enqueue_done
                if not is_sw and not loop_pipe and done > block_max:
                    block_max = done
                finish[i] = done
                executed += 1
                if next_free > finish_time:
                    finish_time = next_free
                if done > finish_time:
                    finish_time = done
                waiters = dep_waiters.pop(i, None)
                if waiters:
                    wake(waiters, cur_pass, cur_pos)
                ptr += 1
                remaining -= 1

            pointer[tid] = ptr
            timeline.next_free = next_free
            timeline.busy_cycles = busy
            timeline.finish_time = finish_time
            timeline.events_executed = executed
            timeline.current_block = cur_block
            timeline.block_max_done = block_max
            state[tid] = _BLOCKED if blocked else _DONE
        return forced_events

    # -- legacy poll engine ------------------------------------------------------------

    def _replay_poll(self, ctx: "_ReplayContext", per_thread: Dict[int, List[int]]) -> int:
        """Original round-robin poll loop (differential-testing reference)."""
        pointer: Dict[int, int] = {t: 0 for t in per_thread}
        remaining = len(ctx.events)
        forced_events = 0
        thread_of = ctx.thread_of
        while remaining > 0:
            progress = False
            for thread_id, indices in per_thread.items():
                while pointer[thread_id] < len(indices):
                    if not self._try_execute(ctx, indices[pointer[thread_id]], force=False):
                        break
                    pointer[thread_id] += 1
                    remaining -= 1
                    progress = True
            if not progress and remaining > 0:
                candidates = [
                    indices[pointer[t]]
                    for t, indices in per_thread.items()
                    if pointer[t] < len(indices)
                ]
                event_index = min(candidates)
                self._try_execute(ctx, event_index, force=True)
                pointer[thread_of[event_index]] += 1
                remaining -= 1
                forced_events += 1
        return forced_events

    # -- one event --------------------------------------------------------------------------

    def _try_execute(self, ctx: "_ReplayContext", index: int, force: bool) -> bool:
        events = ctx.events
        event = events[index]
        thread_id = ctx.thread_of[index]
        timeline = ctx.timelines[thread_id]
        domain = timeline.spec.domain

        # 1. Operand readiness (register dataflow + memory dataflow).
        deps = list(event.deps)
        if event.mem_dep is not None:
            deps.append(event.mem_dep)
        for dep in deps:
            if ctx.finish[dep] is None and not force:
                return False

        # 2. Back-pressure: every queue this event must feed needs a free slot.
        consumer_threads = ctx.dyn_consumers[index]
        if consumer_threads and not force:
            for consumer_thread in consumer_threads:
                if not ctx.queue_for(event, consumer_thread).can_enqueue():
                    return False

        ready = 0.0
        for dep in deps:
            dep_finish = ctx.finish[dep]
            if dep_finish is None:
                dep_finish = ctx.timelines[ctx.thread_of[dep]].next_free
            dep_thread = ctx.thread_of[dep]
            if dep_thread == thread_id:
                ready = max(ready, dep_finish)
                continue
            if dep == event.mem_dep and dep not in event.deps:
                # Cross-thread memory flow: shared memory + coherency delay.
                delay = self.runtime.coherency_delay
                if ctx.timelines[dep_thread].spec.domain != domain:
                    delay += self.runtime.memory_read_cycles
                ready = max(ready, dep_finish + delay)
                continue
            # Cross-thread register flow through a DSWP queue: dequeue once.
            key = (dep, thread_id)
            got = ctx.received.get(key)
            if got is None:
                q = ctx.queue_for(events[dep], thread_id)
                q.dequeue_cost = (
                    self.runtime.processor_op_cycles
                    if domain is ExecutionDomain.SOFTWARE
                    else 2
                )
                got = q.dequeue(max(timeline.next_free, 0.0))
                ctx.received[key] = got
                timeline.busy_cycles += q.dequeue_cost
                timeline.next_free = max(timeline.next_free, got)
            ready = max(ready, got)

        # 3. Issue and execute.
        if domain is ExecutionDomain.HARDWARE and not self.hls.loop_pipelining:
            # FSM semantics: a new basic-block occurrence (including the next
            # iteration of a loop) cannot start before every state of the
            # previous occurrence has finished.
            occurrence = ctx.block_occurrence[index]
            if occurrence != timeline.current_block:
                timeline.next_free = max(timeline.next_free, timeline.block_max_done)
                timeline.current_block = occurrence
                timeline.block_max_done = 0.0
        issue = max(ready, timeline.next_free)
        cost = self._execution_cost(event, domain)
        done = issue + cost
        if domain is ExecutionDomain.SOFTWARE:
            timeline.next_free = done
            timeline.busy_cycles += cost
        else:
            # FSM-style execution: single-cycle operations fill a state up to
            # the issue width (the ILP LegUp exploits); multi-cycle operations
            # (memory over the bus, dividers) hold the state machine for their
            # full latency — LegUp's serial divider and blocking memory
            # accesses behave exactly like this (§5.2, §6.4).
            if cost > 1.0:
                timeline.next_free = done
                timeline.busy_cycles += cost
            else:
                timeline.next_free = issue + 1.0 / max(1, self.hls.issue_width)
                timeline.busy_cycles += 1.0 / max(1, self.hls.issue_width)

        # 4. Produce: enqueue the value for every consuming thread.
        for consumer_thread in consumer_threads:
            q = ctx.queue_for(event, consumer_thread)
            q.enqueue_cost = (
                self.runtime.processor_op_cycles
                if domain is ExecutionDomain.SOFTWARE
                else 2
            )
            bus_ready = ctx.module_bus.request(done, processor=domain is ExecutionDomain.SOFTWARE)
            enqueue_done = q.enqueue(max(done, bus_ready - self.runtime.bus_latency))
            timeline.busy_cycles += q.enqueue_cost
            timeline.next_free = max(timeline.next_free, enqueue_done)

        if domain is ExecutionDomain.HARDWARE and not self.hls.loop_pipelining:
            timeline.block_max_done = max(timeline.block_max_done, done)

        if event.opcode is Opcode.STORE:
            ctx.store_domain[index] = domain

        ctx.finish[index] = done
        timeline.events_executed += 1
        timeline.finish_time = max(timeline.finish_time, timeline.next_free, done)
        return True

    def _execution_cost(self, event: TraceEvent, domain: ExecutionDomain) -> float:
        opcode = event.opcode
        if domain is ExecutionDomain.SOFTWARE:
            return float(self.software.opcode_cost(opcode))
        cost = float(self.hardware.opcode_cost(opcode))
        if opcode is Opcode.LOAD:
            cost = float(self.runtime.memory_read_cycles)
        elif opcode is Opcode.STORE:
            cost = float(self.runtime.memory_write_cycles)
        return max(cost, 0.0)


@dataclass
class _ReplayContext:
    """Mutable state shared by the per-event executor."""

    events: List[TraceEvent]
    thread_of: List[int]
    finish: List[Optional[float]]
    timelines: Dict[int, ThreadTimeline]
    queue_for: object
    module_bus: MessageBus
    store_domain: Dict[int, ExecutionDomain]
    received: Dict[Tuple[int, int], float]
    dyn_consumers: List[Tuple[int, ...]]
    block_occurrence: List[int] = field(default_factory=list)
    # The shared (producer instruction id, consumer thread) → TimedQueue map
    # behind ``queue_for``; the ready engine indexes it directly.
    queues: Dict[Tuple[int, int], TimedQueue] = field(default_factory=dict)


def simulate_partitioned(
    module,
    trace: Trace,
    partitioning,
    runtime: RuntimeConfig,
    hls: HLSConfig,
) -> TimingResult:
    """Pure sweep-point re-simulation: replay *trace* under *partitioning*.

    A module-level function of (compile artifact pieces, config) with no
    other state, so a :class:`~concurrent.futures.ProcessPoolExecutor` worker
    can pickle it and re-run just the timing tail of the pipeline for one
    (workload, sweep-point) task — the Figure 6.5/6.6 queue sweeps.
    """
    with perf.stage("replay"):
        assignment = ThreadAssignment.from_partitioning(module, partitioning)
        return TimingSimulator(runtime, hls).simulate(trace, assignment)
