"""Thread assignment: mapping dynamic trace events onto execution threads.

Three standard assignments reproduce the three bars of the thesis's figures:

* ``pure_software`` — every instruction runs on the single MicroBlaze;
* ``pure_hardware`` — every instruction runs in one LegUp-style hardware
  circuit (the pure-HW baseline);
* ``from_partitioning`` — the Twill hybrid: each instruction runs on the
  thread its DSWP partition was assigned to, with every software partition
  sharing the one MicroBlaze and each hardware partition getting its own
  hardware thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.dswp.pipeline import ModulePartitioning
from repro.dswp.partitioner import PartitionKind
from repro.interp.trace import TraceEvent
from repro.ir.module import Module


class ExecutionDomain(str, Enum):
    """Where a thread executes."""

    SOFTWARE = "sw"
    HARDWARE = "hw"


@dataclass(frozen=True)
class ThreadSpec:
    """One execution thread of the simulated system."""

    thread_id: int
    domain: ExecutionDomain
    label: str

    def is_software(self) -> bool:
        return self.domain is ExecutionDomain.SOFTWARE

    def is_hardware(self) -> bool:
        return self.domain is ExecutionDomain.HARDWARE


class ThreadAssignment:
    """Maps static instructions (by identity) to threads."""

    def __init__(self, threads: List[ThreadSpec], default_thread: int = 0):
        self.threads = list(threads)
        self.by_id = {t.thread_id: t for t in self.threads}
        self.default_thread = default_thread
        self._map: Dict[int, int] = {}          # id(static inst) -> thread id

    # -- construction -----------------------------------------------------------------

    def assign_instruction(self, inst, thread_id: int) -> None:
        self._map[id(inst)] = thread_id

    # -- queries -----------------------------------------------------------------------

    def thread_of_event(self, event: TraceEvent) -> ThreadSpec:
        thread_id = self._map.get(id(event.inst), self.default_thread)
        return self.by_id[thread_id]

    def software_threads(self) -> List[ThreadSpec]:
        return [t for t in self.threads if t.is_software()]

    def hardware_threads(self) -> List[ThreadSpec]:
        return [t for t in self.threads if t.is_hardware()]

    @property
    def hardware_thread_count(self) -> int:
        return len(self.hardware_threads())

    # -- factory methods -----------------------------------------------------------------

    @classmethod
    def pure_software(cls, module: Module) -> "ThreadAssignment":
        cpu = ThreadSpec(0, ExecutionDomain.SOFTWARE, "microblaze")
        assignment = cls([cpu], default_thread=0)
        for fn in module.defined_functions():
            for inst in fn.instructions():
                assignment.assign_instruction(inst, 0)
        return assignment

    @classmethod
    def pure_hardware(cls, module: Module) -> "ThreadAssignment":
        hw = ThreadSpec(0, ExecutionDomain.HARDWARE, "legup-circuit")
        assignment = cls([hw], default_thread=0)
        for fn in module.defined_functions():
            for inst in fn.instructions():
                assignment.assign_instruction(inst, 0)
        return assignment

    @classmethod
    def from_partitioning(
        cls, module: Module, partitioning: ModulePartitioning
    ) -> "ThreadAssignment":
        """Twill hybrid assignment.

        All software partitions share thread 0 (the single MicroBlaze of the
        evaluation platform); every non-empty hardware partition of every
        function becomes its own hardware thread.
        """
        threads: List[ThreadSpec] = [ThreadSpec(0, ExecutionDomain.SOFTWARE, "microblaze")]
        next_id = 1
        hw_thread_of: Dict[Tuple[str, int], int] = {}
        for fn_name, fp in partitioning.functions.items():
            for partition in fp.partitions:
                if partition.is_hardware() and partition.instructions:
                    threads.append(
                        ThreadSpec(next_id, ExecutionDomain.HARDWARE, f"{fn_name}.hw{partition.index}")
                    )
                    hw_thread_of[(fn_name, partition.index)] = next_id
                    next_id += 1

        assignment = cls(threads, default_thread=0)
        for fn_name, fp in partitioning.functions.items():
            fn = fp.function
            for inst in fn.instructions():
                partition_index = fp.assignment.get(id(inst))
                if partition_index is None:
                    assignment.assign_instruction(inst, 0)
                    continue
                partition = fp.partitions[partition_index]
                if partition.is_hardware() and (fn_name, partition_index) in hw_thread_of:
                    assignment.assign_instruction(inst, hw_thread_of[(fn_name, partition_index)])
                else:
                    assignment.assign_instruction(inst, 0)
        # Functions that were not partitioned (declarations excluded) default to software.
        for fn in module.defined_functions():
            if fn.name not in partitioning.functions:
                for inst in fn.instructions():
                    assignment.assign_instruction(inst, 0)
        return assignment
