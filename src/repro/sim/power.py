"""Activity-based power model (the Xilinx XPower analogue for Figure 6.1).

Power is split into

* a **MicroBlaze** term with a large constant component — the thesis traces
  the processor's poor power efficiency mainly to its internal PLLs — plus a
  dynamic component proportional to how busy the processor actually is;
* an **FPGA fabric** term proportional to the LUTs in use, with a static
  leakage fraction and a dynamic fraction scaled by activity.

Only *relative* power matters for Figure 6.1 (everything is normalised to
the pure-software implementation), so the absolute milliwatt constants are
calibration knobs, chosen to land the pure-HW designs in the 0.3-0.6x band
and Twill between pure HW and pure SW — the ordering the thesis reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PowerEstimate:
    """Milliwatt estimate for one configuration."""

    microblaze_mw: float = 0.0
    fabric_static_mw: float = 0.0
    fabric_dynamic_mw: float = 0.0

    @property
    def total_mw(self) -> float:
        return self.microblaze_mw + self.fabric_static_mw + self.fabric_dynamic_mw

    def normalised_to(self, baseline: "PowerEstimate") -> float:
        if baseline.total_mw <= 0:
            return 0.0
        return self.total_mw / baseline.total_mw


class PowerModel:
    """Computes :class:`PowerEstimate` values from area and activity."""

    # Calibration constants (milliwatts).
    MICROBLAZE_PLL_MW = 320.0          # constant cost of the processor's clocking
    MICROBLAZE_DYNAMIC_MW = 430.0      # at 100% utilisation
    FABRIC_STATIC_UW_PER_LUT = 5.0     # leakage + clock tree per used LUT
    FABRIC_DYNAMIC_UW_PER_LUT = 12.0   # at 100% toggle activity
    DSP_MW = 4.0                       # per DSP block, mostly dynamic
    BRAM_MW = 3.0                      # per BRAM block

    def estimate(
        self,
        luts: int,
        dsps: int = 0,
        brams: int = 0,
        fabric_activity: float = 1.0,
        has_processor: bool = False,
        processor_utilisation: float = 1.0,
    ) -> PowerEstimate:
        """Power of one configuration.

        ``fabric_activity`` and ``processor_utilisation`` are in [0, 1]:
        the fraction of cycles the fabric / the processor is doing work.
        """
        fabric_activity = min(max(fabric_activity, 0.0), 1.0)
        processor_utilisation = min(max(processor_utilisation, 0.0), 1.0)
        estimate = PowerEstimate()
        if has_processor:
            estimate.microblaze_mw = (
                self.MICROBLAZE_PLL_MW + self.MICROBLAZE_DYNAMIC_MW * processor_utilisation
            )
        estimate.fabric_static_mw = (
            luts * self.FABRIC_STATIC_UW_PER_LUT / 1000.0
            + brams * self.BRAM_MW * 0.4
        )
        estimate.fabric_dynamic_mw = (
            luts * self.FABRIC_DYNAMIC_UW_PER_LUT * fabric_activity / 1000.0
            + dsps * self.DSP_MW * fabric_activity
            + brams * self.BRAM_MW * 0.6 * fabric_activity
        )
        return estimate

    # -- convenience wrappers for the three standard configurations ---------------------

    def pure_software(self, utilisation: float = 1.0) -> PowerEstimate:
        return self.estimate(luts=0, has_processor=True, processor_utilisation=utilisation)

    def pure_hardware(self, luts: int, dsps: int = 0, brams: int = 0, activity: float = 0.8) -> PowerEstimate:
        return self.estimate(luts=luts, dsps=dsps, brams=brams, fabric_activity=activity, has_processor=False)

    def twill(
        self,
        hw_luts: int,
        runtime_luts: int,
        dsps: int = 0,
        brams: int = 0,
        fabric_activity: float = 0.7,
        processor_utilisation: float = 0.3,
    ) -> PowerEstimate:
        return self.estimate(
            luts=hw_luts + runtime_luts,
            dsps=dsps,
            brams=brams,
            fabric_activity=fabric_activity,
            has_processor=True,
            processor_utilisation=processor_utilisation,
        )
