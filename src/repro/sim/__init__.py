"""Hybrid timing simulation: trace replay under pure-SW, pure-HW and Twill
configurations, plus the activity-based power model.

The simulator consumes the dynamic trace produced by the functional
interpreter and a *thread assignment* (which thread, in which domain, runs
each dynamic instruction).  It reproduces the cycle-level behaviour the
evaluation cares about: sequential MicroBlaze execution, ILP-limited FSM
execution in hardware, queue latency/occupancy, bus contention, memory
coherency delay, and the processor stream-interface overhead.
"""

from repro.sim.assignment import ThreadAssignment, ThreadSpec, ExecutionDomain
from repro.sim.timing import TimingSimulator, TimingResult
from repro.sim.system import HybridSystem, SystemResult
from repro.sim.power import PowerModel, PowerEstimate

__all__ = [
    "ThreadAssignment",
    "ThreadSpec",
    "ExecutionDomain",
    "TimingSimulator",
    "TimingResult",
    "HybridSystem",
    "SystemResult",
    "PowerModel",
    "PowerEstimate",
]
