"""Trace analytics over JSONL span files: summaries, critical path, overhead.

:mod:`repro.obs.render` draws a trace; this module *measures* it.  All
functions are pure over the plain span dicts :func:`repro.obs.render.load_spans`
returns, so they work equally on a file captured via ``$REPRO_TRACE``, the
in-process buffer of a live tracer, or synthetic spans in tests.

Three instruments:

* :func:`summarize` — per-kind aggregates: span count, total time, *self*
  time (duration minus the time covered by child spans, clamped at zero),
  and p50/p95 durations.  Self time is what a flat profile can't show you:
  a ``scheduler.run`` span wrapping the whole run has a huge total but —
  if the scheduler is efficient — near-zero self time.
* :func:`critical_path` — the longest chain through the span DAG of one
  trace: start from the longest root, repeatedly descend into the child
  that finishes last, and attribute to every hop the time *not* explained
  by the next hop.  The chain's coverage of the trace window tells you how
  much of the wall time a single dependency chain pins down — the
  shortest possible run time under infinite parallelism.
* :func:`scheduler_overhead` — wall time of each ``scheduler.run`` root
  minus the union of its descendants' intervals: time the engine spent
  *between* tasks (topo sorting, result plumbing, cache bookkeeping).

Percentiles use the deterministic nearest-rank method so the same trace
always yields the same report.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

Span = Dict[str, Any]


def _duration(span: Span) -> float:
    return max(0.0, float(span.get("end", 0.0)) - float(span.get("start", 0.0)))


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def trace_window(spans: List[Span]) -> Tuple[float, float]:
    """The ``(earliest start, latest end)`` wall window covered by *spans*."""
    if not spans:
        return (0.0, 0.0)
    return (
        min(float(s.get("start", 0.0)) for s in spans),
        max(float(s.get("end", 0.0)) for s in spans),
    )


def _children_index(spans: List[Span]) -> Dict[str, List[Span]]:
    """``span_id -> children`` within one trace, children ordered by start."""
    by_id = {str(s.get("span_id")): s for s in spans}
    children: Dict[str, List[Span]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and str(parent) in by_id:
            children.setdefault(str(parent), []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (float(s.get("start", 0.0)), str(s.get("span_id"))))
    return children


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping ``(start, end)`` pairs."""
    total = 0.0
    cursor = -math.inf
    for start, end in sorted(intervals):
        if end <= cursor:
            continue
        total += end - max(start, cursor)
        cursor = end
    return total


def self_seconds(span: Span, children: Dict[str, List[Span]]) -> float:
    """Span duration minus the union of its children's intervals (>= 0)."""
    kids = children.get(str(span.get("span_id")), [])
    if not kids:
        return _duration(span)
    start = float(span.get("start", 0.0))
    end = float(span.get("end", 0.0))
    covered = _interval_union(
        [
            (max(float(k.get("start", 0.0)), start), min(float(k.get("end", 0.0)), end))
            for k in kids
            if float(k.get("end", 0.0)) > start and float(k.get("start", 0.0)) < end
        ]
    )
    return max(0.0, _duration(span) - covered)


def summarize(spans: List[Span]) -> List[Dict[str, Any]]:
    """Per-kind aggregate rows, ordered by total time descending.

    Each row: ``kind``, ``count``, ``total_seconds``, ``self_seconds``,
    ``p50_seconds``, ``p95_seconds``.  Self time is computed per trace so a
    parent in one trace never absorbs children from another.
    """
    from repro.obs.render import group_by_trace

    per_kind: Dict[str, Dict[str, Any]] = {}
    for members in group_by_trace(spans).values():
        children = _children_index(members)
        for span in members:
            kind = str(span.get("kind", "span"))
            row = per_kind.setdefault(
                kind, {"kind": kind, "count": 0, "total": 0.0, "self": 0.0, "durations": []}
            )
            row["count"] += 1
            row["total"] += _duration(span)
            row["self"] += self_seconds(span, children)
            row["durations"].append(_duration(span))
    rows = []
    for row in per_kind.values():
        durations = sorted(row["durations"])
        rows.append(
            {
                "kind": row["kind"],
                "count": row["count"],
                "total_seconds": round(row["total"], 6),
                "self_seconds": round(row["self"], 6),
                "p50_seconds": round(_percentile(durations, 0.50), 6),
                "p95_seconds": round(_percentile(durations, 0.95), 6),
            }
        )
    rows.sort(key=lambda r: (-r["total_seconds"], r["kind"]))
    return rows


def critical_path(spans: List[Span], trace_id: Optional[str] = None) -> Dict[str, Any]:
    """The longest root-to-leaf chain of one trace, with per-hop attribution.

    Picks the trace with the widest window when *trace_id* is not given.
    Returns ``{trace_id, window_seconds, path_seconds, coverage, hops}``
    where each hop carries ``name``, ``kind``, ``lane`` (worker or
    service), ``duration_seconds`` and ``self_seconds`` — the time this
    hop contributes beyond the hop below it.  ``coverage`` is
    ``path_seconds / window_seconds``: how much of the observed wall time
    one dependency chain explains.
    """
    from repro.obs.render import _span_lane, group_by_trace

    traces = group_by_trace(spans)
    if trace_id is not None:
        traces = {trace_id: traces.get(trace_id, [])}
    if not traces or not any(traces.values()):
        return {"trace_id": trace_id, "window_seconds": 0.0, "path_seconds": 0.0, "coverage": 0.0, "hops": []}

    def window_of(members: List[Span]) -> float:
        t0, t1 = trace_window(members)
        return t1 - t0

    tid, members = max(
        ((tid, m) for tid, m in traces.items() if m), key=lambda item: window_of(item[1])
    )
    children = _children_index(members)
    by_id = {str(s.get("span_id")): s for s in members}
    roots = [
        s
        for s in members
        if s.get("parent_id") is None or str(s.get("parent_id")) not in by_id
    ]
    root = max(roots, key=lambda s: (_duration(s), str(s.get("span_id"))))

    chain: List[Span] = [root]
    cursor = root
    while True:
        kids = children.get(str(cursor.get("span_id")), [])
        if not kids:
            break
        # The child that finishes last pins the parent's end — follow it.
        cursor = max(kids, key=lambda s: (float(s.get("end", 0.0)), str(s.get("span_id"))))
        chain.append(cursor)

    hops: List[Dict[str, Any]] = []
    for index, hop in enumerate(chain):
        below = _duration(chain[index + 1]) if index + 1 < len(chain) else 0.0
        hops.append(
            {
                "name": str(hop.get("name", "?")),
                "kind": str(hop.get("kind", "span")),
                "lane": _span_lane(hop),
                "duration_seconds": round(_duration(hop), 6),
                "self_seconds": round(max(0.0, _duration(hop) - below), 6),
            }
        )
    window = window_of(members)
    path_seconds = _duration(root)
    return {
        "trace_id": tid,
        "window_seconds": round(window, 6),
        "path_seconds": round(path_seconds, 6),
        "coverage": round(path_seconds / window, 4) if window > 0 else 0.0,
        "hops": hops,
    }


def scheduler_overhead(spans: List[Span]) -> Dict[str, Any]:
    """Engine overhead: scheduler wall time not covered by any descendant.

    For every ``scheduler.run`` span, subtract the union of *all* other
    spans' intervals clipped to its window (descendants may be recorded by
    other processes and re-parented oddly, so the union over the trace is
    the robust measure).  Returns ``{runs, total_seconds,
    covered_seconds, overhead_seconds, overhead_fraction}``.
    """
    from repro.obs.render import group_by_trace

    runs = 0
    total = 0.0
    covered = 0.0
    for members in group_by_trace(spans).values():
        for span in members:
            if str(span.get("name")) != "scheduler.run":
                continue
            runs += 1
            start = float(span.get("start", 0.0))
            end = float(span.get("end", 0.0))
            total += _duration(span)
            intervals = [
                (max(float(s.get("start", 0.0)), start), min(float(s.get("end", 0.0)), end))
                for s in members
                if s is not span
                and float(s.get("end", 0.0)) > start
                and float(s.get("start", 0.0)) < end
            ]
            covered += min(_duration(span), _interval_union(intervals))
    overhead = max(0.0, total - covered)
    return {
        "runs": runs,
        "total_seconds": round(total, 6),
        "covered_seconds": round(covered, 6),
        "overhead_seconds": round(overhead, 6),
        "overhead_fraction": round(overhead / total, 4) if total > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# text renderers (the `repro trace --summary/--critical-path` output)
# ---------------------------------------------------------------------------


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def render_summary(spans: List[Span]) -> str:
    """The ``--summary`` table plus the scheduler-overhead footer."""
    rows = summarize(spans)
    if not rows:
        return "no spans"
    header = ("kind", "count", "total", "self", "p50", "p95")
    table = [header] + [
        (
            row["kind"],
            str(row["count"]),
            _fmt(row["total_seconds"]),
            _fmt(row["self_seconds"]),
            _fmt(row["p50_seconds"]),
            _fmt(row["p95_seconds"]),
        )
        for row in rows
    ]
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
                for col, cell in enumerate(line)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    overhead = scheduler_overhead(spans)
    if overhead["runs"]:
        lines.append("")
        lines.append(
            f"scheduler overhead: {_fmt(overhead['overhead_seconds'])} of "
            f"{_fmt(overhead['total_seconds'])} scheduler wall time "
            f"({overhead['overhead_fraction'] * 100.0:.1f}%) not covered by spans"
        )
    return "\n".join(lines)


def render_critical_path(spans: List[Span], trace_id: Optional[str] = None) -> str:
    """The ``--critical-path`` chain, one indented hop per line."""
    path = critical_path(spans, trace_id=trace_id)
    if not path["hops"]:
        return "no spans"
    lines = [
        f"critical path: trace {path['trace_id']} — {len(path['hops'])} hops, "
        f"{_fmt(path['path_seconds'])} of {_fmt(path['window_seconds'])} window "
        f"(coverage {path['coverage'] * 100.0:.0f}%)"
    ]
    for depth, hop in enumerate(path["hops"]):
        indent = "  " * depth + ("└─ " if depth else "")
        lines.append(
            f"{indent}{hop['name']} ({hop['kind']}) {_fmt(hop['duration_seconds'])} "
            f"[self {_fmt(hop['self_seconds'])}] [{hop['lane']}]"
        )
    return "\n".join(lines)
