"""``repro cluster status``: one live summary from the services' endpoints.

Scrapes a coordinator (``/healthz``, ``/status``, ``/metrics``) and
optionally a cache service (``/healthz``, ``/metrics``) and folds the
results into one structure / one human-readable block: worker liveness and
heartbeat ages (with the trace id each worker last reported, so a stuck
task is attributable), queue depth, lease and completion counters,
observed task throughput (completions over service uptime), and the cache
store's hit/miss/size picture.

``/metrics`` is Prometheus text, so this module carries
:func:`parse_prometheus` — a small parser for the exposition format
producing ``{name: [(labels, value), ...]}``.  ``/healthz`` and
``/metrics`` are auth-exempt; ``/status`` presents the shared service
token via the normal protocol helpers when one is configured.
"""

from __future__ import annotations

import re
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RemoteError
from repro.eval.remote.protocol import (
    TRANSPORT_ERRORS,
    auth_headers,
    http_get_json,
    urlopen,
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``."""
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for label_match in _LABEL_RE.finditer(match.group("labels")):
                value = label_match.group(2)
                value = value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
                labels[label_match.group(1)] = value
        raw = match.group("value")
        try:
            value = float("inf") if raw == "+Inf" else float(raw)
        except ValueError:
            continue
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def metric_value(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]],
    name: str,
    **labels: str,
) -> Optional[float]:
    """Sum of *name* samples whose labels include *labels* (``None`` = absent)."""
    rows = samples.get(name)
    if rows is None:
        return None
    matched = [
        value
        for sample_labels, value in rows
        if all(sample_labels.get(k) == v for k, v in labels.items())
    ]
    if not matched:
        return None
    return sum(matched)


def _normalise_url(url: str) -> str:
    url = url.strip().rstrip("/")
    if not url.startswith(("http://", "https://")):
        url = f"http://{url}"
    return url


def fetch_metrics_text(base_url: str, timeout: float = 10.0) -> str:
    """GET ``/metrics`` (plain text; auth-exempt like ``/healthz``)."""
    request = urllib.request.Request(f"{base_url}/metrics", headers=auth_headers())
    with urlopen(request, timeout=timeout) as response:
        return response.read().decode("utf-8")


def collect_status(
    coordinator_url: str,
    cache_url: Optional[str] = None,
    timeout: float = 10.0,
) -> Dict[str, Any]:
    """Scrape the services and fold everything into one JSON-able summary."""
    coordinator_url = _normalise_url(coordinator_url)
    summary: Dict[str, Any] = {"coordinator": {"url": coordinator_url}}
    try:
        health = http_get_json(f"{coordinator_url}/healthz", timeout=timeout)
        status = http_get_json(f"{coordinator_url}/status", timeout=timeout)
        samples = parse_prometheus(fetch_metrics_text(coordinator_url, timeout=timeout))
    except (*TRANSPORT_ERRORS, ValueError) as exc:
        raise RemoteError(f"coordinator at {coordinator_url} unreachable: {exc}") from exc
    uptime = float(health.get("uptime_seconds") or 0.0)
    completed = metric_value(samples, "repro_tasks_completed_total") or 0.0
    lease_sum = metric_value(samples, "repro_lease_latency_seconds_sum") or 0.0
    lease_count = metric_value(samples, "repro_lease_latency_seconds_count") or 0.0
    summary["coordinator"]["lease_latency_mean_s"] = (
        round(lease_sum / lease_count, 4) if lease_count else None
    )
    summary["coordinator"].update(
        {
            "ok": bool(health.get("ok")),
            "version": health.get("version"),
            "uptime_seconds": round(uptime, 1),
            "workers": status.get("workers", []),
            "worker_detail": status.get("worker_detail", {}),
            "queued": status.get("queued", 0),
            "leased": status.get("leased", 0),
            "shutdown": bool(status.get("shutdown")),
            "tasks_submitted": metric_value(samples, "repro_tasks_submitted_total") or 0.0,
            "tasks_completed": completed,
            "tasks_requeued": metric_value(samples, "repro_tasks_requeued_total") or 0.0,
            "throughput_per_s": round(completed / uptime, 3) if uptime > 0 else 0.0,
        }
    )
    if cache_url:
        cache_url = _normalise_url(cache_url)
        summary["cache"] = {"url": cache_url}
        try:
            health = http_get_json(f"{cache_url}/healthz", timeout=timeout)
            samples = parse_prometheus(fetch_metrics_text(cache_url, timeout=timeout))
        except (*TRANSPORT_ERRORS, ValueError) as exc:
            raise RemoteError(f"cache service at {cache_url} unreachable: {exc}") from exc
        hits = metric_value(samples, "repro_cache_hits_total") or 0.0
        misses = metric_value(samples, "repro_cache_misses_total") or 0.0
        lookups = hits + misses
        summary["cache"].update(
            {
                "ok": bool(health.get("ok")),
                "version": health.get("version"),
                "uptime_seconds": round(float(health.get("uptime_seconds") or 0.0), 1),
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 3) if lookups else None,
                "puts": metric_value(samples, "repro_cache_puts_total") or 0.0,
                "entries": metric_value(samples, "repro_cache_entries"),
                "bytes": metric_value(samples, "repro_cache_bytes"),
            }
        )
    return summary


def render_status(summary: Dict[str, Any]) -> str:
    """The human-readable block ``repro cluster status`` prints."""
    coordinator = summary["coordinator"]
    lines = [
        f"coordinator {coordinator['url']} "
        f"({'up' if coordinator.get('ok') else 'DOWN'}, "
        f"version {coordinator.get('version') or '?'}, "
        f"uptime {coordinator.get('uptime_seconds', 0.0):.0f}s"
        f"{', shutting down' if coordinator.get('shutdown') else ''})",
        f"  queue depth {coordinator.get('queued', 0)}, leased {coordinator.get('leased', 0)}, "
        f"submitted {coordinator.get('tasks_submitted', 0):.0f}, "
        f"completed {coordinator.get('tasks_completed', 0):.0f} "
        f"({coordinator.get('throughput_per_s', 0.0):.2f}/s), "
        f"requeued {coordinator.get('tasks_requeued', 0):.0f}",
    ]
    workers = coordinator.get("workers", [])
    detail = coordinator.get("worker_detail", {})
    lines.append(f"  workers live: {len(workers)}")
    for worker in workers:
        info = detail.get(worker, {})
        age = info.get("heartbeat_age_seconds")
        trace = info.get("trace_id")
        lines.append(
            f"    {worker}: heartbeat {age:.1f}s ago"
            f"{f', tracing {trace}' if trace else ''}"
            if age is not None
            else f"    {worker}"
        )
    cache = summary.get("cache")
    if cache:
        lines.append(
            f"cache {cache['url']} "
            f"({'up' if cache.get('ok') else 'DOWN'}, "
            f"version {cache.get('version') or '?'}, "
            f"uptime {cache.get('uptime_seconds', 0.0):.0f}s)"
        )
        rate = cache.get("hit_rate")
        lines.append(
            f"  hits {cache.get('hits', 0):.0f}, misses {cache.get('misses', 0):.0f}"
            f"{f' (hit rate {rate:.1%})' if rate is not None else ''}, "
            f"puts {cache.get('puts', 0):.0f}"
        )
        entries, size = cache.get("entries"), cache.get("bytes")
        if entries is not None or size is not None:
            lines.append(
                f"  store: {entries if entries is not None else '?'} entries, "
                f"{f'{size / 1e6:.1f} MB' if size is not None else '? bytes'}"
            )
    return "\n".join(lines)
