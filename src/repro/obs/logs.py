"""``logging``-based structured loggers for the remote services.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` / ``sys.stderr.write``
calls that coordinator, worker and cache-service code grew organically.
Each service gets a named logger (``repro.worker``, ``repro.coordinator``,
``repro.cache``) writing single-line records to stderr in the same
``<service>: <message>`` shape the prints used — prefixed with a timestamp
and level — so log-scraping expectations and the smoke tests keep working
while levels become filterable.

The effective level comes from ``$REPRO_LOG_LEVEL`` (``DEBUG`` … ``ERROR``,
default ``INFO``).  The services' ``--verbose``/``verbose=`` flags map onto
this: verbose mode forces ``DEBUG`` for that service's logger (per-request
and per-task chatter logs at ``DEBUG``), while lifecycle messages log at
``INFO`` and degradations at ``WARNING`` so they surface by default.
Handlers attach once per logger; repeated :func:`get_logger` calls are
cheap and idempotent.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable selecting the default level (name or number).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname).1s %(service)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


class _ServiceFormatter(logging.Formatter):
    """Renders ``repro.<service>`` logger names as the bare service name."""

    def format(self, record: logging.LogRecord) -> str:
        record.service = record.name.rpartition(".")[2]
        return super().format(record)


def env_level(default: int = logging.INFO) -> int:
    """The level ``$REPRO_LOG_LEVEL`` selects (*default* when unset/bogus)."""
    raw = (os.environ.get(LOG_LEVEL_ENV) or "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    return level if isinstance(level, int) else default


def get_logger(service: str, verbose: Optional[bool] = None) -> logging.Logger:
    """The stderr logger for *service* (``worker``, ``coordinator``, ``cache``).

    *verbose* True forces ``DEBUG`` regardless of the environment; False or
    ``None`` defers to ``$REPRO_LOG_LEVEL`` (default ``INFO``).
    """
    logger = logging.getLogger(f"repro.{service}")
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(_ServiceFormatter(_FORMAT, _DATE_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(logging.DEBUG if verbose else env_level())
    return logger
