"""Span-based structured tracing with cross-process / cross-host propagation.

A *span* is one timed unit of work: a task-graph node execution, a cache
lookup, a harness run, an explore generation, or one HTTP request handled
by a remote service.  Spans carry a ``trace_id`` shared by everything in
one logical run, their own ``span_id``, and the ``parent_id`` of the
enclosing span, so a renderer can reassemble the tree of a distributed run
from whatever order the records landed in.

Tracing is **off by default** and strictly observational: enabling it must
never change any computed output (the byte-identity tests pin this).  The
switch is the ``$REPRO_TRACE`` environment variable naming a JSONL sink
file; every process that inherits it — the CLI, pool children, worker
daemons, the cache service — appends one JSON object per finished span
(single ``O_APPEND`` writes, safe across processes).  Timestamps pair a
wall-clock ``start`` (``time.time``, comparable across hosts) with a
duration measured on the monotonic clock, so ``end - start`` is immune to
clock steps.

Context lives in a per-thread stack: :func:`span` opens a child of the
innermost active span (or starts a new trace), and :func:`activate` adopts
a ``(trace_id, parent_id)`` pair that arrived from another process — via
the ``trace`` field of a task spec (coordinator → worker and local pool
hops) or via the ``X-Repro-Trace-Id`` / ``X-Repro-Parent-Span`` HTTP
headers (client → cache service hops, injected by the protocol helpers).
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Environment variable naming the JSONL sink; set = tracing on.
TRACE_ENV = "REPRO_TRACE"

#: HTTP headers carrying trace context across service hops.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"

#: In-memory span buffer cap per process (the JSONL sink is unbounded).
_BUFFER_LIMIT = 100_000


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return os.urandom(8).hex()


class _LiveSpan:
    """The object a ``with span(...)`` block receives: ids + attr setter."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind", "worker", "attrs")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        worker: Optional[str],
        attrs: Dict[str, Any],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.worker = worker
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-serialisable) to the span."""
        self.attrs[key] = value


class _NullSpan:
    """Stand-in yielded when tracing is off; absorbs attribute writes."""

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def set(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Records finished spans to an in-memory buffer and a span writer.

    The default writer is a JSONL file: the handle is opened once in append
    mode and **flushed after every record**, so a process killed mid-run
    (KeyboardInterrupt, OOM, SIGTERM) leaves a valid JSONL prefix — every
    line that was written is complete and parseable.  When ``$REPRO_TRACE``
    is an ``http(s)://`` URL the writer is instead a
    :class:`repro.obs.collect.RemoteSink` shipping batches to a central
    collector.  :func:`shutdown` (registered ``atexit``) additionally
    records any still-open spans as ``interrupted`` and closes the writer.
    """

    def __init__(
        self,
        sink: Optional[Path] = None,
        service: str = "cli",
        writer: Optional[Any] = None,
    ):
        self.sink = Path(sink) if sink else None
        self.writer = writer
        #: The raw ``$REPRO_TRACE`` value this tracer writes to (file path
        #: or collector URL) — recorded into the run-history ledger so a
        #: flagged regression links back to its trace.
        self.sink_spec: Optional[str] = str(sink) if sink else None
        if writer is not None and self.sink_spec is None:
            self.sink_spec = getattr(writer, "base_url", None)
        self.service = service
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._handle: Any = None
        self._sink_broken = False

    def record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) < _BUFFER_LIMIT:
                self._spans.append(record)
        if self.writer is not None:
            try:
                self.writer.write_record(record)
            except Exception:
                pass  # observe-only: a broken shipper never fails work
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self.sink is None or self._sink_broken:
                return
            try:
                if self._handle is None:
                    self._handle = open(self.sink, "a", encoding="utf-8")
                # One write + flush per line keeps cross-process appends
                # whole-line atomic, exactly like the old open/close cycle.
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                self._sink_broken = True  # observe-only: never fail work

    def close(self) -> None:
        """Flush and close the sink (a file handle reopens on next record)."""
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def spans(self) -> List[Dict[str, Any]]:
        """This process's finished spans (the report's timeline source)."""
        with self._lock:
            return list(self._spans)


# The process tracer: _UNSET until first use, then a Tracer or None.
_UNSET = object()
_tracer: Any = _UNSET
_service_name = "cli"
_atexit_registered = False
_last_trace_id: Optional[str] = None

# Spans currently open anywhere in this process, so an interrupt can flush
# them to the sink instead of silently dropping whatever was in flight.
_live_lock = threading.Lock()
_live_spans: Dict[int, Dict[str, Any]] = {}
_live_tokens = itertools.count()


def _register_live(live: "_LiveSpan", start_wall: float, start_mono: float) -> int:
    token = next(_live_tokens)
    with _live_lock:
        _live_spans[token] = {
            "live": live,
            "start_wall": start_wall,
            "start_mono": start_mono,
        }
    return token


def _finish_live(token: int) -> Optional[Dict[str, Any]]:
    """Claim a live span for recording; ``None`` if shutdown already did."""
    with _live_lock:
        return _live_spans.pop(token, None)


def _ensure_atexit() -> None:
    global _atexit_registered
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(shutdown)


def shutdown() -> None:
    """Flush the tracer: record still-open spans, close the sink handle.

    Registered ``atexit`` whenever a sink-backed tracer exists, and safe
    to call eagerly (e.g. from the CLI's KeyboardInterrupt handler).
    Spans that are still open — blocked worker threads, an interrupted
    scheduler — are recorded with an ``interrupted`` attribute and the
    current time as their end, so a partial trace still accounts for all
    the wall time it observed.  Idempotent per span: whichever of this
    function and the span's own ``finally`` runs first claims the record.
    """
    active = _tracer if isinstance(_tracer, Tracer) else None
    with _live_lock:
        pending = sorted(_live_spans.items())
        _live_spans.clear()
    if active is None:
        return
    for _, entry in pending:
        live = entry["live"]
        attrs = dict(live.attrs)
        attrs["interrupted"] = True
        duration = time.perf_counter() - entry["start_mono"]
        active.record(
            {
                "trace_id": live.trace_id,
                "span_id": live.span_id,
                "parent_id": live.parent_id,
                "name": live.name,
                "kind": live.kind,
                "service": active.service,
                "worker": live.worker,
                "start": entry["start_wall"],
                "end": entry["start_wall"] + duration,
                "attrs": attrs,
            }
        )
    active.close()


class _Context(threading.local):
    def __init__(self) -> None:
        self.stack: List[Tuple[str, Optional[str]]] = []


_context = _Context()


def tracer() -> Optional[Tracer]:
    """The process tracer, lazily built from ``$REPRO_TRACE`` (``None`` = off).

    A plain value is a JSONL sink path; an ``http(s)://`` value selects a
    :class:`~repro.obs.collect.RemoteSink` shipping spans to that central
    collector instead (``POST /spans`` on the coordinator or a standalone
    ``repro collect serve``).
    """
    global _tracer
    if _tracer is _UNSET:
        spec = (os.environ.get(TRACE_ENV) or "").strip()
        if not spec:
            _tracer = None
        elif spec.startswith(("http://", "https://")):
            from repro.obs import collect

            _tracer = Tracer(writer=collect.RemoteSink(spec), service=_service_name)
            _tracer.sink_spec = spec
        else:
            _tracer = Tracer(Path(spec), service=_service_name)
        if _tracer is not None:
            _ensure_atexit()
    return _tracer


def sink_spec() -> Optional[str]:
    """The active tracer's sink (file path or collector URL), if tracing."""
    active = tracer()
    return active.sink_spec if active is not None else None


def enabled() -> bool:
    """Whether tracing is active in this process."""
    return tracer() is not None


def enable(sink: Optional[Path] = None, service: Optional[str] = None) -> Tracer:
    """Programmatically switch tracing on (tests; env-free embedding)."""
    global _tracer
    if isinstance(_tracer, Tracer):
        _tracer.close()
    _tracer = Tracer(sink, service=service or _service_name)
    if _tracer.sink is not None:
        _ensure_atexit()
    return _tracer


def reset() -> None:
    """Forget the process tracer so the next use re-reads ``$REPRO_TRACE``."""
    global _tracer, _last_trace_id
    if isinstance(_tracer, Tracer):
        _tracer.close()
    _tracer = _UNSET
    _last_trace_id = None
    _context.stack = []
    with _live_lock:
        _live_spans.clear()


def set_service(name: str) -> None:
    """Name this process's role (``cli``, ``worker``, ``cache``, ``pool``)."""
    global _service_name
    _service_name = name
    active = tracer()
    if active is not None:
        active.service = name


def current() -> Optional[Tuple[str, Optional[str]]]:
    """The innermost ``(trace_id, span_id)`` on this thread, if any."""
    stack = _context.stack
    return stack[-1] if stack else None


def wire_context() -> Optional[Dict[str, Optional[str]]]:
    """The active context as a JSON-able dict for task specs (or ``None``)."""
    if tracer() is None:
        return None
    active = current()
    if active is None:
        return None
    return {"trace_id": active[0], "parent_id": active[1]}


def trace_headers() -> Dict[str, str]:
    """HTTP headers carrying the active context (empty when off or idle)."""
    context = wire_context()
    if context is None or not context.get("trace_id"):
        return {}
    headers = {TRACE_ID_HEADER: str(context["trace_id"])}
    if context.get("parent_id"):
        headers[PARENT_SPAN_HEADER] = str(context["parent_id"])
    return headers


def context_from_headers(headers: Mapping[str, str]) -> Optional[Tuple[str, Optional[str]]]:
    """Extract ``(trace_id, parent_id)`` from request *headers*, if present."""
    trace_id = headers.get(TRACE_ID_HEADER)
    if not trace_id:
        return None
    return str(trace_id), headers.get(PARENT_SPAN_HEADER) or None


@contextmanager
def activate(trace_id: Optional[str], parent_id: Optional[str] = None) -> Iterator[None]:
    """Adopt a propagated context for the block: spans opened inside become
    children of *parent_id* within *trace_id*.  No-op when *trace_id* is
    falsy, so callers can pass whatever the wire carried."""
    if not trace_id:
        yield
        return
    stack = _context.stack
    stack.append((str(trace_id), parent_id))
    try:
        yield
    finally:
        stack.pop()


@contextmanager
def span(
    name: str,
    kind: str = "span",
    worker: Optional[str] = None,
    **attrs: Any,
) -> Iterator[Any]:
    """Open one span for the block; free (one ``None`` check) when off.

    The yielded object exposes ``trace_id`` / ``span_id`` and ``set(key,
    value)`` for late attributes (e.g. ``cache_hit`` once known).  The span
    is recorded when the block exits, with an ``error`` attribute when it
    exits by exception (which still propagates)."""
    active = tracer()
    if active is None:
        yield NULL_SPAN
        return
    parent = current()
    trace_id = parent[0] if parent else new_trace_id()
    parent_id = parent[1] if parent else None
    global _last_trace_id
    _last_trace_id = trace_id
    live = _LiveSpan(trace_id, new_span_id(), parent_id, name, kind, worker, dict(attrs))
    stack = _context.stack
    stack.append((trace_id, live.span_id))
    start_wall = time.time()
    start_mono = time.perf_counter()
    token = _register_live(live, start_wall, start_mono)
    try:
        yield live
    except BaseException as exc:
        live.attrs["error"] = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        stack.pop()
        duration = time.perf_counter() - start_mono
        if _finish_live(token) is not None:
            active.record(
                {
                    "trace_id": live.trace_id,
                    "span_id": live.span_id,
                    "parent_id": live.parent_id,
                    "name": live.name,
                    "kind": live.kind,
                    "service": active.service,
                    "worker": live.worker,
                    "start": start_wall,
                    "end": start_wall + duration,
                    "attrs": live.attrs,
                }
            )


@contextmanager
def server_span(
    name: str,
    headers: Mapping[str, str],
    kind: str = "http",
    **attrs: Any,
) -> Iterator[Any]:
    """A service-side span for one handled request, parented to the client's
    span via the trace headers.  Records nothing for untraced requests
    (no headers) or when tracing is off in the server process, so health
    probes and unrelated traffic never produce orphan spans."""
    if tracer() is None:
        yield NULL_SPAN
        return
    context = context_from_headers(headers)
    if context is None:
        yield NULL_SPAN
        return
    with activate(context[0], context[1]):
        with span(name, kind=kind, **attrs) as live:
            yield live


def current_trace_id() -> Optional[str]:
    """The active trace id on this thread (heartbeat attribution), if any."""
    active = current()
    return active[0] if active else None


def last_trace_id() -> Optional[str]:
    """The most recent trace id this process opened a span under, if any.

    Unlike :func:`current_trace_id` this survives the end of the run — the
    run-history recorder reads it *after* the harness span closed, so a
    ledger row can link a flagged regression to its trace.
    """
    return _last_trace_id
