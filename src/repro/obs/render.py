"""Text renderers for JSONL trace files: span tree and per-worker Gantt.

``repro trace RUN.jsonl`` loads the span records a traced run streamed to
``$REPRO_TRACE`` (possibly appended by several processes — CLI, pool
children, worker daemons, the cache service) and reassembles them:

* :func:`render_tree` — the default view: one indented tree per trace,
  children ordered by start time, each line showing name, kind, duration,
  the recording service/worker, and a ``[hit]`` marker for cache hits.
  Spans whose parent never landed in the file (e.g. a worker that died
  mid-write) are shown as roots with a ``~orphan`` marker rather than
  dropped.
* :func:`render_gantt` — ``--gantt``: one lane per service/worker, spans
  drawn as bars over a shared time axis, for eyeballing parallelism and
  stragglers across a distributed run.

Pure functions over plain dicts — the loader tolerates and skips malformed
lines so a trace truncated by a crash still renders.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

Span = Dict[str, Any]

#: Gantt bar area width in characters.
GANTT_WIDTH = 60


def load_spans(path: Path) -> List[Span]:
    """Parse one JSONL trace file, skipping blank or malformed lines."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("span_id"):
                spans.append(record)
    return spans


def group_by_trace(spans: List[Span]) -> Dict[str, List[Span]]:
    """Spans bucketed by trace id, insertion-ordered by first appearance."""
    traces: Dict[str, List[Span]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace_id", "?")), []).append(span)
    return traces


def _duration(span: Span) -> float:
    return max(0.0, float(span.get("end", 0.0)) - float(span.get("start", 0.0)))


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _span_lane(span: Span) -> str:
    worker = span.get("worker")
    if worker:
        return str(worker)
    return str(span.get("service") or "?")


def _describe(span: Span, orphan: bool = False) -> str:
    attrs = span.get("attrs") or {}
    parts = [
        str(span.get("name", "?")),
        f"({span.get('kind', 'span')})",
        _format_duration(_duration(span)),
        f"[{_span_lane(span)}]",
    ]
    if attrs.get("cache_hit"):
        parts.append("[hit]")
    if attrs.get("error"):
        parts.append(f"!error: {attrs['error']}")
    if orphan:
        parts.append("~orphan")
    return " ".join(parts)


def render_tree(spans: List[Span], trace_id: Optional[str] = None) -> str:
    """The tree view of *spans* (optionally restricted to one trace)."""
    traces = group_by_trace(spans)
    if trace_id is not None:
        traces = {trace_id: traces.get(trace_id, [])}
    blocks: List[str] = []
    for tid, members in traces.items():
        members = sorted(members, key=lambda s: (float(s.get("start", 0.0)), str(s.get("span_id"))))
        by_id = {str(s["span_id"]): s for s in members}
        children: Dict[Optional[str], List[Span]] = {}
        roots: List[tuple] = []
        for span in members:
            parent = span.get("parent_id")
            if parent is None or str(parent) not in by_id:
                roots.append((span, parent is not None))
            else:
                children.setdefault(str(parent), []).append(span)
        total = 0.0
        if members:
            total = max(float(s.get("end", 0.0)) for s in members) - min(
                float(s.get("start", 0.0)) for s in members
            )
        lines = [f"trace {tid} ({len(members)} spans, {_format_duration(total)})"]

        def walk(span: Span, prefix: str, is_last: bool, orphan: bool) -> None:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + _describe(span, orphan=orphan))
            child_prefix = prefix + ("   " if is_last else "│  ")
            kids = children.get(str(span["span_id"]), [])
            for index, kid in enumerate(kids):
                walk(kid, child_prefix, index == len(kids) - 1, orphan=False)

        for index, (root, orphan) in enumerate(roots):
            walk(root, "", index == len(roots) - 1, orphan)
        blocks.append("\n".join(lines))
    if not blocks:
        return "no spans"
    return "\n\n".join(blocks)


def render_gantt(spans: List[Span], trace_id: Optional[str] = None) -> str:
    """The per-worker Gantt view of *spans* (optionally one trace)."""
    traces = group_by_trace(spans)
    if trace_id is not None:
        traces = {trace_id: traces.get(trace_id, [])}
    blocks: List[str] = []
    for tid, members in traces.items():
        if not members:
            blocks.append(f"trace {tid} (0 spans)")
            continue
        t0 = min(float(s.get("start", 0.0)) for s in members)
        t1 = max(float(s.get("end", 0.0)) for s in members)
        window = max(t1 - t0, 1e-9)
        lanes: Dict[str, List[Span]] = {}
        for span in members:
            lanes.setdefault(_span_lane(span), []).append(span)
        label_width = max(len(lane) for lane in lanes)
        lines = [f"trace {tid} ({len(members)} spans, {_format_duration(window)} window)"]
        for lane in sorted(lanes):
            lane_spans = sorted(lanes[lane], key=lambda s: float(s.get("start", 0.0)))
            lines.append(f"{lane:<{label_width}} │ {len(lane_spans)} spans")
            for span in lane_spans:
                begin = int((float(span.get("start", 0.0)) - t0) / window * (GANTT_WIDTH - 1))
                width = max(1, int(_duration(span) / window * GANTT_WIDTH))
                width = min(width, GANTT_WIDTH - begin)
                bar = " " * begin + "█" * width
                lines.append(
                    f"{'':<{label_width}} │ {bar:<{GANTT_WIDTH}} "
                    f"{span.get('name', '?')} {_format_duration(_duration(span))}"
                )
        blocks.append("\n".join(lines))
    if not blocks:
        return "no spans"
    return "\n\n".join(blocks)
