"""Process-local metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` per process (the module-level
:data:`REGISTRY`) holds named counters, gauges and histograms, each keyed
by an optional label set.  Instruments are cheap, thread-safe and
idempotently declared — asking for an existing name returns the existing
instrument — so every subsystem registers what it needs at import time and
the cache server / coordinator expose the union on their auth-exempt
``GET /metrics`` endpoints (docs/OBSERVABILITY.md lists the catalogue).

:func:`MetricsRegistry.render` produces the Prometheus text exposition
format (``# HELP`` / ``# TYPE`` comments, ``name{label="v"} value``
samples, ``_bucket``/``_sum``/``_count`` series for histograms) that both
``promtool``-style scrapers and :mod:`repro.obs.cluster`'s own parser
consume.  Collector callbacks registered via
:func:`MetricsRegistry.register_collector` run just before each render so
point-in-time gauges (queue depth, heartbeat ages, store size) are fresh at
scrape time.

:func:`install_stage_observer` bridges :mod:`repro.perf`: once installed
(the services do it at startup), every ``perf.stage`` block folds its
wall-clock seconds into ``repro_stage_seconds_total{stage=...}`` whether or
not a ``perf.collect`` block is active.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import perf

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds): sub-ms cache ops through minute-long
#: compiles.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Explicit buckets (seconds) for HTTP request-duration histograms: finer
#: at the sub-10ms end where cache GET/HEAD traffic lives, topping out at
#: the coordinator's long-poll lease wait.
REQUEST_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing sum, optionally partitioned by labels."""

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        with self._lock:
            if not self._values:
                # Expose an explicit zero before the first increment
                # (Prometheus client convention), so dashboards can compute
                # rates from process start rather than from first use.
                return [(self.name, (), 0.0)]
            return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Gauge:
    """A point-in-time value, optionally partitioned by labels."""

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def clear(self) -> None:
        """Drop every labelled series (rebuilt-at-scrape gauges)."""
        with self._lock:
            self._values.clear()

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        with self._lock:
            if not self._values:
                return [(self.name, (), 0.0)]
            return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics) of observations."""

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        # Per label set: per-bucket counts (+Inf implicit last), sum, count.
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        rows: List[Tuple[str, LabelKey, float]] = []
        with self._lock:
            keys = sorted(self._counts) or [()]  # zero series before first observe
            for key in keys:
                if key not in self._counts:
                    for bound in self.buckets:
                        rows.append((f"{self.name}_bucket", (("le", _format_value(bound)),), 0.0))
                    rows.append((f"{self.name}_bucket", (("le", "+Inf"),), 0.0))
                    rows.append((f"{self.name}_sum", (), 0.0))
                    rows.append((f"{self.name}_count", (), 0.0))
                    continue
                cumulative = 0
                for bound, bucket_count in zip(self.buckets, self._counts[key]):
                    cumulative += bucket_count
                    rows.append(
                        (f"{self.name}_bucket", key + (("le", _format_value(bound)),), float(cumulative))
                    )
                cumulative += self._counts[key][-1]
                rows.append((f"{self.name}_bucket", key + (("le", "+Inf"),), float(cumulative)))
                rows.append((f"{self.name}_sum", key, self._sums[key]))
                rows.append((f"{self.name}_count", key, float(self._totals[key])))
        return rows


_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Named instruments plus pre-scrape collector callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}
        self._collectors: List[Callable[[], None]] = []

    def _declare(self, cls: type, name: str, help_text: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric '{name}' already declared as "
                        f"{_TYPE_NAMES[type(existing)]}, not {_TYPE_NAMES[cls]}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._declare(Counter, name, help_text)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._declare(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._declare(Histogram, name, help_text, buckets=buckets)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run *collector* before every render (point-in-time gauges)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def metrics(self) -> Iterable[Any]:
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:
                pass  # a broken gauge source must not break the scrape
        lines: List[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {_TYPE_NAMES[type(metric)]}")
            for sample_name, key, value in metric.samples():
                lines.append(f"{sample_name}{_format_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process registry every subsystem and both services share.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str) -> Counter:
    """Declare (or fetch) a counter on the process registry."""
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str) -> Gauge:
    """Declare (or fetch) a gauge on the process registry."""
    return REGISTRY.gauge(name, help_text)


def histogram(name: str, help_text: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Declare (or fetch) a histogram on the process registry."""
    return REGISTRY.histogram(name, help_text, buckets=buckets)


def set_build_info(registry: Optional[MetricsRegistry] = None) -> Gauge:
    """Declare ``repro_build_info`` (value 1, version/python labels).

    The standard build-info idiom: the gauge itself carries no quantity,
    the labels identify what is running so dashboards can correlate a
    regression with a deploy.  Called by both services at startup.
    """
    import platform

    from repro import __version__

    info = (registry or REGISTRY).gauge(
        "repro_build_info", "Build information; value is always 1, labels identify the build."
    )
    info.set(1.0, version=__version__, python=platform.python_version())
    return info


# -- repro.perf bridge -----------------------------------------------------------

_stage_seconds: Optional[Counter] = None
_stage_calls: Optional[Counter] = None


def install_stage_observer() -> None:
    """Fold every ``perf.stage`` block into per-stage counters from now on.

    Installed by the long-running processes (cache server, coordinator,
    worker daemons) so ``/metrics`` carries cumulative per-stage seconds
    without requiring a ``perf.collect`` block around anything.  Idempotent.
    """
    global _stage_seconds, _stage_calls
    if _stage_seconds is None:
        _stage_seconds = counter(
            "repro_stage_seconds_total", "Cumulative wall-clock seconds per pipeline stage."
        )
        _stage_calls = counter(
            "repro_stage_calls_total", "Number of timed executions per pipeline stage."
        )
    perf.set_stage_observer(_observe_stage)


def _observe_stage(stage_name: str, elapsed: float) -> None:
    if _stage_seconds is not None and _stage_calls is not None:
        _stage_seconds.inc(elapsed, stage=stage_name)
        _stage_calls.inc(1.0, stage=stage_name)
