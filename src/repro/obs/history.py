"""Persistent run history: append-only JSONL records + regression checks.

Every measured run — ``repro report``, ``repro explore``, both bench
tools — appends one record to ``.repro_history/runs.jsonl`` in the
working directory: the command, its numeric metrics (wall seconds,
perf-stage timers, cache-hit rates, worker counts) and enough environment
(git revision, python, cpu count) to explain an outlier later.  The file
is the project's perf memory: CI appends to it on every job, ``repro
history trend`` draws the trajectory, and ``repro history check`` gates
merges by comparing the latest value of every ``*_seconds`` metric
against a **rolling-median baseline** of the preceding runs — robust to
the odd noisy record in a way a mean or a single previous run is not.

Recording is observe-only and must never fail or slow the measured run:
every write is one ``O_APPEND`` line, every error is swallowed, and
nothing is printed (stdout byte-identity is pinned by the same tests that
pin tracing).  ``$REPRO_HISTORY`` overrides the directory; ``0``/``off``
disables recording entirely (tier-1 test processes that want a pristine
working tree can opt out).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Environment variable overriding the history directory (``0``/``off`` = disabled).
HISTORY_ENV = "REPRO_HISTORY"

#: Default history directory, relative to the working directory.
HISTORY_DIR = ".repro_history"

#: The append-only record file inside the history directory.
HISTORY_FILE = "runs.jsonl"

#: Record schema version, bumped on incompatible changes.
SCHEMA = 1

#: Regression-check defaults: baseline window and slowdown threshold.
DEFAULT_WINDOW = 8
DEFAULT_THRESHOLD = 1.5

#: Runs needed before a metric is checked at all (too little history = noise).
MIN_HISTORY = 3

#: Absolute jitter floor: deltas under this many seconds never flag.
JITTER_FLOOR_SECONDS = 0.05

_git_rev_cache: Any = False  # False = not yet resolved (None is a valid result)


def history_path(directory: Optional[os.PathLike] = None) -> Optional[Path]:
    """The records file path, or ``None`` when recording is disabled.

    *directory* (CLI ``--history``) wins over ``$REPRO_HISTORY``, which
    wins over ``./.repro_history``.
    """
    if directory is not None:
        return Path(directory) / HISTORY_FILE
    env = (os.environ.get(HISTORY_ENV) or "").strip()
    if env.lower() in ("0", "off", "none", "disabled"):
        return None
    base = Path(env) if env else Path(HISTORY_DIR)
    return base / HISTORY_FILE


def explicit_path() -> Optional[Path]:
    """The records file only when ``$REPRO_HISTORY`` names a directory.

    The HTML report's trends section keys off this: with the default
    (implicit) location every warm re-render would see one more record
    and break warm-run byte-identity, so trends render only on opt-in.
    """
    env = (os.environ.get(HISTORY_ENV) or "").strip()
    if not env or env.lower() in ("0", "off", "none", "disabled"):
        return None
    return Path(env) / HISTORY_FILE


def git_revision() -> Optional[str]:
    """The working tree's short git revision, resolved once per process."""
    global _git_rev_cache
    if _git_rev_cache is False:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=2.0,
            )
            _git_rev_cache = proc.stdout.strip() or None if proc.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache = None
    return _git_rev_cache


def environment() -> Dict[str, Any]:
    """The recorded per-run environment block."""
    return {
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "platform": platform.system().lower(),
    }


def record_run(
    command: str,
    metrics: Mapping[str, float],
    attrs: Optional[Mapping[str, Any]] = None,
    directory: Optional[os.PathLike] = None,
) -> Optional[Dict[str, Any]]:
    """Append one run record; returns it, or ``None`` when disabled.

    Never raises and never writes to stdout — a broken history must not
    fail or alter the measured run.
    """
    path = history_path(directory)
    if path is None:
        return None
    record = {
        "schema": SCHEMA,
        "ts": round(time.time(), 3),
        "command": command,
        "metrics": {k: float(v) for k, v in sorted(metrics.items())},
        "attrs": dict(attrs or {}),
        "env": environment(),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
    except OSError:
        return None
    return record


def load_runs(path: Path) -> List[Dict[str, Any]]:
    """Parse one history file, skipping blank or malformed lines."""
    runs: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
                    runs.append(record)
    except OSError:
        return []
    return runs


def metric_series(
    runs: Iterable[Mapping[str, Any]], command: Optional[str] = None
) -> Dict[str, List[float]]:
    """``metric -> values`` in record order, optionally for one command."""
    series: Dict[str, List[float]] = {}
    for run in runs:
        if command is not None and run.get("command") != command:
            continue
        for name, value in (run.get("metrics") or {}).items():
            try:
                series.setdefault(str(name), []).append(float(value))
            except (TypeError, ValueError):
                continue
    return series


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_regressions(
    runs: List[Dict[str, Any]],
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    command: Optional[str] = None,
    min_history: int = MIN_HISTORY,
) -> List[Dict[str, Any]]:
    """Flag ``*_seconds`` metrics whose latest run regressed vs the baseline.

    Per ``(command, metric)``: baseline = median of the up-to-*window*
    values preceding the latest; flag when ``latest > threshold ×
    baseline`` *and* the absolute delta clears :data:`JITTER_FLOOR_SECONDS`.
    Needs at least *min_history* prior values — young histories pass.
    """
    by_command: Dict[str, List[Mapping[str, Any]]] = {}
    for run in runs:
        cmd = str(run.get("command", "?"))
        if command is not None and cmd != command:
            continue
        by_command.setdefault(cmd, []).append(run)
    regressions: List[Dict[str, Any]] = []
    for cmd in sorted(by_command):
        series = metric_series(by_command[cmd])
        for metric in sorted(series):
            if not metric.endswith("_seconds"):
                continue
            values = series[metric]
            if len(values) < min_history + 1:
                continue
            latest = values[-1]
            baseline = _median(values[-(window + 1) : -1])
            if baseline <= 0:
                continue
            if latest > threshold * baseline and latest - baseline > JITTER_FLOOR_SECONDS:
                regressions.append(
                    {
                        "command": cmd,
                        "metric": metric,
                        "latest": round(latest, 6),
                        "baseline": round(baseline, 6),
                        "ratio": round(latest / baseline, 3),
                        "threshold": threshold,
                        "window": min(window, len(values) - 1),
                    }
                )
    return regressions


# ---------------------------------------------------------------------------
# text rendering (`repro history show/trend/check`)
# ---------------------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float]) -> str:
    """A unicode block sparkline of *values* (empty string for no data)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_BLOCKS[0] * len(values)
    scale = (len(_SPARK_BLOCKS) - 1) / (high - low)
    return "".join(_SPARK_BLOCKS[int((v - low) * scale)] for v in values)


def render_show(runs: List[Dict[str, Any]], limit: int = 20) -> str:
    """One line per run, newest last: timestamp, command, key metrics.

    Runs recorded under ``$REPRO_TRACE`` / ``$REPRO_PROFILE`` carry their
    trace id and profile path in ``attrs``; showing them here links a
    flagged regression straight to the telemetry that explains it.
    """
    if not runs:
        return "no history"
    lines = []
    for run in runs[-limit:]:
        ts = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(run.get("ts", 0.0))))
        metrics = run.get("metrics") or {}
        shown = [
            f"{name}={metrics[name]:.3f}"
            for name in sorted(metrics)
            if name.endswith("_seconds") or name.endswith("_rate")
        ][:4]
        attrs = run.get("attrs") or {}
        trace_id = attrs.get("trace_id")
        if trace_id:
            shown.append(f"trace={str(trace_id)[:12]}")
        if attrs.get("profile"):
            shown.append(f"profile={attrs['profile']}")
        rev = (run.get("env") or {}).get("git_rev") or "-"
        lines.append(f"{ts}  {run.get('command', '?'):<14} {rev:<9} " + "  ".join(shown))
    return "\n".join(lines)


def render_trend(runs: List[Dict[str, Any]], command: Optional[str] = None) -> str:
    """Per-metric min/median/last plus a sparkline of the whole series."""
    series = metric_series(runs, command=command)
    rows = [
        (metric, values)
        for metric, values in sorted(series.items())
        if metric.endswith("_seconds") or metric.endswith("_rate")
    ]
    if not rows:
        return "no history"
    width = max(len(metric) for metric, _ in rows)
    lines = []
    for metric, values in rows:
        lines.append(
            f"{metric:<{width}}  n={len(values):<3} min={min(values):.3f} "
            f"med={_median(values):.3f} last={values[-1]:.3f}  {sparkline(values)}"
        )
    return "\n".join(lines)


def render_regressions(regressions: List[Dict[str, Any]]) -> str:
    """The ``check`` verdict, one flagged metric per line."""
    if not regressions:
        return "ok: no regressions"
    lines = ["REGRESSIONS:"]
    for entry in regressions:
        lines.append(
            f"  {entry['command']}/{entry['metric']}: {entry['latest']:.3f}s vs "
            f"baseline {entry['baseline']:.3f}s ({entry['ratio']:.2f}x > "
            f"{entry['threshold']:.2f}x over window {entry['window']})"
        )
    return "\n".join(lines)
