"""Declarative threshold alerts over cluster snapshots and run history.

The dashboard (:mod:`repro.obs.dash`) and the headless ``repro alerts
check`` command share this engine so "the page shows red" and "CI fails"
can never disagree.  A rule set is a plain :class:`AlertRules` value —
every threshold JSON-overridable via ``--rules rules.json`` — and an
evaluation folds the newest cluster snapshot(s) (from
:func:`repro.obs.cluster.collect_status`) plus the run-history ledger into
a list of :class:`Alert` records:

* **coordinator-down / cache-down** — a configured service is unreachable
  or reports not-ok;
* **worker-dead** — a registered worker's heartbeat age exceeds
  ``worker_dead_seconds`` (the coordinator will requeue its leases, but an
  operator wants to know the fleet is shrinking);
* **queue-sustained** — queue depth stayed above ``queue_depth_max`` for
  ``queue_sustained_samples`` consecutive snapshots: the fleet is
  underprovisioned, not merely bursty;
* **cache-hit-rate** — the service-side hit rate fell below
  ``cache_hit_rate_floor`` after at least ``cache_min_lookups`` lookups
  (a cold store or a key-mismatch bug);
* **history-regression** — the run-history rolling-median gate
  (:func:`repro.obs.history.check_regressions`) flags the latest run.

Evaluation is pure: snapshots in, alerts out.  Stateful concerns (keeping
the last N snapshots, deduplicating the event feed) belong to the caller.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class Alert:
    """One fired rule: what, how bad, and the numbers behind it."""

    rule: str
    severity: str  # "critical" | "warning"
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class AlertRules:
    """The declarative rule set (every field overridable from JSON)."""

    worker_dead_seconds: float = 30.0
    queue_depth_max: int = 100
    queue_sustained_samples: int = 3
    cache_hit_rate_floor: float = 0.05
    cache_min_lookups: int = 20
    history_window: int = 8
    history_threshold: float = 1.5

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


DEFAULT_RULES = AlertRules()


def load_rules(path: Optional[Path]) -> AlertRules:
    """Rules from a JSON file of ``{field: value}`` overrides (``None`` =
    defaults).  Unknown keys are rejected loudly — a typo silently reverting
    a threshold to its default is the worst failure mode for an alert."""
    if path is None:
        return DEFAULT_RULES
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read alert rules {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ReproError(f"alert rules {path} must be a JSON object")
    known = {f.name for f in fields(AlertRules)}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ReproError(
            f"alert rules {path}: unknown rule(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return AlertRules(**raw)


def _coordinator_alerts(
    snapshots: Sequence[Dict[str, Any]], rules: AlertRules
) -> List[Alert]:
    latest = snapshots[-1]
    coordinator = latest.get("coordinator") or {}
    alerts: List[Alert] = []
    if not coordinator.get("ok"):
        alerts.append(
            Alert(
                rule="coordinator-down",
                severity="critical",
                message=f"coordinator {coordinator.get('url', '?')} is unreachable or not ok",
            )
        )
        return alerts  # the detail rules below would only echo stale data
    for worker, info in sorted((coordinator.get("worker_detail") or {}).items()):
        age = info.get("heartbeat_age_seconds")
        if age is not None and age > rules.worker_dead_seconds:
            alerts.append(
                Alert(
                    rule="worker-dead",
                    severity="critical",
                    message=(
                        f"worker {worker} last heartbeat {age:.1f}s ago "
                        f"(threshold {rules.worker_dead_seconds:.0f}s)"
                    ),
                    value=float(age),
                    threshold=float(rules.worker_dead_seconds),
                )
            )
    window = snapshots[-rules.queue_sustained_samples :]
    depths = [
        (snap.get("coordinator") or {}).get("queued")
        for snap in window
        if (snap.get("coordinator") or {}).get("ok")
    ]
    if (
        len(depths) >= rules.queue_sustained_samples
        and all(d is not None and d > rules.queue_depth_max for d in depths)
    ):
        alerts.append(
            Alert(
                rule="queue-sustained",
                severity="warning",
                message=(
                    f"queue depth above {rules.queue_depth_max} for "
                    f"{len(depths)} consecutive samples (now {depths[-1]})"
                ),
                value=float(depths[-1]),
                threshold=float(rules.queue_depth_max),
            )
        )
    return alerts


def _cache_alerts(snapshot: Dict[str, Any], rules: AlertRules) -> List[Alert]:
    cache = snapshot.get("cache")
    if not cache:
        return []
    if not cache.get("ok"):
        return [
            Alert(
                rule="cache-down",
                severity="critical",
                message=f"cache service {cache.get('url', '?')} is unreachable or not ok",
            )
        ]
    hits = float(cache.get("hits") or 0.0)
    misses = float(cache.get("misses") or 0.0)
    lookups = hits + misses
    rate = cache.get("hit_rate")
    if (
        rate is not None
        and lookups >= rules.cache_min_lookups
        and rate < rules.cache_hit_rate_floor
    ):
        return [
            Alert(
                rule="cache-hit-rate",
                severity="warning",
                message=(
                    f"cache hit rate {rate:.1%} below floor "
                    f"{rules.cache_hit_rate_floor:.1%} after {lookups:.0f} lookups"
                ),
                value=float(rate),
                threshold=float(rules.cache_hit_rate_floor),
            )
        ]
    return []


def _history_alerts(
    history_runs: Optional[List[Dict[str, Any]]], rules: AlertRules
) -> List[Alert]:
    if not history_runs:
        return []
    from repro.obs import history as obs_history

    flagged = obs_history.check_regressions(
        history_runs, window=rules.history_window, threshold=rules.history_threshold
    )
    return [
        Alert(
            rule="history-regression",
            severity="warning",
            message=(
                f"{item['command']}: {item['metric']} regressed to "
                f"{item['latest']:.3f}s ({item['ratio']:.2f}x the median "
                f"{item['baseline']:.3f}s of the last {rules.history_window} runs)"
            ),
            value=float(item["latest"]),
            threshold=float(item["baseline"]) * rules.history_threshold,
        )
        for item in flagged
    ]


def evaluate(
    snapshots: Sequence[Dict[str, Any]],
    history_runs: Optional[List[Dict[str, Any]]] = None,
    rules: AlertRules = DEFAULT_RULES,
) -> List[Alert]:
    """Evaluate every rule; *snapshots* are oldest → newest, and only the
    newest drives the point-in-time rules (the older ones exist for the
    sustained-queue rule).  Critical alerts sort first."""
    if not snapshots:
        return []
    alerts = _coordinator_alerts(snapshots, rules)
    alerts.extend(_cache_alerts(snapshots[-1], rules))
    alerts.extend(_history_alerts(history_runs, rules))
    severity_rank = {"critical": 0, "warning": 1}
    return sorted(alerts, key=lambda a: (severity_rank.get(a.severity, 2), a.rule))


def render_alerts(alerts: Sequence[Alert]) -> str:
    """The human-readable block ``repro alerts check`` prints."""
    if not alerts:
        return "ok: no alerts firing"
    lines = [f"{len(alerts)} alert(s) firing:"]
    for alert in alerts:
        lines.append(f"  [{alert.severity}] {alert.rule}: {alert.message}")
    return "\n".join(lines)
