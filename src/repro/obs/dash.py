"""``repro dash``: a live, self-contained HTML ops page over a cluster.

One small HTTP server polls the coordinator (and optionally the cache
service) through :func:`repro.obs.cluster.collect_status`, keeps a rolling
window of snapshots in memory, and renders everything an operator wants on
one auto-refreshing page:

* stat tiles — queue depth, live workers, throughput, cache hit rate;
* sparklines (``repro.viz`` theme + engine) of queue depth, mean lease
  latency and throughput across the retained snapshots;
* the worker liveness table (heartbeat age, trace id being executed);
* firing alerts, straight from the shared :mod:`repro.obs.alerts` engine —
  the page and ``repro alerts check`` can never disagree;
* recent ``.repro_history`` runs with the regression-gate verdict;
* a rolling event feed derived from snapshot deltas (worker joined/left,
  service down/up, alert fired/cleared).

Routes: ``GET /`` (the page, ``<meta http-equiv=refresh>`` driven),
``GET /status.json`` (the same state machine-readably: snapshot, series,
alerts, history, events), ``GET /healthz``.  The dashboard is a read-only
*consumer* of the services — it holds no state worth protecting, scrapes
only the auth-exempt endpoints plus ``/status`` (for which it presents the
usual shared token), and follows the services onto TLS via the same
``REPRO_SERVICE_TLS_CERT``/``KEY`` variables.

Scrapes are throttled to one per refresh interval no matter how many
browsers poll, and a scrape failure renders a degraded page (service DOWN,
alert firing) rather than an error — the dashboard must be at its best
exactly when the cluster is at its worst.
"""

from __future__ import annotations

import html
import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro import __version__
from repro.errors import RemoteError
from repro.obs import alerts as obs_alerts
from repro.obs import cluster as obs_cluster
from repro.obs import history as obs_history
from repro.viz import theme
from repro.viz.trend import sparkline_svg

#: How many snapshots the sparklines/series retain.
MAX_POINTS = 120

#: How many events the rolling feed retains.
MAX_EVENTS = 60

#: How many history rows the page shows.
HISTORY_ROWS = 10


class DashState:
    """The dashboard's state machine: rolling snapshots, events, alerts."""

    def __init__(
        self,
        coordinator_url: str,
        cache_url: Optional[str] = None,
        history_dir: Optional[Path] = None,
        rules: obs_alerts.AlertRules = obs_alerts.DEFAULT_RULES,
        refresh: float = 5.0,
        timeout: float = 5.0,
    ):
        self.coordinator_url = coordinator_url
        self.cache_url = cache_url
        self.history_dir = history_dir
        self.rules = rules
        self.refresh = max(1.0, float(refresh))
        self.timeout = timeout
        self._lock = threading.Lock()
        self._snapshots: Deque[Dict[str, Any]] = deque(maxlen=MAX_POINTS)
        self._events: Deque[Dict[str, Any]] = deque(maxlen=MAX_EVENTS)
        self._alerts: List[obs_alerts.Alert] = []
        self._history_runs: List[Dict[str, Any]] = []
        self._last_poll = 0.0

    # -- polling ----------------------------------------------------------------

    def _scrape(self) -> Dict[str, Any]:
        try:
            return obs_cluster.collect_status(
                self.coordinator_url, self.cache_url, timeout=self.timeout
            )
        except RemoteError as exc:
            summary: Dict[str, Any] = {
                "coordinator": {
                    "url": self.coordinator_url,
                    "ok": False,
                    "error": str(exc),
                }
            }
            if self.cache_url:
                summary["cache"] = {"url": self.cache_url, "ok": False}
            return summary

    def _load_history(self) -> List[Dict[str, Any]]:
        path = obs_history.history_path(self.history_dir)
        return obs_history.load_runs(path) if path is not None else []

    def poll(self, force: bool = False) -> None:
        """Scrape + re-evaluate, at most once per refresh interval."""
        with self._lock:
            now = time.monotonic()
            if not force and self._snapshots and now - self._last_poll < self.refresh:
                return
            self._last_poll = now
            previous = self._snapshots[-1] if self._snapshots else None
            previous_alerts = {a.rule for a in self._alerts}
            summary = self._scrape()
            self._snapshots.append(summary)
            self._history_runs = self._load_history()
            self._alerts = obs_alerts.evaluate(
                list(self._snapshots), self._history_runs, self.rules
            )
            self._emit_events(previous, summary, previous_alerts)

    def _emit_events(
        self,
        previous: Optional[Dict[str, Any]],
        current: Dict[str, Any],
        previous_alerts: set,
    ) -> None:
        stamp = time.strftime("%H:%M:%S")

        def event(level: str, text: str) -> None:
            self._events.appendleft({"at": stamp, "level": level, "text": text})

        prev_coord = (previous or {}).get("coordinator") or {}
        coord = current.get("coordinator") or {}
        if previous is not None and bool(prev_coord.get("ok")) != bool(coord.get("ok")):
            if coord.get("ok"):
                event("info", "coordinator is back up")
            else:
                event("critical", "coordinator became unreachable")
        before = set(prev_coord.get("workers") or [])
        after = set(coord.get("workers") or [])
        for worker in sorted(after - before):
            event("info", f"worker {worker} joined")
        for worker in sorted(before - after):
            event("warning", f"worker {worker} left")
        current_alerts = {a.rule: a for a in self._alerts}
        for rule in sorted(set(current_alerts) - previous_alerts):
            event(current_alerts[rule].severity, f"alert fired: {current_alerts[rule].message}")
        for rule in sorted(previous_alerts - set(current_alerts)):
            event("info", f"alert cleared: {rule}")

    # -- series & payload -------------------------------------------------------

    def _series(self) -> Dict[str, List[float]]:
        queue: List[float] = []
        lease: List[float] = []
        throughput: List[float] = []
        hit_rate: List[float] = []
        for snap in self._snapshots:
            coord = snap.get("coordinator") or {}
            if coord.get("ok"):
                queue.append(float(coord.get("queued") or 0))
                throughput.append(float(coord.get("throughput_per_s") or 0.0))
                if coord.get("lease_latency_mean_s") is not None:
                    lease.append(float(coord["lease_latency_mean_s"]))
            cache = snap.get("cache") or {}
            if cache.get("ok") and cache.get("hit_rate") is not None:
                hit_rate.append(float(cache["hit_rate"]))
        return {
            "queue_depth": queue,
            "lease_latency_mean_s": lease,
            "throughput_per_s": throughput,
            "cache_hit_rate": hit_rate,
        }

    def status_payload(self) -> Dict[str, Any]:
        """The ``GET /status.json`` body (also the page's data source)."""
        with self._lock:
            latest = dict(self._snapshots[-1]) if self._snapshots else {}
            history = self._history_runs[-HISTORY_ROWS:]
            regressions = obs_history.check_regressions(
                self._history_runs,
                window=self.rules.history_window,
                threshold=self.rules.history_threshold,
            )
            return {
                "version": __version__,
                "refresh_seconds": self.refresh,
                "snapshot": latest,
                "series": self._series(),
                "alerts": [a.to_dict() for a in self._alerts],
                "events": list(self._events),
                "history": {
                    "recent": history,
                    "regressions": regressions,
                },
            }


# -- HTML rendering -----------------------------------------------------------


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _tile(label: str, value: str, tone: str = "") -> str:
    return (
        f'<div class="tile {tone}"><div class="tile-value">{_esc(value)}</div>'
        f'<div class="tile-label">{_esc(label)}</div></div>'
    )


def _spark(label: str, values: List[float], fmt: str = "{:.0f}") -> str:
    if len(values) >= 2:
        chart = sparkline_svg(values, width=220, height=36)
        last = fmt.format(values[-1])
    else:
        chart = '<span class="muted">collecting…</span>'
        last = fmt.format(values[-1]) if values else "–"
    return (
        f'<div class="spark"><div class="spark-head">{_esc(label)}'
        f'<span class="spark-last">{_esc(last)}</span></div>{chart}</div>'
    )


def _css() -> str:
    light, dark = 0, 1
    return f"""
  body {{ font-family: {theme.FONT_STACK}; background: {theme.PAGE[light]};
         color: {theme.INK_PRIMARY[light]}; margin: 0; padding: 1.2rem 1.6rem; }}
  h1 {{ font-size: 1.15rem; margin: 0 0 0.2rem; }}
  h2 {{ font-size: 0.95rem; margin: 1.4rem 0 0.5rem; color: {theme.INK_SECONDARY[light]}; }}
  .sub {{ color: {theme.INK_MUTED[light]}; font-size: 0.8rem; margin-bottom: 1rem; }}
  .tiles, .sparks {{ display: flex; flex-wrap: wrap; gap: 0.8rem; }}
  .tile {{ background: {theme.SURFACE[light]}; border: 1px solid {theme.GRIDLINE[light]};
          border-radius: 8px; padding: 0.7rem 1.1rem; min-width: 7.5rem; }}
  .tile-value {{ font-size: 1.5rem; font-variant-numeric: tabular-nums; }}
  .tile-label {{ font-size: 0.72rem; color: {theme.INK_MUTED[light]}; }}
  .tile.bad .tile-value {{ color: {theme.SERIES_LIGHT[7]}; }}
  .tile.ok .tile-value {{ color: {theme.SERIES_LIGHT[5]}; }}
  .spark {{ background: {theme.SURFACE[light]}; border: 1px solid {theme.GRIDLINE[light]};
           border-radius: 8px; padding: 0.55rem 0.8rem; }}
  .spark-head {{ font-size: 0.75rem; color: {theme.INK_SECONDARY[light]}; margin-bottom: 0.25rem; }}
  .spark-last {{ float: right; font-variant-numeric: tabular-nums; color: {theme.INK_PRIMARY[light]}; }}
  table {{ border-collapse: collapse; font-size: 0.82rem; }}
  th, td {{ text-align: left; padding: 0.3rem 0.9rem 0.3rem 0; border-bottom: 1px solid {theme.GRIDLINE[light]};
           font-variant-numeric: tabular-nums; }}
  th {{ color: {theme.INK_MUTED[light]}; font-weight: 500; }}
  .alert {{ border-left: 4px solid; border-radius: 4px; padding: 0.4rem 0.8rem; margin: 0.3rem 0;
           background: {theme.SURFACE[light]}; font-size: 0.85rem; }}
  .alert.critical {{ border-color: {theme.SERIES_LIGHT[7]}; }}
  .alert.warning {{ border-color: {theme.SERIES_LIGHT[3]}; }}
  .alert.none {{ border-color: {theme.SERIES_LIGHT[5]}; color: {theme.INK_SECONDARY[light]}; }}
  .feed {{ list-style: none; margin: 0; padding: 0; font-size: 0.8rem; }}
  .feed li {{ padding: 0.15rem 0; color: {theme.INK_SECONDARY[light]}; }}
  .feed .critical {{ color: {theme.SERIES_LIGHT[7]}; }}
  .feed .warning {{ color: {theme.SERIES_LIGHT[3]}; }}
  .muted {{ color: {theme.INK_MUTED[light]}; }}
  .mono {{ font-family: ui-monospace, monospace; font-size: 0.78rem; }}
  @media (prefers-color-scheme: dark) {{
    body {{ background: {theme.PAGE[dark]}; color: {theme.INK_PRIMARY[dark]}; }}
    h2 {{ color: {theme.INK_SECONDARY[dark]}; }}
    .tile, .spark, .alert {{ background: {theme.SURFACE[dark]}; border-color: {theme.GRIDLINE[dark]}; }}
    .spark-last {{ color: {theme.INK_PRIMARY[dark]}; }}
    th, td {{ border-color: {theme.GRIDLINE[dark]}; }}
  }}
"""


def _worker_table(coordinator: Dict[str, Any]) -> str:
    workers = coordinator.get("workers") or []
    if not workers:
        return '<p class="muted">no workers registered</p>'
    detail = coordinator.get("worker_detail") or {}
    rows = ["<tr><th>worker</th><th>heartbeat age</th><th>tracing</th></tr>"]
    for worker in workers:
        info = detail.get(worker) or {}
        age = info.get("heartbeat_age_seconds")
        trace = info.get("trace_id")
        rows.append(
            "<tr><td>{}</td><td>{}</td><td class=\"mono\">{}</td></tr>".format(
                _esc(worker),
                f"{age:.1f}s" if age is not None else "?",
                _esc(trace[:16] + "…") if trace else "–",
            )
        )
    return "<table>" + "".join(rows) + "</table>"


def _history_table(payload: Dict[str, Any]) -> str:
    history = payload.get("history") or {}
    recent = history.get("recent") or []
    if not recent:
        return '<p class="muted">no run history recorded</p>'
    flagged = {(r["command"], r["metric"]) for r in history.get("regressions") or []}
    flagged_commands = {command for command, _ in flagged}
    rows = ["<tr><th>when</th><th>command</th><th>wall</th><th>trace</th><th>gate</th></tr>"]
    for run in reversed(recent):
        wall = (run.get("metrics") or {}).get("wall_seconds")
        attrs = run.get("attrs") or {}
        trace = attrs.get("trace_id")
        when = time.strftime("%H:%M:%S", time.localtime(run.get("ts", 0)))
        command = str(run.get("command", "?"))
        verdict = "REGRESSED" if command in flagged_commands else "ok"
        rows.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"mono\">{}</td><td>{}</td></tr>".format(
                _esc(when),
                _esc(command),
                f"{wall:.2f}s" if isinstance(wall, (int, float)) else "–",
                _esc(str(trace)[:16] + "…") if trace else "–",
                verdict,
            )
        )
    return "<table>" + "".join(rows) + "</table>"


def render_html(state: DashState) -> str:
    """The complete dashboard document from the current state."""
    payload = state.status_payload()
    snapshot = payload.get("snapshot") or {}
    coordinator = snapshot.get("coordinator") or {}
    cache = snapshot.get("cache") or {}
    series = payload.get("series") or {}
    alerts = payload.get("alerts") or []

    coord_up = bool(coordinator.get("ok"))
    tiles = [
        _tile("coordinator", "up" if coord_up else "DOWN", "ok" if coord_up else "bad"),
        _tile("queue depth", str(coordinator.get("queued", "–"))),
        _tile("leased", str(coordinator.get("leased", "–"))),
        _tile("workers live", str(len(coordinator.get("workers") or []))),
        _tile("throughput", f"{coordinator.get('throughput_per_s', 0.0):.2f}/s"),
    ]
    if cache:
        rate = cache.get("hit_rate")
        tiles.append(
            _tile(
                "cache hit rate",
                f"{rate:.1%}" if rate is not None else "–",
                "" if cache.get("ok") else "bad",
            )
        )
    sparks = [
        _spark("queue depth", series.get("queue_depth") or []),
        _spark("lease latency (mean)", series.get("lease_latency_mean_s") or [], "{:.3f}s"),
        _spark("throughput /s", series.get("throughput_per_s") or [], "{:.2f}"),
    ]
    if cache:
        sparks.append(_spark("cache hit rate", series.get("cache_hit_rate") or [], "{:.1%}"))

    if alerts:
        alert_html = "".join(
            f'<div class="alert {_esc(a["severity"])}">'
            f'<strong>{_esc(a["rule"])}</strong> — {_esc(a["message"])}</div>'
            for a in alerts
        )
    else:
        alert_html = '<div class="alert none">no alerts firing</div>'

    events = payload.get("events") or []
    if events:
        feed = "".join(
            f'<li class="{_esc(e["level"])}">{_esc(e["at"])} · {_esc(e["text"])}</li>'
            for e in events
        )
        feed_html = f'<ul class="feed">{feed}</ul>'
    else:
        feed_html = '<p class="muted">no events yet</p>'

    refresh = int(round(state.refresh))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh}">
<title>repro dash · {_esc(coordinator.get('url', ''))}</title>
<style>{_css()}</style>
</head>
<body>
<h1>repro cluster dashboard</h1>
<div class="sub">coordinator {_esc(coordinator.get('url', '?'))}
{('· cache ' + _esc(cache.get('url'))) if cache else ''}
· repro {_esc(payload.get('version', ''))}
· refreshes every {refresh}s
· <span class="mono">/status.json</span> for machines</div>
<div class="tiles">{''.join(tiles)}</div>
<h2>Trends ({len(series.get('queue_depth') or [])} samples)</h2>
<div class="sparks">{''.join(sparks)}</div>
<h2>Alerts</h2>
{alert_html}
<h2>Workers</h2>
{_worker_table(coordinator)}
<h2>Run history</h2>
{_history_table(payload)}
<h2>Events</h2>
{feed_html}
</body>
</html>
"""


# -- the HTTP server ----------------------------------------------------------


def make_dash_server(
    state: DashState,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """Build (not start) the dashboard server over *state*."""
    from repro.eval.remote.protocol import send_json, wrap_server_socket

    class _DashRequestHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-dash"

        def log_message(self, format: str, *args: Any) -> None:
            pass

        def _send_document(self, body: bytes, content_type: str) -> None:
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path == "/healthz":
                send_json(
                    self, 200, {"ok": True, "role": "dash", "version": __version__}
                )
                return
            if self.path in ("/", "/index.html"):
                state.poll()
                self._send_document(
                    render_html(state).encode("utf-8"), "text/html; charset=utf-8"
                )
                return
            if self.path == "/status.json":
                state.poll()
                body = json.dumps(state.status_payload(), sort_keys=True).encode("utf-8")
                self._send_document(body, "application/json")
                return
            send_json(self, 404, {"error": f"unknown path {self.path}"})

    server = ThreadingHTTPServer((host, port), _DashRequestHandler)
    server.daemon_threads = True
    scheme = "https" if wrap_server_socket(server) else "http"
    bound_host, bound_port = server.server_address[:2]
    server.url = f"{scheme}://{bound_host}:{bound_port}"
    return server


def serve_dash(state: DashState, host: str = "127.0.0.1", port: int = 8912) -> None:
    """Run the dashboard in the foreground (``repro dash``)."""
    server = make_dash_server(state, host=host, port=port)
    print(f"repro dash on {server.url} (Ctrl-C stops)", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
