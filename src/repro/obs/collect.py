"""Central span collection: the client side (:class:`RemoteSink`) and the
server side (batch ingestion + a standalone collector service).

PR 8 gave every process a JSONL span sink, but a distributed run scatters
those files across hosts: each worker appends to *its own* ``$REPRO_TRACE``
path, and the operator has to gather and concatenate them before
``repro trace`` can render the run.  This module centralises that: point
``REPRO_TRACE`` at a URL instead of a file —

```sh
REPRO_TRACE=http://coordinator-host:8901 repro report --workers 0 ...
```

— and the process ships finished spans over HTTP to a ``POST /spans``
endpoint instead of writing them locally.  The coordinator ingests such
batches straight into the submitting client's own tracer (so one
client-side ``$REPRO_TRACE`` file holds the whole distributed run), and a
standalone collector (``repro collect serve``) does the same into a file of
its own for runs with no coordinator.

The client side is crash-safe and strictly observe-only:

* spans park in a **bounded queue**; when the collector is slow or down the
  queue fills and further spans are *dropped*, never blocking work — the
  drop count is exported as the ``repro_trace_spans_dropped_total`` counter
  and reported once on stderr at exit;
* a background thread flushes the queue as size-capped JSON batches
  (``{"spans": [...]}``); transport errors cost telemetry, never the run;
* :meth:`RemoteSink.close` — reached via the tracer's ``atexit`` shutdown —
  drains whatever is still queued, so short-lived processes (pool children,
  ``--max-tasks`` workers) lose nothing on a clean exit.

Wire format: ``POST /spans`` with a JSON object ``{"spans": [record, ...]}``
where each record is one finished-span object exactly as the JSONL sink
would have written it.  Responses: ``200 {"ok": true, "accepted": N,
"rejected": M}``; ``413`` for oversized batches (> ``MAX_BATCH_BYTES``
bytes or > ``MAX_BATCH_SPANS`` spans); ``401`` without the shared service
token.  Batches are *whole-record atomic* on the server: a record either
lands as one complete JSONL line or not at all, so a worker crashing
mid-run can never leave a partial line in the merged trace.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

#: Server-side batch caps: one POST may carry at most this much.
MAX_BATCH_BYTES = 4 * 1024 * 1024
MAX_BATCH_SPANS = 5_000

#: Client-side defaults (see :class:`RemoteSink`).
QUEUE_LIMIT = 4_096
BATCH_SPANS = 250
BATCH_BYTES = 1 * 1024 * 1024
FLUSH_INTERVAL = 0.5

#: Fields every ingested span record must carry to be accepted.
REQUIRED_FIELDS = ("trace_id", "span_id", "name", "start", "end")

_SPANS_SHIPPED = obs_metrics.counter(
    "repro_trace_spans_shipped_total",
    "Spans successfully POSTed to a remote span collector.",
)
_SPANS_DROPPED = obs_metrics.counter(
    "repro_trace_spans_dropped_total",
    "Spans dropped client-side: bounded queue full or collector unreachable.",
)
_SPANS_RECEIVED = obs_metrics.counter(
    "repro_collector_spans_received_total",
    "Span records accepted by this process's /spans endpoint.",
)
_SPANS_REJECTED = obs_metrics.counter(
    "repro_collector_spans_rejected_total",
    "Span records rejected by this process's /spans endpoint (malformed).",
)
_BATCHES_REJECTED = obs_metrics.counter(
    "repro_collector_batches_rejected_total",
    "Whole /spans batches refused (oversized or unparseable).",
)


def is_remote_spec(spec: str) -> bool:
    """Whether a ``$REPRO_TRACE`` value names a collector URL, not a file."""
    return spec.startswith(("http://", "https://"))


class RemoteSink:
    """Ships finished span records to a ``POST /spans`` collector endpoint.

    Plugs into :class:`repro.obs.tracing.Tracer` as its writer: the tracer
    calls :meth:`write_record` per finished span and :meth:`close` from its
    (atexit-registered) shutdown.  All failure modes degrade to counted
    drops — this object may never raise into the traced code.
    """

    def __init__(
        self,
        base_url: str,
        *,
        queue_limit: int = QUEUE_LIMIT,
        batch_spans: int = BATCH_SPANS,
        batch_bytes: int = BATCH_BYTES,
        flush_interval: float = FLUSH_INTERVAL,
        timeout: float = 10.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.endpoint = f"{self.base_url}/spans"
        self.queue_limit = queue_limit
        self.batch_spans = batch_spans
        self.batch_bytes = batch_bytes
        self.flush_interval = flush_interval
        self.timeout = timeout
        self._queue: Deque[Dict[str, Any]] = deque()
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._inflight = 0  # records popped off the queue, POST not yet done
        self.dropped = 0
        self.shipped = 0

    # -- tracer-facing API ------------------------------------------------------

    def write_record(self, record: Dict[str, Any]) -> None:
        """Queue one finished span for shipment (drops when the queue is full)."""
        with self._cond:
            if self._closed or len(self._queue) >= self.queue_limit:
                self.dropped += 1
                _SPANS_DROPPED.inc()
                return
            self._queue.append(record)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-span-shipper", daemon=True
                )
                self._thread.start()
            self._cond.notify()

    def close(self) -> None:
        """Stop the shipper thread and drain everything still queued."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=self.timeout + 1.0)
        self._drain()
        if self.dropped:
            import sys

            print(
                f"repro: trace collector {self.base_url}: "
                f"{self.dropped} span(s) dropped ({self.shipped} shipped)",
                file=sys.stderr,
            )

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until queued *and in-flight* records are shipped (or
        dropped); ``True`` when everything settled within *timeout*.  An
        empty queue is not enough: a batch the shipper popped may still be
        on the wire, and a caller about to hard-exit must outwait it."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._cond:
                if not self._queue and not self._inflight:
                    return True
                self._cond.notify()
            time.sleep(0.02)
        return False

    # -- shipper internals ------------------------------------------------------

    def _take_batch(self) -> List[Dict[str, Any]]:
        """Pop up to one batch off the queue (caller holds no lock)."""
        batch: List[Dict[str, Any]] = []
        size = 0
        with self._cond:
            while self._queue and len(batch) < self.batch_spans:
                record = self._queue[0]
                encoded = len(json.dumps(record, separators=(",", ":")))
                if batch and size + encoded > self.batch_bytes:
                    break
                batch.append(self._queue.popleft())
                size += encoded
            self._inflight += len(batch)
        return batch

    def _post(self, batch: List[Dict[str, Any]]) -> bool:
        """POST one batch; ``False`` (and counted drops) on any failure."""
        # Lazy import: protocol pulls in the whole eval stack, which the
        # tracing fast path must not pay for until a batch actually ships.
        from repro.eval.remote import protocol

        body = json.dumps({"spans": batch}, separators=(",", ":")).encode("utf-8")
        request = urllib.request.Request(
            self.endpoint,
            data=body,
            method="POST",
            headers={"Content-Type": "application/json", **protocol.auth_headers()},
        )
        try:
            with protocol.urlopen(request, timeout=self.timeout) as response:
                response.read()
            return True
        except Exception:
            # Observe-only: auth failures, refused connections, TLS errors —
            # all cost telemetry, never the traced run.
            return False

    def _ship(self, batch: List[Dict[str, Any]]) -> None:
        if not batch:
            return
        try:
            if self._post(batch):
                self.shipped += len(batch)
                _SPANS_SHIPPED.inc(len(batch))
            else:
                self.dropped += len(batch)
                _SPANS_DROPPED.inc(len(batch))
        finally:
            with self._cond:
                self._inflight -= len(batch)
                self._cond.notify_all()

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._queue and not self._closed:
                    self._cond.wait(timeout=self.flush_interval)
                if self._closed and not self._queue:
                    return
            self._ship(self._take_batch())

    def _drain(self) -> None:
        batch = self._take_batch()
        while batch:
            self._ship(batch)
            batch = self._take_batch()


# -- server-side ingestion ----------------------------------------------------


def validate_record(record: Any) -> bool:
    """Whether one wire record is an acceptable finished-span object."""
    if not isinstance(record, dict):
        return False
    for field in REQUIRED_FIELDS:
        if field not in record:
            return False
    if not isinstance(record["trace_id"], str) or not isinstance(record["span_id"], str):
        return False
    if not isinstance(record["start"], (int, float)) or not isinstance(
        record["end"], (int, float)
    ):
        return False
    return True


def ingest_batch(payload: Any, write_record) -> Tuple[int, int]:
    """Validate one decoded ``/spans`` payload and hand each acceptable
    record to *write_record*.  Returns ``(accepted, rejected)``."""
    spans = payload.get("spans") if isinstance(payload, dict) else None
    if not isinstance(spans, list):
        _BATCHES_REJECTED.inc()
        return 0, 0
    accepted = rejected = 0
    for record in spans:
        if validate_record(record):
            write_record(record)
            accepted += 1
        else:
            rejected += 1
    if accepted:
        _SPANS_RECEIVED.inc(accepted)
    if rejected:
        _SPANS_REJECTED.inc(rejected)
    return accepted, rejected


def batch_too_large(length: int, payload: Any = None) -> bool:
    """Server-side cap check: body bytes, then (when decoded) span count."""
    if length > MAX_BATCH_BYTES:
        return True
    if isinstance(payload, dict):
        spans = payload.get("spans")
        if isinstance(spans, list) and len(spans) > MAX_BATCH_SPANS:
            return True
    return False


def _drain_body(handler: Any, length: int) -> None:
    """Discard *length* request-body bytes in chunks (keep-alive safety)."""
    remaining = length
    while remaining > 0:
        chunk = handler.rfile.read(min(65536, remaining))
        if not chunk:
            return
        remaining -= len(chunk)


def handle_spans_post(handler: Any, write_record, token: Optional[str]) -> None:
    """The complete ``POST /spans`` route, shared by coordinator + collector.

    Enforces the byte cap (413 without buffering the body), drains and
    parses the request, authenticates it (401), enforces the span-count cap
    (413), validates each record and responds with accepted/rejected
    counts.  The body is always consumed before any response so keep-alive
    connections stay usable.
    """
    from repro.eval.remote import protocol

    length = int(handler.headers.get("Content-Length") or 0)
    if length > MAX_BATCH_BYTES:
        _drain_body(handler, length)
        _BATCHES_REJECTED.inc()
        protocol.send_json(
            handler, 413, {"error": f"span batch exceeds {MAX_BATCH_BYTES} bytes"}
        )
        return
    payload = protocol.read_json(handler)
    if not protocol.check_auth(handler, token):
        return
    if batch_too_large(length, payload):
        _BATCHES_REJECTED.inc()
        protocol.send_json(
            handler, 413, {"error": f"span batch exceeds {MAX_BATCH_SPANS} spans"}
        )
        return
    accepted, rejected = ingest_batch(payload, write_record)
    protocol.send_json(handler, 200, {"ok": True, "accepted": accepted, "rejected": rejected})


# -- the standalone collector service -----------------------------------------


class _SinkWriter:
    """Append-only JSONL writer with whole-line atomicity (collector sink)."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: Any = None
        self.written = 0

    def write_record(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


def make_collector_server(
    sink: Path,
    host: str = "127.0.0.1",
    port: int = 0,
    token: Optional[str] = None,
    verbose: bool = False,
):
    """Build (not start) a standalone span-collector HTTP server.

    Returns the ``ThreadingHTTPServer``; ``server.url`` is the address to
    put in ``$REPRO_TRACE`` and ``server.sink_writer`` the JSONL writer.
    Serves ``GET /healthz`` + ``GET /metrics`` (auth-exempt, like the other
    services) and the authenticated ``POST /spans`` ingestion route; TLS is
    enabled the same way as the other services (``REPRO_SERVICE_TLS_CERT``).
    """
    import time
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    from repro import __version__
    from repro.eval.remote import protocol
    from repro.obs import logs as obs_logs

    writer = _SinkWriter(sink)
    logger = obs_logs.get_logger("collector", verbose=verbose)

    class _CollectorRequestHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-collector"

        def log_message(self, format: str, *args: Any) -> None:
            logger.debug("%s %s", self.address_string(), format % args)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path == "/healthz":
                protocol.send_json(
                    self,
                    200,
                    {
                        "ok": True,
                        "role": "collector",
                        "version": __version__,
                        "uptime_seconds": round(time.monotonic() - server.start_time, 3),
                        "spans_written": writer.written,
                    },
                )
                return
            if self.path == "/metrics":
                body = obs_metrics.REGISTRY.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            protocol.send_json(self, 404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            if self.path != "/spans":
                _drain_body(self, int(self.headers.get("Content-Length") or 0))
                protocol.send_json(self, 404, {"error": f"unknown path {self.path}"})
                return
            handle_spans_post(self, writer.write_record, server.token)

    server = ThreadingHTTPServer((host, port), _CollectorRequestHandler)
    server.daemon_threads = True
    server.token = token if token is not None else protocol.service_token()
    server.start_time = time.monotonic()
    server.sink_writer = writer
    scheme = "https" if protocol.wrap_server_socket(server) else "http"
    bound_host, bound_port = server.server_address[:2]
    server.url = f"{scheme}://{bound_host}:{bound_port}"
    return server


def serve_collector(
    sink: Path,
    host: str = "127.0.0.1",
    port: int = 8917,
    token: Optional[str] = None,
    verbose: bool = False,
) -> None:
    """Run the standalone collector in the foreground (``repro collect serve``)."""
    server = make_collector_server(sink, host=host, port=port, token=token, verbose=verbose)
    print(f"repro collector on {server.url} -> {sink} (Ctrl-C stops)", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.sink_writer.close()
