"""Telemetry for the task graph and the distributed services (stdlib-only).

Two pillars, both off by default and strictly observe-only (the
byte-identity invariant — serial vs parallel vs warm vs traced report all
identical — is the design constraint, enforced by tests/test_obs.py):

* :mod:`repro.obs.tracing` — span-based structured tracing.  Every executed
  task-graph node, cache lookup, harness run and explore generation opens a
  span (trace id / span id / parent id, wall-clock start + monotonic
  duration, task-kind and cache-hit attributes).  Context propagates across
  processes inside task specs and across HTTP hops as headers, so one
  distributed report run yields one coherent trace.  Spans stream to a
  JSONL sink named by ``$REPRO_TRACE``; ``repro trace`` renders them.
* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and histograms rendered in Prometheus text exposition format.  The cache
  server and the coordinator expose it as an auth-exempt ``GET /metrics``;
  ``repro cluster status`` summarises a live cluster from those endpoints
  (:mod:`repro.obs.cluster`).

On top of the pillars sits the central telemetry plane:

* :mod:`repro.obs.collect` — span *collection*.  ``REPRO_TRACE`` may name a
  collector URL instead of a file: spans then ship in batches to a
  ``POST /spans`` endpoint (on the coordinator, or a standalone
  ``repro collect serve``), so one client-side file captures an entire
  distributed run without gathering per-host sinks.
* :mod:`repro.obs.dash` — the live ops page (``repro dash``): worker
  liveness, queue/latency/throughput sparklines, cache hit rate, recent run
  history with the regression verdict, alerts and a rolling event feed.
* :mod:`repro.obs.alerts` — the declarative threshold rules behind both the
  dashboard and the CI-able ``repro alerts check``.

:mod:`repro.obs.profile` (sampling profiler + exact counters),
:mod:`repro.obs.analyze` (trace summary / critical path) and
:mod:`repro.obs.history` (the run ledger + regression gate) complete the
post-hoc side.  :mod:`repro.obs.logs` supplies the ``logging``-based
structured loggers the remote services use (level-filterable via
``$REPRO_LOG_LEVEL``), and :mod:`repro.obs.render` the text tree /
per-worker Gantt views behind ``repro trace``.  docs/OBSERVABILITY.md is
the user-facing guide.
"""

from __future__ import annotations
