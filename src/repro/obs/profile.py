"""Low-overhead sampling profiler + deterministic per-task counters.

Answers "where does the wall time go?" without touching the measured code:
a daemon thread wakes ``hz`` times a second, walks every *other* thread's
current frame via :func:`sys._current_frames`, and counts one sample per
collapsed stack (``module:function;module:function;...``, root first — the
format flamegraph tooling expects).  Between wakeups the profiled code
runs at full speed, so overhead is bounded by ``hz`` × stack depth, not by
how hot the code is; the default 97 Hz is deliberately co-prime with
common periodic work to avoid lockstep aliasing.

Like tracing, profiling is **off by default** and strictly observational.
The switch is ``$REPRO_PROFILE`` naming a JSONL sink: every process that
inherits it — the CLI, pool children, worker daemons — starts its own
sampler via :func:`maybe_start` and appends **one JSON record at exit**
(``O_APPEND``, safe across processes), so a parallel run yields per-worker
profiles that :func:`merge_stacks` folds into one flamegraph.
``$REPRO_PROFILE_HZ`` overrides the rate.

Sampling answers "where"; the *deterministic counters* answer "how many".
:func:`count` is a near-free hook (one ``None`` check when off) the task
engine calls per executed task, so a profile also carries exact
``task.<kind>`` counts that never vary with sampling luck.

Render with ``repro profile --from PROFILE.jsonl --flame out.svg`` (an
SVG via :mod:`repro.viz.flame`) or ``--collapsed`` for external tooling.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Environment variable naming the JSONL sink; set = profiling on.
PROFILE_ENV = "REPRO_PROFILE"

#: Environment variable overriding the sampling rate.
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"

#: Default sampling rate (Hz); co-prime with common 10/50/100 Hz periods.
DEFAULT_HZ = 97

#: Frames deeper than this are truncated (a ``...`` root marker is kept).
MAX_STACK_DEPTH = 64


def _frame_label(frame: Any) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _collapse(frame: Any) -> str:
    """One frame chain as a root-first ``;``-joined collapsed stack."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    if frame is not None:
        labels.append("...")
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Samples all threads of this process from a background daemon thread."""

    def __init__(self, hz: int = DEFAULT_HZ, service: str = "cli"):
        self.hz = max(1, int(hz))
        self.service = service
        self._lock = threading.Lock()
        self._stacks: Dict[str, int] = {}
        self._counters: Dict[str, float] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_mono: Optional[float] = None
        self._duration = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._started_mono = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profile-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        if self._started_mono is not None:
            self._duration += time.perf_counter() - self._started_mono
            self._started_mono = None

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(me)

    def _sample(self, own_ident: int) -> None:
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter shutdown
            return
        with self._lock:
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack = _collapse(frame)
                if not stack:
                    continue
                self._stacks[stack] = self._stacks.get(stack, 0) + 1
                self._samples += 1

    # -- deterministic counters --------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump an exact (non-sampled) counter attached to this profile."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    # -- output -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """This profiler's state as one JSON-able profile record."""
        duration = self._duration
        if self._started_mono is not None:
            duration += time.perf_counter() - self._started_mono
        with self._lock:
            return {
                "kind": "profile",
                "service": self.service,
                "pid": os.getpid(),
                "hz": self.hz,
                "samples": self._samples,
                "duration_seconds": round(duration, 6),
                "stacks": dict(sorted(self._stacks.items())),
                "counters": dict(sorted(self._counters.items())),
            }

    def dump(self, sink: Path) -> None:
        """Append this profile as one JSONL record (never raises)."""
        record = self.snapshot()
        try:
            with open(sink, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        except OSError:
            pass  # observe-only: a broken sink must never fail work


# ---------------------------------------------------------------------------
# process-global profiler, lazily built from $REPRO_PROFILE
# ---------------------------------------------------------------------------

# _UNSET until the first maybe_start(), then a SamplingProfiler or None.
_UNSET = object()
_profiler: Any = _UNSET
_sink: Optional[Path] = None
# Pid that initialised _profiler: a forked pool child inherits the global
# but not the sampler thread, so a pid mismatch means "start fresh here".
_owner_pid: Optional[int] = None


def profiler() -> Optional[SamplingProfiler]:
    """The process profiler, if one is running (``None`` = off)."""
    return _profiler if isinstance(_profiler, SamplingProfiler) else None


def enabled() -> bool:
    """Whether profiling is active in this process."""
    return profiler() is not None


def maybe_start(service: str = "cli") -> Optional[SamplingProfiler]:
    """Start the process profiler from ``$REPRO_PROFILE`` (idempotent).

    Called once per process entry point (CLI main, pool child, worker
    daemon).  When the variable is unset this is one dict lookup; when set
    it starts the sampler and registers an atexit hook appending the
    profile record to the sink, so even pool children that exit through
    the executor's normal shutdown path leave their samples behind.
    """
    global _profiler, _sink, _owner_pid
    if _profiler is not _UNSET and _owner_pid == os.getpid():
        active = profiler()
        if active is not None:
            active.service = service
        return active
    path = (os.environ.get(PROFILE_ENV) or "").strip()
    if not path:
        _profiler = None
        _owner_pid = os.getpid()
        return None
    try:
        hz = int(os.environ.get(PROFILE_HZ_ENV, "") or DEFAULT_HZ)
    except ValueError:
        hz = DEFAULT_HZ
    _sink = Path(path)
    _profiler = SamplingProfiler(hz=hz, service=service)
    _owner_pid = os.getpid()
    _profiler.start()
    atexit.register(shutdown)
    # multiprocessing children (pool workers) leave through os._exit, which
    # skips atexit but *does* run multiprocessing's own finalizers — hook
    # both so their profiles land too.  shutdown() is idempotent.
    try:
        from multiprocessing import util as mp_util

        mp_util.Finalize(None, shutdown, exitpriority=0)
    except Exception:  # pragma: no cover - multiprocessing always importable
        pass
    return _profiler


def shutdown() -> None:
    """Stop the process profiler and flush its record to the sink."""
    active = profiler()
    if active is None or _owner_pid != os.getpid():
        # A forked child inherits the parent's atexit/finalizer hooks; only
        # the process that started a sampler may dump it (no duplicates).
        return
    active.stop()
    if _sink is not None:
        active.dump(_sink)
    reset()


def reset() -> None:
    """Forget the process profiler (tests); next maybe_start re-reads env."""
    global _profiler, _sink, _owner_pid
    active = profiler()
    if active is not None and _owner_pid == os.getpid():
        active.stop()
    _profiler = _UNSET
    _sink = None
    _owner_pid = None


def count(name: str, amount: float = 1.0) -> None:
    """Bump a deterministic counter; free (one isinstance) when off."""
    active = _profiler
    if isinstance(active, SamplingProfiler):
        active.count(name, amount)


# ---------------------------------------------------------------------------
# profile files: load / merge / collapsed output
# ---------------------------------------------------------------------------


def load_profiles(path: Path) -> List[Dict[str, Any]]:
    """Parse one JSONL profile sink, skipping blank or malformed lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("kind") == "profile":
                records.append(record)
    return records


def merge_stacks(records: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
    """Fold the per-process ``stacks`` maps into one (sorted keys)."""
    merged: Dict[str, int] = {}
    for record in records:
        for stack, samples in (record.get("stacks") or {}).items():
            merged[stack] = merged.get(stack, 0) + int(samples)
    return dict(sorted(merged.items()))


def merge_counters(records: Iterable[Mapping[str, Any]]) -> Dict[str, float]:
    """Fold the per-process deterministic counters into one (sorted keys)."""
    merged: Dict[str, float] = {}
    for record in records:
        for name, value in (record.get("counters") or {}).items():
            merged[name] = merged.get(name, 0.0) + float(value)
    return dict(sorted(merged.items()))


def collapsed_lines(stacks: Mapping[str, int]) -> str:
    """Stacks in the standard collapsed format: ``frame;frame count``."""
    return "\n".join(f"{stack} {samples}" for stack, samples in sorted(stacks.items()))


def top_self(stacks: Mapping[str, int], limit: int = 15) -> List[Dict[str, Any]]:
    """Leaf-frame ranking: which function was *executing* when sampled."""
    leaves: Dict[str, int] = {}
    total = 0
    for stack, samples in stacks.items():
        leaf = stack.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + int(samples)
        total += int(samples)
    ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))[:limit]
    return [
        {
            "frame": frame,
            "samples": samples,
            "fraction": round(samples / total, 4) if total else 0.0,
        }
        for frame, samples in ranked
    ]
