"""Dynamic execution trace.

Each executed IR instruction becomes one :class:`TraceEvent`.  Events carry
*precise dynamic dependences*:

* ``deps`` — sequence numbers of the events that produced each operand value
  (register dataflow);
* ``mem_dep`` — sequence number of the store event whose value a load reads
  (memory dataflow), resolved exactly because the interpreter knows every
  address.

The hybrid timing simulator replays this trace, dispatching each event to
the thread its static instruction was partitioned onto; the dependences are
what create (or forbid) overlap between threads, and cross-thread
dependences are the ones that pay queue costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode


@dataclass
class TraceEvent:
    """One dynamically executed instruction."""

    seq: int
    inst: Instruction
    function: str
    deps: Tuple[int, ...] = ()
    mem_dep: Optional[int] = None
    address: Optional[int] = None
    value: Optional[int] = None

    @property
    def opcode(self) -> Opcode:
        return self.inst.opcode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent #{self.seq} {self.opcode.value} in {self.function}>"


class Trace:
    """An ordered list of trace events plus summary statistics."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.instruction_counts: Dict[int, int] = {}   # id(static inst) -> dynamic count
        self.block_counts: Dict[Tuple[str, str], int] = {}  # (function, block name) -> count
        self.truncated = False

    # -- construction (called by the interpreter) ------------------------------------

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        key = id(event.inst)
        self.instruction_counts[key] = self.instruction_counts.get(key, 0) + 1

    def count_block(self, function: str, block_name: str) -> None:
        key = (function, block_name)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    # -- pickling ---------------------------------------------------------------------
    #
    # instruction_counts is keyed by id(inst), and object ids do not survive
    # a pickle round trip (a cached artifact's instructions unpickle at new
    # addresses, so every lookup would silently miss).  The counts are pure
    # derived data, so drop them on pickle and rebuild them from the events
    # — whose ``inst`` references unpickle consistently with the module —
    # exactly as append() built them.

    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["instruction_counts"] = None
        # Process-local replay precomputation (see repro.sim.timing); rebuilt
        # lazily on first replay after unpickling.
        state.pop("_replay_index", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        counts: Dict[int, int] = {}
        for event in self.events:
            key = id(event.inst)
            counts[key] = counts.get(key, 0) + 1
        self.instruction_counts = counts

    # -- queries ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def dynamic_count(self, inst: Instruction) -> int:
        return self.instruction_counts.get(id(inst), 0)

    def opcode_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for event in self.events:
            name = event.opcode.value
            histogram[name] = histogram.get(name, 0) + 1
        return histogram

    def events_for_function(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.function == name]

    def memory_traffic(self) -> Tuple[int, int]:
        """(dynamic loads, dynamic stores)."""
        loads = sum(1 for e in self.events if e.opcode is Opcode.LOAD)
        stores = sum(1 for e in self.events if e.opcode is Opcode.STORE)
        return loads, stores
