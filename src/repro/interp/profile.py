"""Execution profile derived from a trace (or estimated statically).

The DSWP partitioner weights each PDG node by expected dynamic cost.  The
thesis estimates weights statically (per-instruction cycle estimates scaled
by loop depth); with the interpreter available we can also use measured
dynamic counts.  Both paths produce a :class:`Profile`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.loops import LoopInfo
from repro.interp.trace import Trace
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module


# Static estimate: each additional loop-nesting level multiplies the expected
# execution count by this factor (the usual compiler heuristic constant).
STATIC_LOOP_WEIGHT = 10


class Profile:
    """Expected dynamic execution count for every static instruction."""

    def __init__(self, module: Module):
        self.module = module
        self._counts: Dict[int, float] = {}

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_trace(cls, module: Module, trace: Trace) -> "Profile":
        """Build a profile from measured dynamic instruction counts."""
        profile = cls(module)
        for fn in module.defined_functions():
            for inst in fn.instructions():
                profile._counts[id(inst)] = float(trace.dynamic_count(inst))
        return profile

    @classmethod
    def static_estimate(cls, module: Module) -> "Profile":
        """Build a profile from loop-depth-based static estimates (thesis default)."""
        profile = cls(module)
        for fn in module.defined_functions():
            loop_info = LoopInfo(fn)
            for block in fn.blocks:
                weight = float(STATIC_LOOP_WEIGHT ** loop_info.loop_depth(block))
                for inst in block.instructions:
                    profile._counts[id(inst)] = weight
        return profile

    # -- pickling ---------------------------------------------------------------------
    #
    # _counts is keyed by id(inst), and object ids do not survive a pickle
    # round trip: a cached artifact's instructions unpickle at new addresses,
    # so every count() would silently fall back to 1.0 and a re-partition of
    # the unpickled module would degenerate.  Pickle therefore re-keys the
    # counts by structural path — (function name, block index, instruction
    # index) is stable because the module pickles alongside the profile —
    # and unpickling maps them back onto the restored instruction objects.

    def _instructions_by_path(self) -> Dict[tuple, Instruction]:
        paths: Dict[tuple, Instruction] = {}
        for fn in self.module.defined_functions():
            for block_index, block in enumerate(fn.blocks):
                for inst_index, inst in enumerate(block.instructions):
                    paths[(fn.name, block_index, inst_index)] = inst
        return paths

    def __getstate__(self) -> Dict:
        counts_by_path = {
            path: self._counts[id(inst)]
            for path, inst in self._instructions_by_path().items()
            if id(inst) in self._counts
        }
        return {"module": self.module, "counts_by_path": counts_by_path}

    def __setstate__(self, state: Dict) -> None:
        self.module = state["module"]
        paths = self._instructions_by_path()
        self._counts = {
            id(paths[path]): count
            for path, count in state["counts_by_path"].items()
            if path in paths
        }

    # -- queries ---------------------------------------------------------------------

    def count(self, inst: Instruction) -> float:
        """Expected dynamic execution count of ``inst`` (1.0 when unknown)."""
        return self._counts.get(id(inst), 1.0)

    def function_total(self, fn: Function) -> float:
        return sum(self.count(inst) for inst in fn.instructions())

    def hottest_function(self) -> Optional[str]:
        best_name: Optional[str] = None
        best_total = -1.0
        for fn in self.module.defined_functions():
            total = self.function_total(fn)
            if total > best_total:
                best_total = total
                best_name = fn.name
        return best_name

    def scale(self, factor: float) -> "Profile":
        """Return a copy with every count multiplied by ``factor``."""
        copy = Profile(self.module)
        copy._counts = {k: v * factor for k, v in self._counts.items()}
        return copy
