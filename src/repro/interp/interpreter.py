"""Functional interpreter for the SSA IR.

Executes a module starting from ``main`` (or any named function), producing
the program outputs, an optional dynamic :class:`~repro.interp.trace.Trace`
and memory statistics.  Semantics follow C on a 32-bit machine: two's
complement wrap-around, truncation toward zero for division, and traps on
division by zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InterpreterError, InterpreterTrap
from repro.interp.memory import SimulatedMemory
from repro.interp.trace import Trace, TraceEvent
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
    evaluate_binary,
    evaluate_icmp,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType, IntType, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


DEFAULT_MAX_STEPS = 20_000_000


@dataclass
class ExecutionResult:
    """Everything produced by one functional run."""

    return_value: Optional[int]
    outputs: List[int]
    steps: int
    trace: Optional[Trace]
    memory: SimulatedMemory

    @property
    def output_checksum(self) -> int:
        """Order-sensitive checksum of the printed outputs (FNV-1a style)."""
        h = 0x811C9DC5
        for value in self.outputs:
            h ^= value & 0xFFFFFFFF
            h = (h * 0x01000193) & 0xFFFFFFFF
        return h


class _Frame:
    """Per-call environment: SSA value bindings and their producing events."""

    __slots__ = ("values", "events")

    def __init__(self) -> None:
        self.values: Dict[int, int] = {}
        self.events: Dict[int, Optional[int]] = {}


class Interpreter:
    """Interprets IR modules."""

    def __init__(
        self,
        module: Module,
        record_trace: bool = False,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.module = module
        self.record_trace = record_trace
        self.max_steps = max_steps
        self.memory = SimulatedMemory()
        self.memory.load_globals(module)
        self.outputs: List[int] = []
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self.steps = 0
        self._seq = 0
        self._last_store_event: Dict[int, int] = {}
        # Queues used only when interpreting DSWP-transformed IR functionally.
        self.queues: Dict[int, List[int]] = {}

    # -- public API ---------------------------------------------------------------

    def run(self, function: str = "main", args: Sequence[int] = ()) -> ExecutionResult:
        fn = self.module.get_function(function)
        arg_values = list(args) + [0] * max(0, len(fn.args) - len(args))
        value, _ = self._call(fn, arg_values, [None] * len(arg_values))
        return ExecutionResult(
            return_value=value,
            outputs=list(self.outputs),
            steps=self.steps,
            trace=self.trace,
            memory=self.memory,
        )

    # -- helpers --------------------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _record(
        self,
        inst: Instruction,
        fn_name: str,
        deps: Tuple[int, ...],
        mem_dep: Optional[int] = None,
        address: Optional[int] = None,
        value: Optional[int] = None,
    ) -> Optional[int]:
        if self.trace is None:
            return None
        seq = self._next_seq()
        self.trace.append(
            TraceEvent(
                seq=seq,
                inst=inst,
                function=fn_name,
                deps=deps,
                mem_dep=mem_dep,
                address=address,
                value=value,
            )
        )
        return seq

    def _operand_value(self, frame: _Frame, value: Value) -> int:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            return self.memory.global_address(value.name)
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, (Instruction, Argument)):
            try:
                return frame.values[id(value)]
            except KeyError as exc:
                raise InterpreterError(
                    f"use of value {value.short_name()} before definition"
                ) from exc
        if isinstance(value, Function):
            raise InterpreterError("function pointers are not supported")
        raise InterpreterError(f"cannot evaluate operand {value!r}")  # pragma: no cover

    def _operand_event(self, frame: _Frame, value: Value) -> Optional[int]:
        if isinstance(value, (Instruction, Argument)):
            return frame.events.get(id(value))
        return None

    def _deps(self, frame: _Frame, operands: Sequence[Value]) -> Tuple[int, ...]:
        if self.trace is None:
            return ()
        deps: List[int] = []
        for op in operands:
            event = self._operand_event(frame, op)
            if event is not None:
                deps.append(event)
        return tuple(deps)

    # -- execution ----------------------------------------------------------------------

    def _call(
        self,
        fn: Function,
        arg_values: Sequence[int],
        arg_events: Sequence[Optional[int]],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Execute ``fn``; returns (return value, producing event seq)."""
        if fn.is_declaration():
            return self._call_intrinsic(fn, arg_values, arg_events)
        frame = _Frame()
        for arg, value, event in zip(fn.args, arg_values, arg_events):
            frame.values[id(arg)] = value
            frame.events[id(arg)] = event

        block = fn.entry_block
        if block is None:
            raise InterpreterError(f"function {fn.name} has no entry block")
        prev_block: Optional[BasicBlock] = None

        while True:
            if self.trace is not None:
                self.trace.count_block(fn.name, block.name)
            # Phis first, evaluated simultaneously from the incoming edge.
            phis = block.phis()
            if phis:
                staged: List[Tuple[Phi, int, Optional[int]]] = []
                for phi in phis:
                    if prev_block is None:
                        raise InterpreterError(f"phi {phi.short_name()} in entry block")
                    incoming = phi.incoming_value_for(prev_block)
                    value = self._operand_value(frame, incoming)
                    event = self._operand_event(frame, incoming)
                    staged.append((phi, value, event))
                for phi, value, event in staged:
                    frame.values[id(phi)] = value
                    deps = (event,) if event is not None else ()
                    seq = self._record(phi, fn.name, deps, value=value)
                    frame.events[id(phi)] = seq if seq is not None else event
                    self.steps += 1
                    if self.steps > self.max_steps:
                        raise InterpreterError(f"step limit exceeded ({self.max_steps})")

            next_block: Optional[BasicBlock] = None
            dispatch = self._DISPATCH
            name = fn.name
            for inst in block.instructions:
                cls = inst.__class__
                tag = _CONTROL_TAGS.get(cls)
                if tag is not None:
                    if tag == _TAG_PHI:
                        continue
                    self.steps += 1
                    if self.steps > self.max_steps:
                        raise InterpreterError(f"step limit exceeded ({self.max_steps})")
                    if tag == _TAG_RETURN:
                        value = (
                            self._operand_value(frame, inst.value) if inst.value is not None else None
                        )
                        event = (
                            self._operand_event(frame, inst.value) if inst.value is not None else None
                        )
                        self._record(inst, name, self._deps(frame, inst.operands), value=value)
                        return value, event
                    if tag == _TAG_BRANCH:
                        self._record(inst, name, ())
                        next_block = inst.target
                        break
                    if tag == _TAG_CONDBR:
                        cond = self._operand_value(frame, inst.condition)
                        self._record(inst, name, self._deps(frame, [inst.condition]), value=cond)
                        next_block = inst.true_target if cond != 0 else inst.false_target
                        break
                    # _TAG_SWITCH
                    value = self._operand_value(frame, inst.value)
                    self._record(inst, name, self._deps(frame, [inst.value]), value=value)
                    next_block = inst.default
                    for case_value, target in inst.cases:
                        if case_value == value:
                            next_block = target
                            break
                    break

                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpreterError(f"step limit exceeded ({self.max_steps})")
                handler = dispatch.get(cls)
                if handler is None:
                    handler = self._resolve_handler(cls)
                value, event = handler(self, frame, name, inst)
                if not inst.type.is_void():
                    frame.values[id(inst)] = value if value is not None else 0
                frame.events[id(inst)] = event

            if next_block is None:
                raise InterpreterError(f"block {fn.name}/{block.name} fell through without a terminator")
            prev_block, block = block, next_block

    # -- per-instruction semantics -------------------------------------------------------
    #
    # One handler per concrete instruction class, bound through a precomputed
    # dispatch table (class -> unbound handler) instead of a long isinstance
    # chain: the interpreter's inner loop does a single dict lookup per
    # executed instruction.  Subclasses of the known instruction classes are
    # resolved once via _resolve_handler and memoised into the table.

    def _exec_binary(self, frame: _Frame, name: str, inst: BinaryOp):
        lhs = self._operand_value(frame, inst.lhs)
        rhs = self._operand_value(frame, inst.rhs)
        assert isinstance(inst.type, IntType)
        try:
            value = evaluate_binary(inst.opcode, inst.type, lhs, rhs)
        except ZeroDivisionError as exc:
            raise InterpreterTrap(f"division by zero in {name}") from exc
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=value)
        return value, seq

    def _exec_icmp(self, frame: _Frame, name: str, inst: ICmp):
        lhs = self._operand_value(frame, inst.lhs)
        rhs = self._operand_value(frame, inst.rhs)
        ty = inst.lhs.type if isinstance(inst.lhs.type, IntType) else IntType(32, True)
        value = evaluate_icmp(inst.predicate, ty, lhs, rhs)
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=value)
        return value, seq

    def _exec_select(self, frame: _Frame, name: str, inst: Select):
        cond = self._operand_value(frame, inst.condition)
        value = self._operand_value(frame, inst.true_value if cond else inst.false_value)
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=value)
        return value, seq

    def _exec_alloca(self, frame: _Frame, name: str, inst: Alloca):
        address = self.memory.allocate_stack(inst.allocated_type)
        seq = self._record(inst, name, (), address=address)
        return address, seq

    def _exec_load(self, frame: _Frame, name: str, inst: Load):
        address = self._operand_value(frame, inst.pointer)
        value = self.memory.load_typed(address, inst.type)
        mem_dep = self._last_store_event.get(address)
        seq = self._record(
            inst, name, self._deps(frame, inst.operands), mem_dep=mem_dep, address=address, value=value
        )
        return value, seq

    def _exec_store(self, frame: _Frame, name: str, inst: Store):
        address = self._operand_value(frame, inst.pointer)
        value = self._operand_value(frame, inst.value)
        self.memory.store_typed(address, value, inst.value.type)
        seq = self._record(
            inst, name, self._deps(frame, inst.operands), address=address, value=value
        )
        if seq is not None:
            self._last_store_event[address] = seq
        return None, seq

    def _exec_gep(self, frame: _Frame, name: str, inst: GetElementPtr):
        address = self._operand_value(frame, inst.base)
        base_type = inst.base.type
        assert isinstance(base_type, PointerType)
        current = base_type.pointee
        for index_value in inst.indices:
            idx = self._operand_value(frame, index_value)
            if isinstance(current, ArrayType):
                current = current.element
            address += idx * current.size_bytes()
        seq = self._record(inst, name, self._deps(frame, inst.operands), address=address, value=address)
        return address, seq

    def _exec_cast(self, frame: _Frame, name: str, inst: Cast):
        value = self._operand_value(frame, inst.value)
        src_type = inst.value.type
        dst_type = inst.type
        assert isinstance(dst_type, (IntType, PointerType))
        if isinstance(dst_type, PointerType):
            result = value
        else:
            if inst.opcode is Opcode.ZEXT and isinstance(src_type, IntType):
                raw = value & ((1 << src_type.bits) - 1)
                result = dst_type.wrap(raw)
            elif inst.opcode is Opcode.SEXT and isinstance(src_type, IntType):
                result = dst_type.wrap(src_type.wrap(value))
            else:  # trunc / bitcast
                result = dst_type.wrap(value)
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=result)
        return result, seq

    def _exec_call(self, frame: _Frame, name: str, inst: Call):
        arg_values = [self._operand_value(frame, a) for a in inst.args]
        arg_events = [self._operand_event(frame, a) for a in inst.args]
        # print_int is the program's observable output channel; recording
        # the printed value on the Call event lets trace replays (the
        # timing simulator) reproduce the output stream.
        printed = (
            int(arg_values[0])
            if inst.callee.is_declaration() and inst.callee.name == "print_int" and arg_values
            else None
        )
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=printed)
        result, result_event = self._call(inst.callee, arg_values, arg_events)
        # The call's consumers depend directly on the producer of the
        # returned value (precise cross-function dataflow); fall back to
        # the call event itself for declarations.
        return result, result_event if result_event is not None else seq

    def _exec_produce(self, frame: _Frame, name: str, inst: Produce):
        value = self._operand_value(frame, inst.value)
        self.queues.setdefault(inst.queue_id, []).append(value)
        seq = self._record(inst, name, self._deps(frame, inst.operands), value=value)
        return None, seq

    def _exec_consume(self, frame: _Frame, name: str, inst: Consume):
        queue = self.queues.setdefault(inst.queue_id, [])
        if not queue:
            raise InterpreterTrap(f"consume from empty queue {inst.queue_id} in {name}")
        value = queue.pop(0)
        seq = self._record(inst, name, (), value=value)
        return value, seq

    @classmethod
    def _resolve_handler(cls, inst_cls: type):
        """Resolve (and memoise) the handler for a subclass of a known class."""
        for known, handler in cls._DISPATCH_BASES:
            if issubclass(inst_cls, known):
                cls._DISPATCH[inst_cls] = handler
                return handler
        raise InterpreterError(f"cannot interpret instruction class {inst_cls.__name__}")

    def _execute_instruction(
        self, frame: _Frame, fn: Function, inst: Instruction
    ) -> Tuple[Optional[int], Optional[int]]:
        """Single-instruction entry point (kept for tests and tooling)."""
        handler = self._DISPATCH.get(inst.__class__)
        if handler is None:
            handler = self._resolve_handler(inst.__class__)
        return handler(self, frame, fn.name, inst)

    # -- intrinsics ---------------------------------------------------------------------------

    def _call_intrinsic(
        self,
        fn: Function,
        arg_values: Sequence[int],
        arg_events: Sequence[Optional[int]],
    ) -> Tuple[Optional[int], Optional[int]]:
        if fn.name == "print_int":
            self.outputs.append(int(arg_values[0]) if arg_values else 0)
            return None, arg_events[0] if arg_events else None
        if fn.name == "twill_checksum":
            return (int(arg_values[0]) if arg_values else 0), (arg_events[0] if arg_events else None)
        raise InterpreterError(f"call to undefined function '{fn.name}'")


# Control-flow tags: instruction classes the block loop must handle inline
# (they terminate the block or were already evaluated in the phi stage).
_TAG_RETURN = 0
_TAG_BRANCH = 1
_TAG_CONDBR = 2
_TAG_SWITCH = 3
_TAG_PHI = 4
_CONTROL_TAGS: Dict[type, int] = {
    Return: _TAG_RETURN,
    Branch: _TAG_BRANCH,
    CondBranch: _TAG_CONDBR,
    Switch: _TAG_SWITCH,
    Phi: _TAG_PHI,
}

# Precomputed dispatch table: concrete instruction class -> unbound handler.
Interpreter._DISPATCH = {
    BinaryOp: Interpreter._exec_binary,
    ICmp: Interpreter._exec_icmp,
    Select: Interpreter._exec_select,
    Alloca: Interpreter._exec_alloca,
    Load: Interpreter._exec_load,
    Store: Interpreter._exec_store,
    GetElementPtr: Interpreter._exec_gep,
    Cast: Interpreter._exec_cast,
    Call: Interpreter._exec_call,
    Produce: Interpreter._exec_produce,
    Consume: Interpreter._exec_consume,
}
# isinstance-ordered fallback pairs for subclasses of the known classes.
Interpreter._DISPATCH_BASES = tuple(Interpreter._DISPATCH.items())


def run_module(
    module: Module,
    function: str = "main",
    args: Sequence[int] = (),
    record_trace: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Convenience wrapper: interpret ``module`` and return the result."""
    return Interpreter(module, record_trace=record_trace, max_steps=max_steps).run(function, args)
