"""Byte-addressable simulated memory for the functional interpreter.

The layout mirrors the Twill runtime's unified address space (§4.5): globals
are laid out first (this is the image that would be shared between the
processor's data memory and the hardware threads' copy), followed by a
downward-growing region used for allocas.  Addresses are plain integers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import InterpreterTrap
from repro.ir.module import Module
from repro.ir.types import ArrayType, IntType, PointerType, Type
from repro.ir.values import GlobalVariable

GLOBAL_BASE = 0x1000
STACK_BASE = 0x8000_0000
ALIGNMENT = 4


def _align(value: int, alignment: int = ALIGNMENT) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class SimulatedMemory:
    """Sparse byte-addressable memory with typed scalar accessors."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}
        self.global_addresses: Dict[str, int] = {}
        self.global_sizes: Dict[str, int] = {}
        self._global_top = GLOBAL_BASE
        self._stack_top = STACK_BASE
        self.load_count = 0
        self.store_count = 0

    # -- layout ------------------------------------------------------------------

    def load_globals(self, module: Module) -> None:
        """Assign addresses to every global and write its initializer."""
        for g in module.globals.values():
            self.allocate_global(g)

    def allocate_global(self, g: GlobalVariable) -> int:
        size = max(ALIGNMENT, g.value_type.size_bytes())
        address = self._global_top
        self.global_addresses[g.name] = address
        self.global_sizes[g.name] = size
        self._global_top = _align(self._global_top + size)
        element = g.value_type.flat_element() if isinstance(g.value_type, ArrayType) else g.value_type
        element_size = element.size_bytes() if isinstance(element, IntType) else 4
        for i, value in enumerate(g.flat_initializer()):
            self.store_int(address + i * element_size, value, element_size)
        return address

    def global_address(self, name: str) -> int:
        return self.global_addresses[name]

    def allocate_stack(self, ty: Type) -> int:
        """Bump-allocate one object of type ``ty`` in the stack region."""
        size = max(ALIGNMENT, _align(ty.size_bytes() if not ty.is_void() else ALIGNMENT))
        address = self._stack_top
        self._stack_top = _align(self._stack_top + size)
        return address

    def global_region_size(self) -> int:
        return self._global_top - GLOBAL_BASE

    # -- raw byte access ------------------------------------------------------------

    def store_int(self, address: int, value: int, size: int) -> None:
        if address <= 0:
            raise InterpreterTrap(f"store to invalid address {address:#x}")
        value &= (1 << (8 * size)) - 1
        for i in range(size):
            self._bytes[address + i] = (value >> (8 * i)) & 0xFF
        self.store_count += 1

    def load_int(self, address: int, size: int, signed: bool) -> int:
        if address <= 0:
            raise InterpreterTrap(f"load from invalid address {address:#x}")
        value = 0
        for i in range(size):
            value |= self._bytes.get(address + i, 0) << (8 * i)
        if signed and value >= (1 << (8 * size - 1)):
            value -= 1 << (8 * size)
        self.load_count += 1
        return value

    # -- typed access ------------------------------------------------------------------

    def store_typed(self, address: int, value: int, ty: Type) -> None:
        if isinstance(ty, IntType):
            self.store_int(address, value, ty.size_bytes())
        elif isinstance(ty, PointerType):
            self.store_int(address, value, 4)
        else:
            raise InterpreterTrap(f"cannot store value of type {ty!r}")

    def load_typed(self, address: int, ty: Type) -> int:
        if isinstance(ty, IntType):
            return self.load_int(address, ty.size_bytes(), ty.signed)
        if isinstance(ty, PointerType):
            return self.load_int(address, 4, signed=False)
        raise InterpreterTrap(f"cannot load value of type {ty!r}")

    # -- debugging helpers ----------------------------------------------------------------

    def dump_global(self, g: GlobalVariable) -> List[int]:
        """Read back the current contents of a global as a flat int list."""
        address = self.global_addresses[g.name]
        if isinstance(g.value_type, ArrayType):
            element = g.value_type.flat_element()
            count = g.value_type.flat_count()
        else:
            element = g.value_type
            count = 1
        if not isinstance(element, IntType):
            raise InterpreterTrap(f"cannot dump global of type {g.value_type!r}")
        size = element.size_bytes()
        return [self.load_int(address + i * size, size, element.signed) for i in range(count)]
