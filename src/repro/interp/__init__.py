"""Functional IR interpreter, dynamic trace and profiling.

The interpreter serves three roles in the reproduction:

1. *Correctness oracle* — it executes the compiled IR and produces the
   program outputs, which tests compare against pure-Python reference
   implementations of each workload.
2. *Trace generation* — it records the dynamic instruction stream together
   with precise data/memory dependences, which the hybrid timing simulator
   replays under the pure-SW, pure-HW and Twill configurations.
3. *Profiling* — per-instruction and per-block execution counts feed the
   DSWP partitioner's weight model (the thesis uses static loop-depth
   estimates; dynamic counts are strictly more accurate and we support
   both).
"""

from repro.interp.memory import SimulatedMemory
from repro.interp.interpreter import ExecutionResult, Interpreter, run_module
from repro.interp.trace import Trace, TraceEvent
from repro.interp.profile import Profile

__all__ = [
    "SimulatedMemory",
    "ExecutionResult",
    "Interpreter",
    "run_module",
    "Trace",
    "TraceEvent",
    "Profile",
]
