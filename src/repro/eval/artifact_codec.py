"""Structured (non-pickle) serialisation of compile artifacts.

A cached :class:`repro.core.compiler.CompilationResult` is the single
largest artifact the evaluation harness stores, and with pickle it has two
costs: loading executes ``__reduce__``/``__setstate__`` code (which is why
shared caches need the HMAC envelope), and the byte format is opaque — you
cannot inspect a cached compile with anything but the exact Python objects
that wrote it.

This module replaces pickle for compile artifacts with an explicit codec:

* the payload is one line of magic (``repro-artifact-v1``) followed by a
  single canonical JSON document, so ``python -m json.tool`` (skip the
  first line) inspects any cached compile;
* decoding **executes no stored code** — it walks the JSON and rebuilds the
  object graph through a fixed table of IR classes, so an artifact cache
  does not have to be a trusted directory (no HMAC envelope needed);
* the format only depends on the documented IR/result classes, not on
  pickle's memo/opcode machinery, so entries survive Python version bumps.

The encoding strategy mirrors how the IR itself names things:

* every instruction of every defined function gets a **global index**
  (module function order → block order → instruction order); operands,
  trace events, profile counts, partitions, queues and HLS schedules all
  refer to instructions by that index, which replaces pickle's object
  identity;
* ``id()``-keyed maps (``FunctionPartitioning.assignment``,
  ``Trace.instruction_counts``, ``BlockSchedule.start_cycle``,
  ``Profile._counts``) are never stored keyed — they are re-derived or
  re-keyed against the decoded instructions, exactly like the classes'
  own ``__setstate__`` hooks do for pickle;
* purely derived analysis state (the PDG, its SCC condensation and the
  weight-model cache inside :class:`DSWPResult`) is **recomputed** on
  decode: it is a deterministic function of the decoded module and
  profile, and recomputing is cheaper than encoding a graph with
  instruction-identity edges.

Reconstruction of instructions is two-pass because phi operands may
reference instructions that appear later in the block order: pass one
creates operand-less shells (via ``cls.__new__`` plus explicit field
initialisation), pass two appends operands through the normal
``append_operand`` path so def-use lists stay consistent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CmpPredicate,
    CondBranch,
    Consume,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Produce,
    Return,
    Select,
    Store,
    Switch,
)
from repro.ir.module import Module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    VOID,
)
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value

ARTIFACT_MAGIC = b"repro-artifact-v1\n"


class ArtifactCodecError(ReproError):
    """A compile artifact could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


def _enc_type(ty: Type) -> Any:
    if isinstance(ty, VoidType):
        return "void"
    if isinstance(ty, IntType):
        return ["i", ty.bits, ty.signed]
    if isinstance(ty, PointerType):
        return ["p", _enc_type(ty.pointee)]
    if isinstance(ty, ArrayType):
        return ["a", _enc_type(ty.element), ty.count]
    if isinstance(ty, FunctionType):
        return ["f", _enc_type(ty.return_type), [_enc_type(p) for p in ty.param_types]]
    raise ArtifactCodecError(f"cannot encode type {ty!r}")


def _dec_type(data: Any) -> Type:
    if data == "void":
        return VOID
    tag = data[0]
    if tag == "i":
        return IntType(data[1], data[2])
    if tag == "p":
        return PointerType(_dec_type(data[1]))
    if tag == "a":
        return ArrayType(_dec_type(data[1]), data[2])
    if tag == "f":
        return FunctionType(_dec_type(data[1]), tuple(_dec_type(p) for p in data[2]))
    raise ArtifactCodecError(f"unknown type tag {tag!r}")


# ---------------------------------------------------------------------------
# the module codec
# ---------------------------------------------------------------------------


def _instruction_index(module: Module) -> Dict[int, int]:
    """id(inst) -> global index, in module/block/instruction order."""
    index: Dict[int, int] = {}
    for fn in module.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                index[id(inst)] = len(index)
    return index


def _instruction_list(module: Module) -> List[Instruction]:
    """Global index -> instruction, the inverse of :func:`_instruction_index`."""
    out: List[Instruction] = []
    for fn in module.functions.values():
        for block in fn.blocks:
            out.extend(block.instructions)
    return out


class _ValueCodec:
    """Encodes/decodes operand references against one module's index."""

    def __init__(self, module: Module, index: Dict[int, int]):
        self.module = module
        self.index = index

    def encode(self, value: Value) -> Any:
        if isinstance(value, Instruction):
            return ["i", self.index[id(value)]]
        if isinstance(value, Constant):
            return ["c", _enc_type(value.type), value.value]
        if isinstance(value, Argument):
            if value.parent is None:
                raise ArtifactCodecError(f"argument {value.name} has no parent function")
            return ["a", value.parent.name, value.index]
        if isinstance(value, GlobalVariable):
            return ["g", value.name]
        if isinstance(value, Function):
            return ["f", value.name]
        if isinstance(value, UndefValue):
            return ["u", _enc_type(value.type), value.name]
        raise ArtifactCodecError(f"cannot encode operand {value!r}")

    def decode(self, data: Any, instructions: List[Instruction]) -> Value:
        tag = data[0]
        if tag == "i":
            return instructions[data[1]]
        if tag == "c":
            return Constant(_dec_type(data[1]), data[2])
        if tag == "a":
            return self.module.get_function(data[1]).args[data[2]]
        if tag == "g":
            return self.module.get_global(data[1])
        if tag == "f":
            return self.module.get_function(data[1])
        if tag == "u":
            return UndefValue(_dec_type(data[1]), name=data[2])
        raise ArtifactCodecError(f"unknown operand tag {tag!r}")


def _enc_instruction(inst: Instruction, codec: _ValueCodec, block_index: Dict[int, int]) -> Dict:
    record: Dict[str, Any] = {
        "op": inst.opcode.value,
        "n": inst.name,
        "t": _enc_type(inst.type),
        "x": [codec.encode(op) for op in inst._operands],
    }
    if isinstance(inst, ICmp):
        record["pred"] = inst.predicate.value
    elif isinstance(inst, Branch):
        record["tgt"] = block_index[id(inst.target)]
    elif isinstance(inst, CondBranch):
        record["tt"] = block_index[id(inst.true_target)]
        record["ft"] = block_index[id(inst.false_target)]
    elif isinstance(inst, Switch):
        record["dflt"] = block_index[id(inst.default)]
        record["cases"] = [[c, block_index[id(b)]] for c, b in inst.cases]
    elif isinstance(inst, Phi):
        record["inb"] = [block_index[id(b)] for b in inst.incoming_blocks]
    elif isinstance(inst, Call):
        record["callee"] = inst.callee.name
    elif isinstance(inst, (Produce, Consume)):
        record["q"] = inst.queue_id
    return record


_CLASS_BY_OPCODE: Dict[Opcode, type] = {
    Opcode.ICMP: ICmp,
    Opcode.SELECT: Select,
    Opcode.ALLOCA: Alloca,
    Opcode.LOAD: Load,
    Opcode.STORE: Store,
    Opcode.GEP: GetElementPtr,
    Opcode.BR: Branch,
    Opcode.CONDBR: CondBranch,
    Opcode.SWITCH: Switch,
    Opcode.RET: Return,
    Opcode.PHI: Phi,
    Opcode.CALL: Call,
    Opcode.PRODUCE: Produce,
    Opcode.CONSUME: Consume,
}


def _inst_class(opcode: Opcode) -> type:
    cls = _CLASS_BY_OPCODE.get(opcode)
    if cls is not None:
        return cls
    from repro.ir.instructions import BINARY_OPCODES, CAST_OPCODES

    if opcode in BINARY_OPCODES:
        return BinaryOp
    if opcode in CAST_OPCODES:
        return Cast
    raise ArtifactCodecError(f"no instruction class for opcode {opcode!r}")


def _dec_instruction_shell(record: Dict, module: Module, blocks: List[BasicBlock]) -> Instruction:
    """Pass one: an operand-less instruction with every non-operand field set.

    Bypasses ``__init__`` (operands are not available yet — phis reference
    later instructions) and initialises the ``Value``/``Instruction`` fields
    by hand, exactly the set the constructors would have produced.
    """
    opcode = Opcode(record["op"])
    cls = _inst_class(opcode)
    inst = cls.__new__(cls)
    inst.type = _dec_type(record["t"])
    inst.name = record["n"]
    inst._uses = []
    inst.opcode = opcode
    inst.parent = None
    inst._operands = []
    if cls is ICmp:
        inst.predicate = CmpPredicate(record["pred"])
    elif cls is Alloca:
        inst.allocated_type = inst.type.pointee
    elif cls is Branch:
        inst.target = blocks[record["tgt"]]
    elif cls is CondBranch:
        inst.true_target = blocks[record["tt"]]
        inst.false_target = blocks[record["ft"]]
    elif cls is Switch:
        inst.default = blocks[record["dflt"]]
        inst.cases = [(c, blocks[b]) for c, b in record["cases"]]
    elif cls is Phi:
        inst.incoming_blocks = [blocks[b] for b in record["inb"]]
    elif cls is Call:
        inst.callee = module.get_function(record["callee"])
    elif cls in (Produce, Consume):
        inst.queue_id = record["q"]
    return inst


def encode_module(module: Module) -> Dict:
    index = _instruction_index(module)
    codec = _ValueCodec(module, index)
    globals_out = []
    for g in module.globals.values():
        globals_out.append(
            {
                "name": g.name,
                "type": _enc_type(g.value_type),
                "init": _enc_initializer(g.initializer),
                "const": g.is_const,
            }
        )
    functions_out = []
    for fn in module.functions.values():
        block_index = {id(b): i for i, b in enumerate(fn.blocks)}
        functions_out.append(
            {
                "name": fn.name,
                "type": _enc_type(fn.function_type),
                "params": [a.name for a in fn.args],
                "name_counter": fn._name_counter,
                "block_counter": fn._block_counter,
                "blocks": [
                    {
                        "name": block.name,
                        "insts": [_enc_instruction(i, codec, block_index) for i in block.instructions],
                    }
                    for block in fn.blocks
                ],
            }
        )
    return {"name": module.name, "globals": globals_out, "functions": functions_out}


def _enc_initializer(init: Any) -> Any:
    if init is None or isinstance(init, int):
        return init
    if isinstance(init, (list, tuple)):
        return [_enc_initializer(x) for x in init]
    raise ArtifactCodecError(f"cannot encode global initializer {init!r}")


def decode_module(data: Dict) -> Tuple[Module, List[Instruction]]:
    """Rebuild the module; also returns the global-index -> instruction list."""
    module = Module(data["name"])
    for g in data["globals"]:
        module.create_global(g["name"], _dec_type(g["type"]), g["init"], g["const"])
    # Functions first (operand-less), so calls and function-ref operands
    # resolve regardless of definition order.
    for f in data["functions"]:
        ftype = _dec_type(f["type"])
        if not isinstance(ftype, FunctionType):
            raise ArtifactCodecError(f"function {f['name']} has non-function type")
        module.create_function(f["name"], ftype, list(f["params"]))
    codec = _ValueCodec(module, {})
    instructions: List[Instruction] = []
    shells: List[Tuple[Instruction, Dict]] = []
    for f in data["functions"]:
        fn = module.get_function(f["name"])
        fn._name_counter = f["name_counter"]
        fn._block_counter = f["block_counter"]
        blocks = [fn.append_block(BasicBlock(b["name"])) for b in f["blocks"]]
        for block, b in zip(blocks, f["blocks"]):
            for record in b["insts"]:
                inst = _dec_instruction_shell(record, module, blocks)
                block.append(inst)
                instructions.append(inst)
                shells.append((inst, record))
    # Pass two: operands, now that every instruction exists.
    for inst, record in shells:
        for ref in record["x"]:
            inst.append_operand(codec.decode(ref, instructions))
    return module, instructions


# ---------------------------------------------------------------------------
# execution (outputs + memory + trace)
# ---------------------------------------------------------------------------


def _enc_memory(memory) -> Dict:
    addrs = sorted(memory._bytes)
    return {
        "addrs": addrs,
        "bytes": [memory._bytes[a] for a in addrs],
        "global_addresses": memory.global_addresses,
        "global_sizes": memory.global_sizes,
        "global_top": memory._global_top,
        "stack_top": memory._stack_top,
        "loads": memory.load_count,
        "stores": memory.store_count,
    }


def _dec_memory(data: Dict):
    from repro.interp.memory import SimulatedMemory

    memory = SimulatedMemory()
    memory._bytes = dict(zip(data["addrs"], data["bytes"]))
    memory.global_addresses = dict(data["global_addresses"])
    memory.global_sizes = dict(data["global_sizes"])
    memory._global_top = data["global_top"]
    memory._stack_top = data["stack_top"]
    memory.load_count = data["loads"]
    memory.store_count = data["stores"]
    return memory


def _enc_trace(trace, index: Dict[int, int]) -> Dict:
    """Columnar trace encoding: one list per event field.

    Events are stored without their ``seq`` when sequence numbers are the
    plain 0..n-1 enumeration (they always are for interpreter-produced
    traces); a non-contiguous trace stores them explicitly.
    """
    functions: List[str] = []
    fn_ids: Dict[str, int] = {}
    inst: List[int] = []
    fn_col: List[int] = []
    deps: List[List[int]] = []
    mem_dep: List[Optional[int]] = []
    address: List[Optional[int]] = []
    value: List[Optional[int]] = []
    seqs: List[int] = []
    contiguous = True
    for i, event in enumerate(trace.events):
        if event.seq != i:
            contiguous = False
        seqs.append(event.seq)
        inst.append(index[id(event.inst)])
        fid = fn_ids.get(event.function)
        if fid is None:
            fid = fn_ids[event.function] = len(functions)
            functions.append(event.function)
        fn_col.append(fid)
        deps.append(list(event.deps))
        mem_dep.append(event.mem_dep)
        address.append(event.address)
        value.append(event.value)
    return {
        "functions": functions,
        "inst": inst,
        "fn": fn_col,
        "deps": deps,
        "mem_dep": mem_dep,
        "address": address,
        "value": value,
        "seq": None if contiguous else seqs,
        "block_counts": [[f, b, c] for (f, b), c in trace.block_counts.items()],
        "truncated": trace.truncated,
    }


def _dec_trace(data: Dict, instructions: List[Instruction]):
    from repro.interp.trace import Trace, TraceEvent

    trace = Trace()
    functions = data["functions"]
    seqs = data["seq"]
    for i in range(len(data["inst"])):
        trace.append(
            TraceEvent(
                seq=i if seqs is None else seqs[i],
                inst=instructions[data["inst"][i]],
                function=functions[data["fn"][i]],
                deps=tuple(data["deps"][i]),
                mem_dep=data["mem_dep"][i],
                address=data["address"][i],
                value=data["value"][i],
            )
        )
    trace.block_counts = {(f, b): c for f, b, c in data["block_counts"]}
    trace.truncated = data["truncated"]
    return trace


def _enc_execution(execution, index: Dict[int, int]) -> Dict:
    return {
        "return_value": execution.return_value,
        "outputs": list(execution.outputs),
        "steps": execution.steps,
        "trace": None if execution.trace is None else _enc_trace(execution.trace, index),
        "memory": _enc_memory(execution.memory),
    }


def _dec_execution(data: Dict, instructions: List[Instruction]):
    from repro.interp.interpreter import ExecutionResult

    return ExecutionResult(
        return_value=data["return_value"],
        outputs=list(data["outputs"]),
        steps=data["steps"],
        trace=None if data["trace"] is None else _dec_trace(data["trace"], instructions),
        memory=_dec_memory(data["memory"]),
    )


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------


def _enc_profile(profile, index: Dict[int, int], instructions: List[Instruction]) -> Dict:
    counts = []
    for inst in instructions:
        c = profile._counts.get(id(inst))
        if c is not None:
            counts.append([index[id(inst)], c])
    return {"counts": counts}


def _dec_profile(data: Dict, module: Module, instructions: List[Instruction]):
    from repro.interp.profile import Profile

    profile = Profile(module)
    profile._counts = {id(instructions[i]): c for i, c in data["counts"]}
    return profile


# ---------------------------------------------------------------------------
# DSWP
# ---------------------------------------------------------------------------


def _enc_dswp(dswp, index: Dict[int, int]) -> Dict:
    import dataclasses

    partitioning = dswp.partitioning
    if partitioning.extractions:
        raise ArtifactCodecError(
            "cannot encode a DSWP result with materialised thread extractions; "
            "cache such artifacts with the pickle serializer"
        )
    functions = {}
    for fn_name, fp in partitioning.functions.items():
        functions[fn_name] = {
            "sw_fraction": fp.sw_fraction,
            "partitions": [
                {
                    "index": p.index,
                    "kind": p.kind.value,
                    "sccs": list(p.scc_indices),
                    "insts": [index[id(i)] for i in p.instructions],
                    "sw_weight": p.sw_weight,
                    "hw_weight": p.hw_weight,
                    "target_weight": p.target_weight,
                    "is_master": p.is_master,
                }
                for p in fp.partitions
            ],
        }
    queues = {}
    for fn_name, allocation in partitioning.queues.items():
        deps = [
            {
                "value": index[id(d.value)],
                "consumer": index[id(d.consumer)],
                "pp": d.producer_partition,
                "cp": d.consumer_partition,
                "kind": d.kind.value,
                "loop_case": d.loop_case.value,
            }
            for d in allocation.deps
        ]
        dep_pos = {id(d): i for i, d in enumerate(allocation.deps)}
        queues[fn_name] = {
            "deps": deps,
            "semaphore_count": allocation.semaphore_count,
            "queues": [
                {
                    "queue_id": q.queue_id,
                    "value": index[id(q.value)],
                    "pp": q.producer_partition,
                    "cp": q.consumer_partition,
                    "width_bits": q.width_bits,
                    "depth": q.depth,
                    "deps": [dep_pos[id(d)] for d in q.deps],
                }
                for q in allocation.queues
            ],
        }
    return {
        "config": dataclasses.asdict(dswp.config),
        "functions": functions,
        "queues": queues,
        "semaphores": dict(partitioning.semaphores),
    }


def _dec_dswp(data: Dict, module: Module, instructions: List[Instruction], profile):
    from repro.config import PartitionConfig
    from repro.dswp.loop_matching import LoopMatchCase
    from repro.dswp.partitioner import FunctionPartitioning, Partition, PartitionKind
    from repro.dswp.pipeline import DSWPResult, ModulePartitioning
    from repro.dswp.queues import CrossPartitionDep, QueueAllocation, QueueSpec
    from repro.interp.profile import Profile
    from repro.pdg.builder import build_pdg
    from repro.pdg.graph import DependenceKind
    from repro.pdg.scc import condense
    from repro.pdg.weights import WeightModel

    config = PartitionConfig.from_dict(data["config"])
    # Mirror run_dswp's weight source: the dynamic profile when configured,
    # the static estimate otherwise.  Both are deterministic for the module.
    if config.use_profile_weights and profile is not None:
        weight_model = WeightModel(profile)
    else:
        weight_model = WeightModel(Profile.static_estimate(module))

    partitioning = ModulePartitioning(module=module)
    for fn_name, f in data["functions"].items():
        fn = module.get_function(fn_name)
        # The PDG and its SCC condensation are derived state: rebuild them
        # from the decoded function (deterministic), then re-annotate the
        # SCC weights the way the partitioner did.
        pdg = build_pdg(fn)
        components = condense(pdg)
        weight_model.annotate_sccs(components)
        partitions = [
            Partition(
                index=p["index"],
                kind=PartitionKind(p["kind"]),
                scc_indices=list(p["sccs"]),
                instructions=[instructions[i] for i in p["insts"]],
                sw_weight=p["sw_weight"],
                hw_weight=p["hw_weight"],
                target_weight=p["target_weight"],
                is_master=p["is_master"],
            )
            for p in f["partitions"]
        ]
        assignment = {
            id(inst): partition.index for partition in partitions for inst in partition.instructions
        }
        partitioning.functions[fn_name] = FunctionPartitioning(
            function=fn,
            partitions=partitions,
            assignment=assignment,
            components=components,
            pdg=pdg,
            sw_fraction=f["sw_fraction"],
        )
    for fn_name, q in data["queues"].items():
        deps = [
            CrossPartitionDep(
                value=instructions[d["value"]],
                consumer=instructions[d["consumer"]],
                producer_partition=d["pp"],
                consumer_partition=d["cp"],
                kind=DependenceKind(d["kind"]),
                loop_case=LoopMatchCase(d["loop_case"]),
            )
            for d in q["deps"]
        ]
        allocation = QueueAllocation(
            function=fn_name, deps=deps, semaphore_count=q["semaphore_count"]
        )
        for spec in q["queues"]:
            allocation.queues.append(
                QueueSpec(
                    queue_id=spec["queue_id"],
                    function=fn_name,
                    value=instructions[spec["value"]],
                    producer_partition=spec["pp"],
                    consumer_partition=spec["cp"],
                    width_bits=spec["width_bits"],
                    depth=spec["depth"],
                    deps=[deps[i] for i in spec["deps"]],
                )
            )
        partitioning.queues[fn_name] = allocation
    partitioning.semaphores = dict(data["semaphores"])
    return DSWPResult(partitioning=partitioning, weight_model=weight_model, config=config)


# ---------------------------------------------------------------------------
# HLS (LegUp baseline)
# ---------------------------------------------------------------------------


def _enc_area(area) -> Dict:
    return {"luts": area.luts, "dsps": area.dsps, "brams": area.brams, "detail": dict(area.detail)}


def _dec_area(data: Dict):
    from repro.hls.area import AreaEstimate

    return AreaEstimate(
        luts=data["luts"], dsps=data["dsps"], brams=data["brams"], detail=dict(data["detail"])
    )


def _enc_legup(legup, index: Dict[int, int]) -> Dict:
    schedules = {}
    for fn_name, schedule in legup.schedules.items():
        blocks = {}
        for block_name, bs in schedule.blocks.items():
            blocks[block_name] = {
                "states": [[index[id(i)] for i in state.operations] for state in bs.states],
                "state_indices": [state.index for state in bs.states],
                "start": [
                    [index[id(inst)], bs.start_cycle[id(inst)]]
                    for inst in bs.block.instructions
                    if id(inst) in bs.start_cycle
                ],
                "latency": bs.latency,
            }
        schedules[fn_name] = blocks
    bindings = {
        fn_name: {
            "units": [[op.value, n] for op, n in binding.units.items()],
            "total": [[op.value, n] for op, n in binding.total_operations.items()],
            "mux_luts": binding.mux_luts,
        }
        for fn_name, binding in legup.bindings.items()
    }
    return {
        "schedules": schedules,
        "bindings": bindings,
        "function_areas": {n: _enc_area(a) for n, a in legup.function_areas.items()},
        "memory_area": _enc_area(legup.memory_area),
    }


def _dec_legup(data: Dict, module: Module, instructions: List[Instruction]):
    from repro.hls.binding import BindingResult
    from repro.hls.legup import LegUpResult
    from repro.hls.scheduling import BlockSchedule, FSMSchedule, ScheduledState

    legup = LegUpResult()
    for fn_name, blocks in data["schedules"].items():
        fn = module.get_function(fn_name)
        schedule = FSMSchedule(function=fn)
        for block_name, b in blocks.items():
            bs = BlockSchedule(
                block=fn.get_block(block_name),
                states=[
                    ScheduledState(index=idx, operations=[instructions[i] for i in ops])
                    for idx, ops in zip(b["state_indices"], b["states"])
                ],
                start_cycle={id(instructions[i]): c for i, c in b["start"]},
                latency=b["latency"],
            )
            schedule.blocks[block_name] = bs
        legup.schedules[fn_name] = schedule
    for fn_name, b in data["bindings"].items():
        legup.bindings[fn_name] = BindingResult(
            units={Opcode(op): n for op, n in b["units"]},
            total_operations={Opcode(op): n for op, n in b["total"]},
            mux_luts=b["mux_luts"],
        )
    legup.function_areas = {n: _dec_area(a) for n, a in data["function_areas"].items()}
    legup.memory_area = _dec_area(data["memory_area"])
    return legup


# ---------------------------------------------------------------------------
# system (timing + area + power)
# ---------------------------------------------------------------------------


def _enc_timing(timing) -> Dict:
    return {
        "total_cycles": timing.total_cycles,
        "threads": [
            [
                tid,
                {
                    "spec": [t.spec.thread_id, t.spec.domain.value, t.spec.label],
                    "next_free": t.next_free,
                    "busy_cycles": t.busy_cycles,
                    "events_executed": t.events_executed,
                    "finish_time": t.finish_time,
                    "current_block": t.current_block,
                    "block_max_done": t.block_max_done,
                },
            ]
            for tid, t in timing.threads.items()
        ],
        "queue_count": timing.queue_count,
        "queue_transfers": timing.queue_transfers,
        "producer_stall_cycles": timing.producer_stall_cycles,
        "consumer_stall_cycles": timing.consumer_stall_cycles,
        "bus_transfers": timing.bus_transfers,
        "forced_events": timing.forced_events,
        "events": timing.events,
        "replay_outputs": list(timing.replay_outputs),
    }


def _dec_timing(data: Dict):
    from repro.sim.assignment import ExecutionDomain, ThreadSpec
    from repro.sim.timing import ThreadTimeline, TimingResult

    threads = {}
    for tid, t in data["threads"]:
        spec = ThreadSpec(t["spec"][0], ExecutionDomain(t["spec"][1]), t["spec"][2])
        threads[tid] = ThreadTimeline(
            spec=spec,
            next_free=t["next_free"],
            busy_cycles=t["busy_cycles"],
            events_executed=t["events_executed"],
            finish_time=t["finish_time"],
            current_block=t["current_block"],
            block_max_done=t["block_max_done"],
        )
    return TimingResult(
        total_cycles=data["total_cycles"],
        threads=threads,
        queue_count=data["queue_count"],
        queue_transfers=data["queue_transfers"],
        producer_stall_cycles=data["producer_stall_cycles"],
        consumer_stall_cycles=data["consumer_stall_cycles"],
        bus_transfers=data["bus_transfers"],
        forced_events=data["forced_events"],
        events=data["events"],
        replay_outputs=tuple(data["replay_outputs"]),
    )


def _enc_power(power) -> Dict:
    return {
        "microblaze_mw": power.microblaze_mw,
        "fabric_static_mw": power.fabric_static_mw,
        "fabric_dynamic_mw": power.fabric_dynamic_mw,
    }


def _dec_power(data: Dict):
    from repro.sim.power import PowerEstimate

    return PowerEstimate(**data)


def _enc_configuration(conf) -> Dict:
    return {
        "name": conf.name,
        "timing": _enc_timing(conf.timing),
        "area": _enc_area(conf.area),
        "power": _enc_power(conf.power),
    }


def _dec_configuration(data: Dict):
    from repro.sim.system import ConfigurationResult

    return ConfigurationResult(
        name=data["name"],
        timing=_dec_timing(data["timing"]),
        area=_dec_area(data["area"]),
        power=_dec_power(data["power"]),
    )


def _enc_system(system) -> Dict:
    return {
        "benchmark": system.benchmark,
        "pure_software": _enc_configuration(system.pure_software),
        "pure_hardware": _enc_configuration(system.pure_hardware),
        "twill": _enc_configuration(system.twill),
        "hw_thread_area": _enc_area(system.hw_thread_area),
        "runtime_area": _enc_area(system.runtime_area),
    }


def _dec_system(data: Dict):
    from repro.sim.system import SystemResult

    return SystemResult(
        benchmark=data["benchmark"],
        pure_software=_dec_configuration(data["pure_software"]),
        pure_hardware=_dec_configuration(data["pure_hardware"]),
        twill=_dec_configuration(data["twill"]),
        hw_thread_area=_dec_area(data["hw_thread_area"]),
        runtime_area=_dec_area(data["runtime_area"]),
    )


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def encode_compilation_result(result) -> bytes:
    """Encode a :class:`CompilationResult` into the magic + JSON payload."""
    index = _instruction_index(result.module)
    instructions = _instruction_list(result.module)
    document = {
        "name": result.name,
        "module": encode_module(result.module),
        "execution": _enc_execution(result.execution, index),
        "profile": _enc_profile(result.profile, index, instructions),
        "dswp": _enc_dswp(result.dswp, index),
        "legup": _enc_legup(result.legup, index),
        "system": _enc_system(result.system),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return ARTIFACT_MAGIC + payload.encode("utf-8")


def decode_compilation_result(data: bytes):
    """Decode the payload back into a fully linked :class:`CompilationResult`."""
    from repro.core.compiler import CompilationResult

    if not data.startswith(ARTIFACT_MAGIC):
        raise ArtifactCodecError("not a repro artifact (bad magic)")
    document = json.loads(data[len(ARTIFACT_MAGIC):].decode("utf-8"))
    module, instructions = decode_module(document["module"])
    execution = _dec_execution(document["execution"], instructions)
    profile = _dec_profile(document["profile"], module, instructions)
    return CompilationResult(
        name=document["name"],
        module=module,
        execution=execution,
        profile=profile,
        dswp=_dec_dswp(document["dswp"], module, instructions, profile),
        legup=_dec_legup(document["legup"], module, instructions),
        system=_dec_system(document["system"]),
    )
