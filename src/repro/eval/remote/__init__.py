"""Distributed execution for the evaluation task graph (stdlib-only).

Three cooperating pieces, all speaking plain JSON-over-HTTP via
``http.server``/``urllib`` (no new dependencies), turn the single-machine
scheduler of :mod:`repro.eval.taskgraph` into a small cluster:

* **cache service** (:mod:`~repro.eval.remote.cache_http`) — ``repro cache
  serve`` exposes one :class:`~repro.eval.cache.LocalFSBackend` store over
  GET/PUT/HEAD-by-content-key, with server-side single-flight locks, so
  workers on other hosts share one artifact store through
  :class:`~repro.eval.remote.cache_http.HTTPCacheBackend`;
* **coordinator** (:mod:`~repro.eval.remote.coordinator`) — the in-process
  task queue with worker registration, heartbeats, lease timeouts and
  crash-retry that :class:`~repro.eval.remote.executor.RemoteExecutor`
  embeds into ``repro report --workers``;
* **worker** (:mod:`~repro.eval.remote.worker`) — the ``repro worker
  serve`` daemon that long-polls the coordinator for ready tasks, executes
  them via the same pure payload functions the local pool uses, and
  publishes results through the cache backend (never over the wire).

Workers exchange artefacts *only* through the content-addressed cache, so a
distributed run is byte-identical to a serial one — the wire carries task
descriptions and completion notices, never artefacts.  See
``docs/DISTRIBUTED.md`` for topology, protocol and failure model.
"""

from repro.eval.remote.cache_http import HTTPCacheBackend, serve_cache
from repro.eval.remote.coordinator import Coordinator
from repro.eval.remote.executor import RemoteExecutor
from repro.eval.remote.worker import run_worker

__all__ = ["Coordinator", "HTTPCacheBackend", "RemoteExecutor", "run_worker", "serve_cache"]
